"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in fully
offline environments (no ``wheel`` package available for PEP 517 editable
builds): pip falls back to the legacy ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
