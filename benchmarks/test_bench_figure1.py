"""Benchmark E3 -- regenerate Figure 1 (the four e-Transaction executions)."""

from repro.experiments import figure1


def test_bench_figure1_scenarios(benchmark):
    """Failure-free commit/abort and fail-over with commit/abort."""
    report = benchmark(figure1.run)
    print("\n" + report.to_text())
    assert report.all_spec_ok()
    assert report.scenario("a").attempts == 1
    assert report.scenario("b").aborted_results
    assert report.scenario("c").answered_by - {"a1"}
    assert report.scenario("d").aborted_results
    # Every scenario applies the debit exactly once.
    for name in "abcd":
        assert report.scenario(name).committed_balance == 100_000 - 10
