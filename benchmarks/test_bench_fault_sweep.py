"""Benchmark E6 -- correctness and progress under randomised failure schedules."""

from repro.experiments import fault_sweep


def test_bench_fault_sweep_safety_and_liveness(benchmark):
    """Random crash/recovery/suspicion schedules: every property must hold."""
    result = benchmark(lambda: fault_sweep.run(num_runs=8, seed=3))
    print("\n " + result.summary())
    assert result.all_safe, result.violations
    assert result.delivery_rate == 1.0


def test_bench_fault_sweep_with_client_crashes(benchmark):
    """Same sweep but the client itself may crash: at-most-once must still hold."""
    result = benchmark(lambda: fault_sweep.run(num_runs=6, seed=9, allow_client_crash=True))
    print("\n " + result.summary())
    assert result.all_safe, result.violations
