"""Allocations-per-event gate: the hot path must stay allocation-slim.

Measures allocated-blocks-per-dispatched-event on the closed-loop traffic
shape and the sharded open-loop soak shape (``repro.sim.bench.run_alloc_bench``,
also reachable as ``python -m repro kernelbench --alloc``), writes the
machine-readable BENCH json (``benchmarks/out/alloc.json``, uploaded as a CI
artifact) and enforces ``benchmarks/baseline/alloc.json``:

* the metric -- positive per-step deltas of ``sys.getallocatedblocks()`` with
  gc disabled, divided by events dispatched -- counts allocator blocks, not
  seconds, so it needs no machine-speed calibration: >30% above the committed
  figure fails the build outright;
* the reduction contract re-checks the allocation-slim PR's headline claim
  against the recorded pre-PR figures: both shapes must stay at least 40%
  below what the hot path allocated before slotted messages, pooled wake-up
  events and the indexed-waiter registry landed;
* the exact dispatched-event counts are asserted too: the scenarios are
  deterministic, so any drift means behaviour changed and the figures are
  incomparable (this doubles as a cheap trace-equivalence canary).
"""

import json
import os

import pytest

from repro.sim import bench

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baseline", "alloc.json")


def test_bench_alloc_json_and_regression_gate():
    with open(BASELINE_PATH, encoding="utf-8") as handle:
        baseline = json.load(handle)

    payload = bench.run_alloc_bench()
    print()
    print(bench.format_alloc_report(payload))

    out_dir = os.environ.get("BENCH_OUT", os.path.join("benchmarks", "out"))
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "alloc.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"BENCH json written to {path}")

    for shape in ("traffic", "soak"):
        measured = payload[shape]
        committed = baseline[shape]
        # Determinism canary: the scenario must dispatch exactly the
        # committed number of events, or the figures mean nothing.
        assert measured["events"] == committed["events"], (
            f"{shape}: dispatched {measured['events']} events, baseline "
            f"recorded {committed['events']} -- scenario behaviour changed; "
            f"re-baseline only if the change is intended")
        # Regression gate: >30% more blocks/event than committed fails.
        # (Block counts are allocator facts, not timings -- no calibration.)
        assert measured["blocks_per_event"] <= 1.3 * committed["blocks_per_event"], (
            f"{shape}: {measured['blocks_per_event']} blocks/event vs "
            f"committed {committed['blocks_per_event']} (>30% regression)")
        # Reduction contract: the slim hot path's headline claim.
        pre = baseline["pre_pr"][f"{shape}_blocks_per_event"]
        assert measured["blocks_per_event"] <= 0.6 * pre, (
            f"{shape}: {measured['blocks_per_event']} blocks/event no longer "
            f">=40% below the pre-PR figure {pre}")


if __name__ == "__main__":  # pragma: no cover - manual baseline runs
    import sys

    sys.exit(pytest.main([__file__, "-q", "-s"]))
