"""Kernel microbench gate: timer-wheel kernel vs the frozen heap kernel.

Runs the scenarios of :mod:`repro.sim.bench` under both kernels, writes the
machine-readable BENCH json (``benchmarks/out/kernel.json``, uploaded as a
CI artifact) and enforces ``benchmarks/baseline/kernel.json``:

* the absolute >30% regression gate compares the wheel kernel's lifecycle
  ops/sec per scenario against the committed baseline, scaled by the ratio
  of the committed calibration-loop time to this machine's;
* the wheel-vs-heap speedup gates are *same-run ratios* -- both kernels run
  on the same interpreter moments apart -- so machine speed cancels.  The
  headline contract of the timer-wheel PR is the ``cancel_heavy`` drain:
  with 90% of a deep timer population cancelled before firing, the wheel's
  true removal drains the survivors at >=3x the heap kernel, which must
  sift every tombstone to the top of the heap before it can drop it.
"""

import json
import os

from repro.sim import bench

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baseline", "kernel.json")


def test_bench_kernel_json_and_regression_gate():
    with open(BASELINE_PATH, encoding="utf-8") as handle:
        baseline = json.load(handle)

    payload = bench.run_kernel_bench(ops=baseline["ops_per_scenario"])
    print()
    print(bench.format_report(payload))

    out_dir = os.environ.get("BENCH_OUT", os.path.join("benchmarks", "out"))
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "kernel.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"BENCH json written to {path}")

    # Absolute gate, machine-normalised: >30% below the committed wheel
    # lifecycle figure fails the build.
    machine_factor = baseline["calibration_seconds"] / payload["calibration_seconds"]
    for scenario in bench.SCENARIOS:
        committed = baseline["ops_per_second"]["wheel"][scenario]["lifecycle"]
        measured = payload["ops_per_second"]["wheel"][scenario]["lifecycle"]
        assert measured >= 0.7 * committed * machine_factor, (
            f"{scenario}: wheel lifecycle ops/sec regressed >30%: "
            f"{measured:,.0f} vs normalised baseline "
            f"{committed * machine_factor:,.0f}")

    # Ratio gates (machine independent).  The tentpole claim: a cancel-heavy
    # queue drains at >=3x the heap kernel (committed reference: ~9x).
    speedup = payload["speedup_wheel_vs_heap"]
    assert speedup["cancel_heavy"]["drain"] >= 3.0, (
        f"cancel_heavy drain speedup fell below the 3x contract: "
        f"{speedup['cancel_heavy']['drain']}x")
    # The wheel must also win the plain deep-population fire path outright.
    assert speedup["timer_fire"]["lifecycle"] >= 1.1, (
        f"timer_fire lifecycle speedup below 1.1x: "
        f"{speedup['timer_fire']['lifecycle']}x")
    # Same-timestamp chains are the heap's best case; the call_soon fast
    # path (skip delay validation and tick classification, append straight
    # to the ready run) lifted the wheel from 0.69x to ~0.79x of the heap
    # and must not slide back to the old worst case.
    assert speedup["same_time_chain"]["lifecycle"] >= 0.7, (
        f"same_time_chain lifecycle speedup below 0.7x: "
        f"{speedup['same_time_chain']['lifecycle']}x")
