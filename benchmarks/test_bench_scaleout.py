"""Scale-out benchmark: partitioned data tier vs. a single database.

Measures the committed-transaction throughput of the e-Transaction stack at a
fixed offered load while the database tier grows, and emits the result as a
machine-readable BENCH JSON (``benchmarks/out/scaleout.json``; override the
directory with ``BENCH_OUT``).  CI uploads the file as a workflow artifact, so
the repository accumulates a throughput trajectory over time.

The headline assertion is the scale-out contract: at ``xshard=0`` a ``d=4``
deployment must sustain at least 2.5x the committed throughput of ``d=1`` at
the same offered load.
"""

import json
import os
import time

from repro.experiments import scaleout

DB_COUNTS = (1, 2, 4)
XSHARD_FRACTIONS = (0.0, 0.25)


def test_bench_scaleout_curve_and_json():
    start = time.perf_counter()
    report = scaleout.run(db_counts=DB_COUNTS, xshard_fractions=XSHARD_FRACTIONS,
                          rate=16.0, clients=12, requests=4, seed=0, workers=1)
    wall = time.perf_counter() - start
    print(f"\n[scaleout] wall={wall:.3f}s")
    print(report.to_table())
    assert report.ok, "some grid point lost requests or violated the spec"

    speedups = report.speedup(0.0)
    print(f"speed-up vs d=1 at xshard=0: {speedups}")
    assert speedups[4] >= 2.5, (
        f"d=4 sustained only {speedups[4]:.2f}x the d=1 throughput "
        f"(the partitioned tier should scale >= 2.5x at xshard=0)")
    # The cross-shard curve sits at or below the single-shard curve: every
    # cross-shard transaction occupies two shards.
    for d in DB_COUNTS[1:]:
        single = [p for p in report.curve(0.0) if p.db_servers == d][0]
        crossed = [p for p in report.curve(0.25) if p.db_servers == d][0]
        assert crossed.throughput <= single.throughput * 1.05

    out_dir = os.environ.get("BENCH_OUT", os.path.join("benchmarks", "out"))
    os.makedirs(out_dir, exist_ok=True)
    payload = dict(report.to_json(), wall_seconds=round(wall, 3))
    path = os.path.join(out_dir, "scaleout.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"BENCH json written to {path}")


def test_bench_scaleout_parallel_grid_is_byte_identical():
    """The grid executed on a worker pool equals the serial execution."""
    serial = scaleout.run(db_counts=(1, 2), xshard_fractions=(0.0, 0.25),
                          rate=16.0, clients=8, requests=2, seed=5, workers=1)
    parallel = scaleout.run(db_counts=(1, 2), xshard_fractions=(0.0, 0.25),
                            rate=16.0, clients=8, requests=2, seed=5, workers=4)
    assert serial.to_json() == parallel.to_json()
