"""Benchmarks for the traffic engine: load generation and sweep execution.

Run with ``pytest benchmarks/ --benchmark-only``.  Besides the
pytest-benchmark timings, each test prints wall-clock seconds and simulator
events per second, so future performance PRs (batching, sharding, caching)
have a recorded baseline to beat.
"""

import time

import pytest

from repro import api
from repro.workload.generator import ClosedLoop, OpenLoop

OPEN_LOOP_DSN = "etx://a3.d1.c4?rate=40&seed=3&workload=bank&timing=paper"
CLOSED_LOOP_DSN = "etx://a3.d1.c4?seed=3&workload=bank&timing=paper"


def _report(label: str, wall: float, events: int, delivered: int) -> None:
    rate = events / wall if wall > 0 else float("inf")
    print(f"\n[{label}] wall={wall:.3f}s events={events} "
          f"events/sec={rate:,.0f} delivered={delivered}")


def test_bench_open_loop_events_per_second():
    """One open-loop scenario: the per-event cost of the simulator kernel."""
    system = api.build(api.Scenario.from_dsn(OPEN_LOOP_DSN))
    generator = OpenLoop(rate=40.0)
    start = time.perf_counter()
    stats = generator.run(system, 10)
    wall = time.perf_counter() - start
    _report("open-loop c4 rate=40", wall, system.sim.events_processed, stats.count)
    assert stats.count == 40
    assert stats.throughput > 0
    assert system.check_spec().ok


def test_bench_closed_loop_multi_client(benchmark):
    """Closed loop over four concurrent clients, measured by pytest-benchmark."""
    def run_once():
        return api.run_scenario(CLOSED_LOOP_DSN, requests=3)

    result = benchmark(run_once)
    assert result.delivered == 12
    assert result.spec.ok


def test_bench_open_loop_scenario(benchmark):
    """The CI smoke shape: one open-loop run through the public entry point."""
    def run_once():
        return api.run_scenario(OPEN_LOOP_DSN, requests=2)

    result = benchmark(run_once)
    assert result.delivered == 8
    assert result.spec.ok


def test_bench_parallel_sweep_matches_serial():
    """A 4-way parallel sweep: wall-clock and identical-results check."""
    sweep = api.Sweep.over("etx://d1?workload=bank&timing=paper&seed=3",
                           protocol=["etx", "2pc"], clients=[1, 4])
    start = time.perf_counter()
    parallel = api.run_sweep(sweep, requests=1, workers=4)
    parallel_wall = time.perf_counter() - start
    start = time.perf_counter()
    serial = api.run_sweep(sweep, requests=1, workers=1)
    serial_wall = time.perf_counter() - start
    print(f"\n[sweep 2x2] parallel wall={parallel_wall:.3f}s "
          f"serial wall={serial_wall:.3f}s rows={len(parallel)}")
    assert parallel.to_table() == serial.to_table()
    assert parallel.ok


def test_bench_mailbox_hot_path(benchmark):
    """High-rate single-client closed loop: stresses deliver/_take_from_mailbox."""
    def run_once():
        system = api.build(api.Scenario.from_dsn(
            "etx://a3.d1.c1?seed=5&workload=bank"))
        return ClosedLoop().run(system, 20)

    stats = benchmark(run_once)
    assert stats.count == 20
    assert stats.undelivered == 0


if __name__ == "__main__":  # pragma: no cover - manual baseline runs
    import sys

    sys.exit(pytest.main([__file__, "-q", "-s"]))
