"""Benchmarks for the traffic engine: load generation and sweep execution.

Run with ``pytest benchmarks/ --benchmark-only``.  Besides the
pytest-benchmark timings, each test prints wall-clock seconds and simulator
events per second, so future performance PRs (batching, sharding, caching)
have a recorded baseline to beat.

``test_bench_traffic_json_and_regression_gate`` measures the open-loop bench
under the three trace retention policies, writes the machine-readable BENCH
json (``benchmarks/out/traffic.json``, uploaded as a CI artifact) and
enforces the committed baseline (``benchmarks/baseline/traffic.json``): a
>30% events/sec regression fails the build, and ``trace=off`` must sustain
at least 2x the pre-event-bus (PR 3) kernel speed.
"""

import json
import os
import time

import pytest

from repro import api
from repro.workload.generator import ClosedLoop, OpenLoop

OPEN_LOOP_DSN = "etx://a3.d1.c4?rate=40&seed=3&workload=bank&timing=paper"
CLOSED_LOOP_DSN = "etx://a3.d1.c4?seed=3&workload=bank&timing=paper"

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baseline", "traffic.json")


def _report(label: str, wall: float, events: int, delivered: int) -> None:
    rate = events / wall if wall > 0 else float("inf")
    print(f"\n[{label}] wall={wall:.3f}s events={events} "
          f"events/sec={rate:,.0f} delivered={delivered}")


def test_bench_open_loop_events_per_second():
    """One open-loop scenario: the per-event cost of the simulator kernel."""
    system = api.build(api.Scenario.from_dsn(OPEN_LOOP_DSN))
    generator = OpenLoop(rate=40.0)
    start = time.perf_counter()
    stats = generator.run(system, 10)
    wall = time.perf_counter() - start
    _report("open-loop c4 rate=40", wall, system.sim.events_processed, stats.count)
    assert stats.count == 40
    assert stats.throughput > 0
    assert system.check_spec().ok


def test_bench_closed_loop_multi_client(benchmark):
    """Closed loop over four concurrent clients, measured by pytest-benchmark."""
    def run_once():
        return api.run_scenario(CLOSED_LOOP_DSN, requests=3)

    result = benchmark(run_once)
    assert result.delivered == 12
    assert result.spec.ok


def test_bench_open_loop_scenario(benchmark):
    """The CI smoke shape: one open-loop run through the public entry point."""
    def run_once():
        return api.run_scenario(OPEN_LOOP_DSN, requests=2)

    result = benchmark(run_once)
    assert result.delivered == 8
    assert result.spec.ok


def test_bench_parallel_sweep_matches_serial():
    """A 4-way parallel sweep: wall-clock and identical-results check."""
    sweep = api.Sweep.over("etx://d1?workload=bank&timing=paper&seed=3",
                           protocol=["etx", "2pc"], clients=[1, 4])
    start = time.perf_counter()
    parallel = api.run_sweep(sweep, requests=1, workers=4)
    parallel_wall = time.perf_counter() - start
    start = time.perf_counter()
    serial = api.run_sweep(sweep, requests=1, workers=1)
    serial_wall = time.perf_counter() - start
    print(f"\n[sweep 2x2] parallel wall={parallel_wall:.3f}s "
          f"serial wall={serial_wall:.3f}s rows={len(parallel)}")
    assert parallel.to_table() == serial.to_table()
    assert parallel.ok


def test_bench_mailbox_hot_path(benchmark):
    """High-rate single-client closed loop: stresses deliver/_take_from_mailbox."""
    def run_once():
        system = api.build(api.Scenario.from_dsn(
            "etx://a3.d1.c1?seed=5&workload=bank"))
        return ClosedLoop().run(system, 20)

    stats = benchmark(run_once)
    assert stats.count == 20
    assert stats.undelivered == 0


def _measure_events_per_second(dsn: str, requests: int, reps: int = 3) -> float:
    """Best-of-``reps`` simulator events per wall second for one scenario."""
    best = 0.0
    for _ in range(reps):
        system = api.build(api.Scenario.from_dsn(dsn))
        generator = OpenLoop(rate=40.0)
        start = time.perf_counter()
        stats = generator.run(system, requests)
        wall = time.perf_counter() - start
        assert stats.undelivered == 0
        assert system.check_spec().ok
        best = max(best, system.sim.events_processed / wall)
    return best


def _calibration_seconds() -> float:
    """Fixed CPU-bound loop used to normalise machine speed (best of 3)."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        x = 0
        for i in range(2_000_000):
            x = (x * 31 + i) % 1000003
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_traffic_json_and_regression_gate():
    """Measure full/ring/off retention, emit traffic.json, gate regressions.

    The committed baseline numbers were all measured on one reference
    machine, so two normalisations make the gates portable:

    * the absolute >30% regression gate scales the committed ``trace=full``
      figure by the ratio of the committed calibration-loop time to this
      machine's;
    * the 2x contract of ``trace=off`` versus the pre-event-bus (PR 3)
      kernel is a pure ratio -- ``off/full`` on this machine against
      ``2 * pr3/full`` on the reference machine -- so machine speed cancels.
    """
    with open(BASELINE_PATH, encoding="utf-8") as handle:
        baseline = json.load(handle)
    dsn = baseline["open_loop_dsn"]
    requests = baseline["requests_per_client"]

    full = _measure_events_per_second(dsn, requests)
    ring = _measure_events_per_second(f"{dsn}&trace=ring:1000", requests)
    off = _measure_events_per_second(f"{dsn}&trace=off", requests)
    machine_factor = baseline["calibration_seconds"] / _calibration_seconds()
    expected_full = baseline["events_per_second_full"] * machine_factor
    expected_off = baseline["events_per_second_off"] * machine_factor
    required_off_ratio = 2.0 * baseline["pr3_events_per_second_full"] \
        / baseline["events_per_second_full"]
    print(f"\n[traffic] events/sec full={full:,.0f} ring:1000={ring:,.0f} "
          f"off={off:,.0f} (machine factor {machine_factor:.2f}, "
          f"off/full={off / full:.2f}, needed {required_off_ratio:.2f})")

    out_dir = os.environ.get("BENCH_OUT", os.path.join("benchmarks", "out"))
    os.makedirs(out_dir, exist_ok=True)
    payload = {
        "open_loop_dsn": dsn,
        "requests_per_client": requests,
        "events_per_second": {"full": round(full), "ring:1000": round(ring),
                              "off": round(off)},
        "machine_factor_vs_baseline": round(machine_factor, 3),
        "speedup_off_vs_pr3": round(
            (off / full) * baseline["events_per_second_full"]
            / baseline["pr3_events_per_second_full"], 2),
    }
    path = os.path.join(out_dir, "traffic.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"BENCH json written to {path}")

    # Regression gate: >30% below the machine-normalised committed baseline
    # fails the build.
    assert full >= 0.7 * expected_full, (
        f"events/sec regressed >30%: full={full:,.0f} vs normalised "
        f"baseline {expected_full:,.0f}")
    # Same gate for the slimmed trace=off hot path: it carries the
    # allocation-slim PR's gains and must not quietly give them back.
    assert off >= 0.7 * expected_off, (
        f"trace=off events/sec regressed >30%: off={off:,.0f} vs normalised "
        f"baseline {expected_off:,.0f}")
    # The headline contract of the event-bus refactor: with the trace store
    # off, the kernel runs at least twice as fast as the PR 3 baseline.
    assert off >= required_off_ratio * full, (
        f"trace=off must give >=2x the PR 3 events/sec: off/full="
        f"{off / full:.2f}, required {required_off_ratio:.2f}")


if __name__ == "__main__":  # pragma: no cover - manual baseline runs
    import sys

    sys.exit(pytest.main([__file__, "-q", "-s"]))
