"""Benchmarks E5/E7/E8 -- ablations around the protocol's design choices."""

from repro.experiments.ablations import asynchrony_sweep, log_cost_sweep, scaling_sweep


def test_bench_ablation_asynchrony(benchmark):
    """E5: client patience and failure-detector reliability (primary-backup
    versus active-replication behaviour of the same protocol)."""
    points = benchmark(asynchrony_sweep)
    print()
    for point in points:
        print(f"  {point.label:<38} claimers={point.distinct_claimers} "
              f"aborted={point.aborted_results} spec_ok={point.spec_ok}")
    assert all(point.spec_ok and point.delivered for point in points)
    quiet = points[0]
    assert quiet.distinct_claimers == 1 and quiet.aborted_results == 0


def test_bench_ablation_logcost(benchmark):
    """E7: forced-log latency sweep -- where 2PC and AR cross over."""
    points = benchmark(lambda: log_cost_sweep(latencies=[0.0, 2.0, 5.0, 12.5, 25.0],
                                              requests=1))
    print()
    for point in points:
        print(f"  log={point.forced_write_latency:5.1f} ms  AR={point.ar_total:6.1f}  "
              f"2PC={point.twopc_total:6.1f}  AR wins: {point.ar_wins}")
    assert not points[0].ar_wins        # free logs: 2PC is leaner
    assert points[-1].ar_wins           # expensive logs: AR wins
    assert any(point.ar_wins for point in points if point.forced_write_latency >= 12.5)


def test_bench_ablation_scaling(benchmark):
    """E8: replication degree (1, 3, 5, 7 application servers)."""
    points = benchmark(lambda: scaling_sweep(degrees=[1, 3, 5, 7], requests=1))
    print()
    for point in points:
        print(f"  n={point.num_app_servers}  latency={point.mean_latency:6.1f} ms  "
              f"messages={point.total_messages}")
    assert all(point.delivered for point in points)
    latencies = [point.mean_latency for point in points]
    assert max(latencies) - min(latencies) < 10.0
    messages = [point.total_messages for point in points]
    assert messages == sorted(messages)
