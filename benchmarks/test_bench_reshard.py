"""Reshard bench gate: online d=4 -> d=8 growth under live open-loop load.

Runs :func:`repro.experiments.reshard.run` (the standard growth scenario and
its fault-free twin, same seed) plus the reconfiguration-window fault
campaign, writes the BENCH json (``benchmarks/out/reshard.json``) and
enforces ``benchmarks/baseline/reshard.json``:

* every request is delivered and both runs are spec-clean -- including the
  epoch-confinement extension of S.1 judged across the reconfiguration;
* the data tier actually grew (epoch advanced, eight shards committed) and
  the migration window stayed under the committed bound;
* throughput with the migration in the middle stays within the committed
  ratio of the flat run's -- elasticity the client tier cannot see;
* every window-targeted fault schedule (``RESHARD_CAMPAIGN_RUNS``
  overridable for quick local runs) leaves the protocol spec-clean.
"""

import json
import os

from repro.experiments import reshard

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baseline",
                             "reshard.json")

with open(BASELINE_PATH, encoding="utf-8") as handle:
    BASELINE = json.load(handle)

CAMPAIGN_RUNS = int(os.environ.get("RESHARD_CAMPAIGN_RUNS",
                                   BASELINE["campaign_runs"]))


def test_bench_reshard_online_growth_and_window_campaign():
    report = reshard.run(requests=BASELINE["requests_per_client"],
                         window_ms=BASELINE["window_ms"])
    report.campaign = reshard.run_campaign(runs=CAMPAIGN_RUNS,
                                           seed=BASELINE["campaign_seed"])
    print(f"\n{report.summary()}")

    assert report.undelivered == 0, \
        f"{report.undelivered} of {report.requested} requests never delivered"
    assert report.spec_ok, report.spec_summary
    # The tier really grew, online, and the migration window stayed tight.
    assert report.final_epoch >= 1
    assert len(report.final_shards) == 8, report.final_shards
    window = report.reshard_commit - report.reshard_begin
    assert 0 < window <= BASELINE["max_reshard_window_ms"], (
        f"migration window {window:.0f} ms exceeds the committed "
        f"{BASELINE['max_reshard_window_ms']:.0f} ms bound")
    # Elasticity: the client tier must not see the growth.
    assert report.throughput_ratio >= BASELINE["min_throughput_ratio"], (
        f"resharded throughput is {report.throughput_ratio:.2f}x the flat "
        f"run's (committed floor {BASELINE['min_throughput_ratio']}x)")
    # Every fault schedule aimed at the reconfiguration window came out clean.
    assert report.campaign.runs == CAMPAIGN_RUNS
    assert report.campaign.clean, report.campaign.summary()
    assert report.ok

    out_dir = os.environ.get("BENCH_OUT", os.path.join("benchmarks", "out"))
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "reshard.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_json(), handle, indent=2, sort_keys=True)
    print(f"BENCH json written to {path}")
