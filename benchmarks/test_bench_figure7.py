"""Benchmark E2 -- regenerate Figure 7 (communication steps, failure-free runs)."""

from repro.experiments import figure7


def test_bench_figure7_communication_steps(benchmark):
    """One failure-free request through each of the four protocol stacks."""
    report = benchmark(figure7.run)
    print("\n" + report.to_table())
    print("\nclient latencies:", {k: round(v, 1) for k, v in report.latencies.items()})
    assert report.expected_structure_holds()
    counts = report.message_counts()
    assert counts["baseline"] < counts["2PC"] <= counts["AR"] <= counts["PB"]


def test_bench_figure7_sequence_diagrams(benchmark):
    """Render the message-sequence listings (the figure's content)."""
    report = benchmark(figure7.run)
    diagrams = report.sequence_diagrams()
    print("\n" + diagrams)
    for protocol in ("baseline", "2PC", "PB", "AR"):
        assert protocol in diagrams
