"""Benchmark E1/E4 -- regenerate Figure 8 (latency table, cost of reliability).

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark drives the
calibrated simulator; the assertions check the *shape* of the paper's result
(ordering and approximate magnitude of the overheads), and the printed table
is the regenerated figure.
"""

import pytest

from repro.experiments import calibration, figure8
from repro.workload.generator import ClosedLoop


def test_bench_figure8_full_table(benchmark):
    """Regenerate the full Figure 8 table (baseline, AR, 2PC columns)."""
    report = benchmark(lambda: figure8.run(requests_per_protocol=2))
    print("\n" + report.to_table())
    print("\n" + report.compare_with_paper())
    assert report.shape_holds()


def test_bench_cost_of_reliability(benchmark):
    """E4: the headline claim -- AR ≈ +16 %, 2PC ≈ +23 % over the baseline."""
    report = benchmark(lambda: figure8.run(requests_per_protocol=1))
    overheads = report.overheads()
    assert 0.0 < overheads["AR"] < overheads["2PC"]
    assert overheads["AR"] == pytest.approx(0.16, abs=0.06)
    assert overheads["2PC"] == pytest.approx(0.23, abs=0.06)


def _single_request_latency(builder):
    workload = calibration.default_workload()
    deployment = builder(workload=workload, db_timing=calibration.paper_database_timing())
    stats = ClosedLoop().run(deployment, [workload.debit(0, 10)])
    return stats.mean_latency


def test_bench_figure8_baseline_column(benchmark):
    """The baseline (unreliable) column in isolation."""
    latency = benchmark(lambda: _single_request_latency(calibration.build_baseline_deployment))
    assert latency == pytest.approx(calibration.PAPER_FIGURE8["baseline"]["total"], rel=0.05)


def test_bench_figure8_ar_column(benchmark):
    """The asynchronous-replication (e-Transaction) column in isolation."""
    latency = benchmark(lambda: _single_request_latency(calibration.build_ar_deployment))
    assert latency == pytest.approx(calibration.PAPER_FIGURE8["AR"]["total"], rel=0.05)


def test_bench_figure8_twopc_column(benchmark):
    """The 2PC column in isolation."""
    latency = benchmark(lambda: _single_request_latency(calibration.build_twopc_deployment))
    assert latency == pytest.approx(calibration.PAPER_FIGURE8["2PC"]["total"], rel=0.05)
