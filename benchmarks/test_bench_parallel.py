"""Parallel-kernel bench gate: the sharded round engine on the soak shape.

Runs :func:`repro.sim.bench.run_parallel_bench` (serial vs ``jobs=8``
in-process vs ``jobs=8&workers=4`` forked workers on the scaled-down soak
shape), writes the BENCH json and enforces ``benchmarks/baseline/
parallel.json``:

* every mode must deliver every request spec-clean and process the exact
  same event count -- the determinism contract restated as a bench gate;
* the in-process overhead canary: ``workers=0`` buys no parallelism, so
  its wall time over serial is pure round-engine cost (context chains,
  seq marks, barrier merges) and must stay under the committed bound;
* the headline speedup: with 4 forked workers the run must beat serial by
  the committed factor.  This is only physics on a machine with idle
  cores, so the gate skips below ``min_cpus`` (CI runs it; a laptop
  running flat out is measuring contention, not the kernel).
"""

import json
import os

import pytest

from repro.sim import bench

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baseline",
                             "parallel.json")

with open(BASELINE_PATH, encoding="utf-8") as handle:
    BASELINE = json.load(handle)


@pytest.fixture(scope="module")
def payload():
    result = bench.run_parallel_bench(requests=BASELINE["requests"],
                                      jobs=BASELINE["jobs"],
                                      workers=BASELINE["workers"])
    print()
    print(bench.format_parallel_report(result))

    out_dir = os.environ.get("BENCH_OUT", os.path.join("benchmarks", "out"))
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "parallel.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
    print(f"BENCH json written to {path}")
    return result


def test_every_mode_is_spec_clean_and_event_identical(payload):
    serial = payload["serial"]
    for mode in ("serial", "sharded", "forked"):
        figures = payload[mode]
        assert figures["spec_ok"], f"{mode}: spec violations"
        assert figures["delivered"] == serial["delivered"], (
            f"{mode}: delivered {figures['delivered']} != "
            f"serial {serial['delivered']}")
        assert figures["events_processed"] == serial["events_processed"], (
            f"{mode}: processed {figures['events_processed']} events, "
            f"serial processed {serial['events_processed']}")


def test_inprocess_overhead_within_committed_bound(payload):
    bound = BASELINE["max_inprocess_overhead"]
    assert payload["inprocess_overhead"] <= bound, (
        f"jobs={payload['jobs']} workers=0 costs "
        f"{payload['inprocess_overhead']}x serial wall time "
        f"(committed bound {bound}x)")


@pytest.mark.skipif(os.cpu_count() is None
                    or os.cpu_count() < BASELINE["min_cpus"],
                    reason=f"worker speedup needs >= {BASELINE['min_cpus']} "
                           "cores; this machine cannot exhibit it")
def test_worker_speedup_meets_committed_floor(payload):
    floor = BASELINE["min_worker_speedup"]
    assert payload["worker_speedup"] >= floor, (
        f"{payload['workers']} forked workers reached only "
        f"{payload['worker_speedup']}x serial (committed floor {floor}x) "
        f"on {payload['cpu_count']} cores")
