"""Soak benchmark: >=100k spec-checked requests with flat observability memory.

Runs the standard sharded soak deployment (``repro.experiments.soak``) for
``SOAK_REQUESTS`` total open-loop arrivals (default 100000, overridable via
the environment for quick local runs), asserts the run is spec-clean with
bounded trace memory and a flat spec-monitor in-flight table, and emits the
machine-readable BENCH json (``benchmarks/out/soak.json``; override the
directory with ``BENCH_OUT``).  CI uploads the file as a workflow artifact.

This run was impossible before the streaming observability refactor: with an
append-everything trace and a post-hoc checker, memory grew linearly with
traffic and the final spec check was quadratic in the event count.
"""

import json
import os

from repro.experiments import soak

SOAK_REQUESTS = int(os.environ.get("SOAK_REQUESTS", "100000"))


def test_bench_soak_100k_requests_flat_memory():
    report = soak.run(requests=SOAK_REQUESTS, checkpoints=20)
    print(f"\n{report.summary()}")

    assert report.requested >= SOAK_REQUESTS
    assert report.undelivered == 0, \
        f"{report.undelivered} of {report.requested} requests never delivered"
    assert report.spec_ok, report.spec_summary
    # All eight properties were judged online, over the whole run.
    assert set(report.checked_properties) == \
        {"T.1", "T.2", "A.1", "A.2", "A.3", "V.1", "V.2", "S.1"}
    # Flat memory, measured: the stored trace never left its retention bound
    # and the monitor's in-flight table did not trend with the request count.
    assert report.trace_bounded, \
        [s.trace_stored for s in report.samples]
    assert report.spec_memory_flat, \
        [s.spec_in_flight for s in report.samples]
    # The monitor retired (essentially) every transaction it opened.
    assert report.samples[-1].spec_retired >= report.delivered

    out_dir = os.environ.get("BENCH_OUT", os.path.join("benchmarks", "out"))
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "soak.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_json(), handle, indent=2, sort_keys=True)
    print(f"BENCH json written to {path}")


def test_bench_soak_ring_retention_keeps_flight_recorder():
    """A quick ring-retention soak: bounded stored suffix plus clean spec."""
    report = soak.run(
        "etx://a3.d4.c16?rate=16&arrival=poisson&seed=3&workload=bank"
        "&placement=hash&trace=ring:2000",
        requests=2_000, checkpoints=8)
    print(f"\n{report.summary()}")
    assert report.undelivered == 0
    assert report.spec_ok, report.spec_summary
    assert report.trace_bounded
    assert 0 < report.trace_stored_final <= 2_000
