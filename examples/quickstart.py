#!/usr/bin/env python3
"""Quickstart: run one e-Transaction through a simulated three-tier system.

One scenario DSN describes the whole deployment (one client, three application
servers, one database server, consensus-backed wo-registers); the unified
scenario API builds it, issues a single request, and checks the run against
the executable e-Transaction specification.

Run with:  python examples/quickstart.py
"""

from repro import api
from repro.core import Request

DSN = "etx://a3.d1.c1"   # 3 app servers (tolerates one crash), 1 db, 1 client


def main() -> None:
    system = api.build(api.Scenario.from_dsn(DSN),
                       initial_data={"greeting": None})

    # issue() returns a handle; run_request drives the simulator until the
    # committed result is delivered back to the client.
    issued = system.run_request(Request("greeting", {"text": "hello, exactly once"}))

    print("scenario:          ", DSN)
    print("delivered:         ", issued.delivered)
    print("attempts (results):", issued.attempts)
    print("client latency:     %.1f ms (virtual)" % issued.latency)
    print("result value:      ", issued.result.value)
    print("computed by:       ", issued.result.computed_by)
    print("database contents: ", system.db_servers["d1"].committed_value("greeting"))

    # Every run records a structured trace; the specification checker verifies
    # the paper's properties (T.1, T.2, A.1-A.3, V.1, V.2) over it.
    report = system.check_spec()
    print("specification:     ", report.summary())

    # A peek at what happened on the wire.
    print("\nmessage counts by type:")
    for msg_type, count in sorted(system.stats.by_type_sent.items()):
        print(f"  {msg_type:<16} {count}")


if __name__ == "__main__":
    main()
