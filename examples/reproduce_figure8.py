#!/usr/bin/env python3
"""Regenerate the paper's Figure 8 (latency table) and compare with the paper.

Runs the closed-loop bank-account workload through the three measured protocol
stacks (unreliable baseline, asynchronous replication, presumed-nothing 2PC)
on the calibrated simulator and prints the component breakdown, the measured
"cost of reliability", and a side-by-side comparison with the paper's numbers.

Run with:  python examples/reproduce_figure8.py
"""

from repro.experiments import figure1, figure7, figure8


def main() -> None:
    print("Reproducing Figure 8 (latency, milliseconds) ...\n")
    report = figure8.run(requests_per_protocol=5)
    print(report.to_table())
    print()
    print(report.compare_with_paper())
    print()
    print("shape of the result holds (baseline < AR < 2PC, overheads ~16%/~23%):",
          report.shape_holds())

    print("\nReproducing Figure 7 (communication steps, failure-free runs) ...\n")
    steps = figure7.run()
    print(steps.to_table())

    print("\nReproducing Figure 1 (the four e-Transaction executions) ...\n")
    executions = figure1.run()
    print(executions.to_text())


if __name__ == "__main__":
    main()
