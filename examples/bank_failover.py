#!/usr/bin/env python3
"""Exactly-once payments across a primary crash (fail-over demo).

The end user pays 100 once.  The default primary application server crashes at
the worst possible moment -- after the databases voted yes and the decision was
written, but before the client heard anything back.  With the e-Transaction
protocol a backup finishes the commit and answers the client; the account is
debited exactly once.  The same crash against the unreliable baseline leaves
the client hanging, which is why end users retry, which is how people get
charged twice.

Both stacks come from one scenario DSN each -- only the scheme (and the crash
time) differs.

Run with:  python examples/bank_failover.py
"""

from repro import api
from repro.workload.bank import BankWorkload

# just after the decision is written into regD:
ETX_DSN = "etx://a3.d1.c1?detect=10&fault=crash@244:a1"
# after the database commit, before the client's reply:
BASELINE_DSN = "baseline://a1.d1.c1?fault=crash@215:a1"


def run_etransaction(bank: BankWorkload) -> None:
    system = api.build(api.Scenario.from_dsn(ETX_DSN), workload=bank)
    issued = system.run_request(bank.debit(0, 100))

    answered_by = {event.process
                   for event in system.trace.select("as_result_sent", outcome="commit")}
    print("=== e-Transaction protocol (asynchronous replication) ===")
    print("scenario:", ETX_DSN)
    print("delivered:", issued.delivered, " latency: %.1f ms" % issued.latency)
    print("result computed by:", issued.result.computed_by,
          " committed result reported by:", sorted(answered_by))
    balance = system.db_servers["d1"].committed_value("account:0")
    print("account balance:", balance, "(debited exactly once)")
    print("specification:", system.check_spec().summary())
    assert balance == bank.initial_balance - 100


def run_baseline(bank: BankWorkload) -> None:
    system = api.build(api.Scenario.from_dsn(BASELINE_DSN), workload=bank)
    issued = system.issue(bank.debit(0, 100))
    system.run(until=60_000.0)

    balance = system.db_servers["d1"].committed_value("account:0")
    print("\n=== unreliable baseline, crash between commit and reply ===")
    print("scenario:", BASELINE_DSN)
    print("delivered:", issued.delivered)
    print("account balance:", balance)
    if not issued.delivered and balance != bank.initial_balance:
        print("the payment WAS applied but the user never heard back -- "
              "a manual retry would charge the account twice")
    report = system.check_spec()
    print("specification:", report.summary())


def main() -> None:
    run_etransaction(BankWorkload(num_accounts=1, initial_balance=500))
    run_baseline(BankWorkload(num_accounts=1, initial_balance=500))


if __name__ == "__main__":
    main()
