#!/usr/bin/env python3
"""Exactly-once payments across a primary crash (fail-over demo).

The end user pays 100 once.  The default primary application server crashes at
the worst possible moment -- after the databases voted yes and the decision was
written, but before the client heard anything back.  With the e-Transaction
protocol a backup finishes the commit and answers the client; the account is
debited exactly once.  The same crash against the unreliable baseline leaves
the client hanging, which is why end users retry, which is how people get
charged twice.

Run with:  python examples/bank_failover.py
"""

from repro.baselines import BaselineConfig, BaselineDeployment
from repro.core import DeploymentConfig, EtxDeployment
from repro.failure.injection import FaultSchedule
from repro.workload.bank import BankWorkload

CRASH_TIME = 244.0           # just after the decision is written into regD
BASELINE_CRASH_TIME = 215.0  # after the database commit, before the client's reply


def run_etransaction(bank: BankWorkload) -> None:
    deployment = EtxDeployment(DeploymentConfig(
        num_app_servers=3,
        num_db_servers=1,
        detection_delay=10.0,
        business_logic=bank.business_logic,
        initial_data=bank.initial_data(),
    ))
    deployment.apply_faults(FaultSchedule().crash(CRASH_TIME, "a1"))
    issued = deployment.run_request(bank.debit(0, 100))

    answered_by = {event.process
                   for event in deployment.trace.select("as_result_sent", outcome="commit")}
    print("=== e-Transaction protocol (asynchronous replication) ===")
    print("primary a1 crashed at t=%.0f ms" % CRASH_TIME)
    print("delivered:", issued.delivered, " latency: %.1f ms" % issued.latency)
    print("result computed by:", issued.result.computed_by,
          " committed result reported by:", sorted(answered_by))
    balance = deployment.db_servers["d1"].committed_value("account:0")
    print("account balance:", balance, "(debited exactly once)")
    print("specification:", deployment.check_spec().summary())
    assert balance == bank.initial_balance - 100


def run_baseline(bank: BankWorkload) -> None:
    deployment = BaselineDeployment(BaselineConfig(
        num_db_servers=1,
        business_logic=bank.business_logic,
        initial_data=bank.initial_data(),
    ))
    deployment.apply_faults(FaultSchedule().crash(BASELINE_CRASH_TIME, "a1"))
    issued = deployment.issue(bank.debit(0, 100))
    deployment.run(until=60_000.0)

    balance = deployment.db_servers["d1"].committed_value("account:0")
    print("\n=== unreliable baseline, crash between commit and reply ===")
    print("delivered:", issued.delivered)
    print("account balance:", balance)
    if not issued.delivered and balance != bank.initial_balance:
        print("the payment WAS applied but the user never heard back -- "
              "a manual retry would charge the account twice")
    report = deployment.check_spec()
    print("specification:", report.summary())


def main() -> None:
    bank = BankWorkload(num_accounts=1, initial_balance=500)
    run_etransaction(bank)
    run_baseline(BankWorkload(num_accounts=1, initial_balance=500))


if __name__ == "__main__":
    main()
