#!/usr/bin/env python3
"""Travel-agency scenario: the paper's motivating example.

Two clients book trips (flight + hotel + car) against a two-database
back end.  Inventory is finite, so some bookings come back as ``sold_out`` --
a *user-level abort*, which the paper models as a regular result value: the
e-Transaction still executes exactly once, it just tells the user there are no
seats left.  A database crash in the middle of the run -- declared right in
the scenario DSN -- is tolerated without losing or duplicating any booking.

Run with:  python examples/travel_booking.py
"""

from repro import api
from repro.workload.travel import TravelWorkload

# 3 app servers, both databases must commit every booking, two clients; one of
# the databases crashes for a while in the middle of the run -- the protocol
# keeps retrying the decision until it recovers (property T.2).
DSN = "etx://a3.d2.c2?seed=42&fault=crash_for@600:d2:800"


def main() -> None:
    travel = TravelWorkload(destinations=("PAR", "NYC"), seats_per_flight=3,
                            rooms_per_hotel=3, cars_per_city=2)
    system = api.build(api.Scenario.from_dsn(DSN), workload=travel)

    bookings = []
    for index in range(8):
        client = "c1" if index % 2 == 0 else "c2"
        destination = "PAR" if index < 5 else "NYC"
        bookings.append((client, system.issue(
            travel.book(destination, traveller=f"{client}-trip{index}"), client=client)))

    system.sim.run_until(lambda: all(issued.delivered for _, issued in bookings),
                         until=5_000_000.0)

    confirmed = 0
    for client, issued in bookings:
        value = issued.result.value
        status = value["status"]
        if status == "confirmed":
            confirmed += 1
            print(f"{client}: confirmed  booking #{value['booking_number']}  "
                  f"flight {value['flight']}  hotel '{value['hotel']}'")
        else:
            print(f"{client}: sold out   ({value})")

    for name, db in system.db_servers.items():
        snapshot = db.store.committed_snapshot()
        print(f"\n{name}: bookings={travel.bookings_made(snapshot)} "
              f"seats PAR={travel.seats_left(snapshot, 'PAR')} "
              f"NYC={travel.seats_left(snapshot, 'NYC')}")

    # Exactly-once accounting: confirmed bookings == inventory consumed, on
    # every database, despite the crash.
    d1 = system.db_servers["d1"].store.committed_snapshot()
    d2 = system.db_servers["d2"].store.committed_snapshot()
    assert d1 == d2, "databases must agree"
    assert travel.bookings_made(d1) == confirmed
    print("\nspecification:", system.check_spec().summary())


if __name__ == "__main__":
    main()
