"""Property tests: partitioned deployments under random faults.

Mixed single-shard and cross-shard traffic over ``d >= 2`` partitioned
deployments, with :class:`~repro.failure.injection.RandomFaultPlan` schedules,
must keep the e-Transaction specification -- now judged over each
transaction's participant set -- clean:

* the **etx** stack tolerates the paper's full fault model (minority of
  application servers crash, databases crash and recover, false suspicions),
  so it gets the full plan and the full property check;
* the three **baselines** are checked for *safety* (agreement, validity,
  participant confinement) under database crash/recovery faults -- they are
  not expected to terminate under faults (that is the paper's argument), so
  termination is only enforced on their failure-free runs.
"""

from hypothesis import given, settings, strategies as st

from repro import api
from repro.failure.injection import RandomFaultPlan
from repro.workload.generator import ClosedLoop


def _scenario(protocol: str, num_db_servers: int, seed: int) -> api.Scenario:
    return api.Scenario(protocol=protocol, num_db_servers=num_db_servers,
                        num_clients=2, seed=seed, workload="bank",
                        placement="hash", xshard=0.4)


def _expected_delta(request) -> int:
    """Net effect of one committed bank request on the total money supply."""
    amount = request.params["amount"]
    if request.operation == "bank_debit":
        return -amount
    if request.operation == "bank_credit":
        return amount
    return 0  # transfers conserve


def _money_adds_up(system, requests) -> None:
    """Exactly-once accounting: every delivered request applied once.

    Debits/credits move the total by their amount; a transfer -- including a
    cross-shard one, where each shard applies only its half -- moves nothing.
    """
    workload = system.workload.instance
    committed = {}
    for db in system.deployment.db_servers.values():
        committed.update(db.store.committed_snapshot())
    expected = sum(workload.initial_data().values()) \
        + sum(_expected_delta(request) for request in requests)
    assert workload.total_money(committed) == expected, \
        "sharded bank traffic must apply each committed request exactly once"


@given(seed=st.integers(min_value=0, max_value=10_000),
       num_db_servers=st.sampled_from([2, 3]))
@settings(max_examples=12, deadline=None)
def test_etx_spec_holds_under_random_faults_with_mixed_shard_traffic(seed, num_db_servers):
    scenario = _scenario("etx", num_db_servers, seed)
    system = api.build(scenario)
    plan = RandomFaultPlan(
        app_servers=scenario.app_server_names,
        db_servers=scenario.db_server_names,
        horizon=1_500.0,
    )
    system.apply_faults(plan.generate(seed))
    requests = [system.standard_request() for _ in range(4)]
    stats = ClosedLoop().run(system, requests)
    # Let fail-over and termination traffic drain before judging T.2.
    system.run(until=system.sim.now + 20_000.0)
    assert stats.count == 4, f"seed={seed}: {stats.undelivered} undelivered"
    report = system.check_spec()
    assert report.ok, f"seed={seed}: {report.summary()}"
    _money_adds_up(system, requests)


def _run_under_db_faults(protocol: str, seed: int):
    scenario = _scenario(protocol, 2, seed)
    system = api.build(scenario)
    plan = RandomFaultPlan(
        app_servers=[],  # the baselines' middle tiers are not crash-tolerant
        db_servers=scenario.db_server_names,
        horizon=1_000.0,
        db_crash_probability=0.6,
    )
    system.apply_faults(plan.generate(seed))
    ClosedLoop().run(system, 2)
    system.run(until=system.sim.now + 10_000.0)
    # Safety only: a baseline may block forever on a crashed database (no
    # T.1/T.2); what it must not do is corrupt the shard tier.
    return system.check_spec(check_termination=False)


@given(seed=st.integers(min_value=0, max_value=10_000),
       protocol=st.sampled_from(["2pc", "pb"]))
@settings(max_examples=12, deadline=None)
def test_voting_baselines_safety_holds_under_db_faults(seed, protocol):
    """2PC and primary-backup collect votes before deciding, so agreement,
    validity and participant confinement survive database crash/recovery
    even for cross-shard transactions."""
    report = _run_under_db_faults(protocol, seed)
    assert report.ok, f"seed={seed}: {report.summary()}"


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_unreliable_baseline_confinement_holds_under_db_faults(seed):
    """The one-phase-commit baseline has no atomic commitment across shards:
    a database crash between its per-shard commits may leave a cross-shard
    transaction half-committed (a V.2/A.1 violation -- the paper's argument,
    now visible per shard).  What participant routing must still guarantee is
    confinement (S.1), at-most-once per database (A.2) and validity (V.1)."""
    report = _run_under_db_faults("baseline", seed)
    for always_held in ("S.1", "A.2", "V.1"):
        assert not report.violated(always_held), \
            f"seed={seed}: {report.summary()}"


@given(seed=st.integers(min_value=0, max_value=10_000),
       protocol=st.sampled_from(["baseline", "2pc", "pb", "etx"]))
@settings(max_examples=8, deadline=None)
def test_failure_free_mixed_shard_traffic_is_fully_spec_clean(seed, protocol):
    result = api.run_scenario(_scenario(protocol, 3, seed), requests=2)
    assert result.ok, f"seed={seed}: {result.spec.summary()}"
    commits = sum(db.commits for db in result.statistics.by_database.values())
    assert commits >= result.delivered  # cross-shard commits count per shard
