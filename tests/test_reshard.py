"""Integration tests for online resharding: d=4 -> d=8 under live traffic.

The synthetic-trace tests in ``test_core_spec.py`` establish that the
epoch-confinement extension of S.1 can fail; these tests establish that the
real migration protocol never makes it fail -- the tier grows mid-stream,
in-flight claims drain on the old epoch, stale placements re-route instead
of erroring, and the whole thing is deterministic and crash-tolerant.
"""

import pytest

from repro import api
from repro.api.runner import load_generator_for
from repro.api.scenario import ScenarioError
from repro.core.types import reset_request_counter

RESHARD_DSN = ("etx://a3.d4.c2?rate=40&workload=bank&placement=hash"
               "&seed=3&faults=reshard@300:d4->d8")


def run_scenario(dsn, requests=8, settle=8000):
    reset_request_counter()
    scenario = api.Scenario.from_dsn(dsn)
    system = api.build(scenario)
    generator = load_generator_for(scenario)
    generator.run(system, requests)
    if settle > 0:
        system.run(until=system.sim.now + settle)
    return system


def test_reshard_grows_tier_online_and_stays_spec_clean():
    system = run_scenario(RESHARD_DSN)
    trace = system.trace

    # The coordinator committed epoch 1 with the grown shard set.
    commit = trace.last("reshard", stage="commit")
    assert commit is not None
    assert commit.data["epoch"] == 1
    assert sorted(commit.data["shards"]) == [f"d{i}" for i in range(1, 9)]

    # Traffic kept flowing across the migration: deliveries on both sides.
    deliveries = trace.select("client_deliver")
    assert len(deliveries) == 16
    assert any(e.time < commit.time for e in deliveries)
    assert any(e.time > commit.time for e in deliveries)

    # The new shards actually take load after the commit: hash placement
    # over the bank's account keys spreads decisions onto d5..d8.
    new_shard_decides = [e for e in trace.select("db_decide")
                         if e.process in {"d5", "d6", "d7", "d8"}]
    assert new_shard_decides
    assert all(e.time >= commit.time for e in new_shard_decides)

    # Spec-clean end to end, epoch confinement included.
    report = system.check_spec(check_termination=True)
    assert report.ok, "\n".join(str(v) for v in report.violations)
    assert "S.1" in report.checked_properties


def test_reshard_run_is_deterministic():
    def fingerprint(system):
        return [(e.time, e.category, e.process, repr(sorted(e.data.items())))
                for e in system.trace.select()]

    first = fingerprint(run_scenario(RESHARD_DSN))
    second = fingerprint(run_scenario(RESHARD_DSN))
    assert first == second


def test_stale_epoch_claims_reroute_instead_of_erroring():
    system = run_scenario(RESHARD_DSN)
    trace = system.trace
    # With the reshard firing mid-stream at this rate, some claims race the
    # commit and carry a stale placement; each must surface as an explicit
    # epoch_retry (re-route) or epoch_defer (wait for the key to land), and
    # every computation that did commit must be stamped with its epoch.
    assert trace.count("epoch_retry") + trace.count("epoch_defer") > 0
    computes = trace.select("as_compute")
    assert computes
    assert all("epoch" in e.data and "participants" in e.data for e in computes)
    report = system.check_spec(check_termination=True)
    assert report.ok, "\n".join(str(v) for v in report.violations)


def test_reshard_survives_db_crash_inside_migration_window():
    # A source shard goes down right as the window opens; migration stalls
    # on its WAL until recovery, then completes -- still spec-clean, still
    # every request delivered.
    dsn = ("etx://a3.d4.c2?rate=40&workload=bank&placement=hash&seed=3"
           "&faults=reshard@300:d4->d8,crash_for@320:d2:150")
    system = run_scenario(dsn, settle=12000)
    trace = system.trace
    commit = trace.last("reshard", stage="commit")
    assert commit is not None and commit.data["epoch"] == 1
    assert trace.count("client_deliver") == 16
    report = system.check_spec(check_termination=True)
    assert report.ok, "\n".join(str(v) for v in report.violations)


def test_baseline_protocols_reject_resharding():
    scenario = api.Scenario.from_dsn(
        "2pc://a1.d2.c1?placement=hash&faults=reshard@100:d2->d4")
    with pytest.raises(ScenarioError, match="does not support online resharding"):
        api.build(scenario)


def test_baseline_protocols_reject_mailbox_bounds():
    scenario = api.Scenario.from_dsn("2pc://a1.d1.c1?mailbox=4")
    with pytest.raises(ScenarioError, match="mailbox"):
        api.build(scenario)
