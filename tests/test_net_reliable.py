"""Tests for the reliable-channel layer (retransmission + duplicate suppression)."""

import pytest

from repro.net.message import Message, is_type
from repro.net.network import Network
from repro.net.reliable import ReliableChannelLayer
from repro.sim.process import Process
from repro.sim.scheduler import Simulator


def build(seed=0, loss=0.0, retransmit_interval=5.0, max_attempts=None):
    sim = Simulator(seed=seed)
    network = Network(sim, loss_probability=loss)
    a = network.register(Process(sim, "a"))
    b = network.register(Process(sim, "b"))
    layer = ReliableChannelLayer(network, retransmit_interval=retransmit_interval,
                                 max_attempts=max_attempts)
    return sim, network, layer, a, b


def collect(process, msg_type, sink):
    def body():
        while True:
            message = yield process.receive(is_type(msg_type))
            sink.append(message)

    return body()


def test_message_delivered_over_lossless_network():
    sim, network, layer, a, b = build()
    received = []
    b.spawn(collect(b, "Ping", received))
    a.send("b", Message("Ping", payload={"n": 1}))
    sim.run(until=100.0)
    assert len(received) == 1
    assert received[0].payload == {"n": 1}
    assert received[0].sender == "a"


def test_message_eventually_delivered_over_lossy_network():
    sim, network, layer, a, b = build(seed=11, loss=0.6)
    received = []
    b.spawn(collect(b, "Data", received))
    for n in range(10):
        a.send("b", Message("Data", payload={"n": n}))
    sim.run(until=2_000.0)
    assert sorted(m.payload["n"] for m in received) == list(range(10))


def test_duplicates_suppressed_at_receiver():
    # With heavy loss the ack may be lost, causing retransmission of an
    # already-delivered message; the receiver must deliver it exactly once.
    sim, network, layer, a, b = build(seed=5, loss=0.5)
    received = []
    b.spawn(collect(b, "Data", received))
    a.send("b", Message("Data", payload={"n": 42}))
    sim.run(until=2_000.0)
    assert len(received) == 1
    # The layer records any suppressed duplicates.
    duplicates = sim.trace.count("rc_duplicate_suppressed")
    assert duplicates >= 0  # may be zero on lucky runs; present when acks were lost


def test_retransmission_stops_after_ack():
    sim, network, layer, a, b = build(retransmit_interval=5.0)
    received = []
    b.spawn(collect(b, "Ping", received))
    a.send("b", Message("Ping"))
    sim.run(until=500.0)
    assert layer.unacknowledged("a") == 0
    # Only the original data message should have been transmitted (plus its ack).
    assert network.stats.by_type_sent.get("_rc_data", 0) == 1


def test_crashed_sender_stops_retransmitting():
    sim, network, layer, a, b = build(loss=1.0)  # nothing ever gets through
    a.send("b", Message("Ping"))
    sim.run(until=20.0)
    a.crash()
    sent_before = network.stats.sent
    sim.run(until=200.0)
    # After the crash the sender performs no further retransmissions.
    assert network.stats.sent == sent_before


def test_max_attempts_bounds_retransmissions():
    sim, network, layer, a, b = build(loss=1.0, retransmit_interval=2.0, max_attempts=3)
    a.send("b", Message("Ping"))
    sim.run(until=100.0)
    assert network.stats.by_type_sent.get("_rc_data", 0) == 3
    assert layer.unacknowledged("a") == 0


def test_per_destination_sequence_numbers_are_independent():
    sim = Simulator()
    network = Network(sim)
    a = network.register(Process(sim, "a"))
    b = network.register(Process(sim, "b"))
    c = network.register(Process(sim, "c"))
    layer = ReliableChannelLayer(network)
    received_b, received_c = [], []
    b.spawn(collect(b, "Data", received_b))
    c.spawn(collect(c, "Data", received_c))
    a.send("b", Message("Data", payload={"n": 1}))
    a.send("c", Message("Data", payload={"n": 2}))
    sim.run(until=100.0)
    assert [m.payload["n"] for m in received_b] == [1]
    assert [m.payload["n"] for m in received_c] == [2]


def test_invalid_retransmit_interval_rejected():
    sim = Simulator()
    network = Network(sim)
    with pytest.raises(ValueError):
        ReliableChannelLayer(network, retransmit_interval=0.0)
