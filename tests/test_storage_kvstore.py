"""Tests for the transactional key-value store and the XA facade."""

import pytest

from repro.storage.kvstore import (
    ABORTED,
    COMMITTED,
    PREPARED,
    TransactionError,
    TransactionalKVStore,
)
from repro.storage.locks import LockConflict
from repro.storage.xa import OUTCOME_ABORT, OUTCOME_COMMIT, XAResource


def make_store(**initial):
    return TransactionalKVStore("db", initial_data=initial)


# ------------------------------------------------------------------ basic txn


def test_begin_read_write_commit_cycle():
    store = make_store(balance=100)
    store.begin("t1")
    assert store.read("t1", "balance") == 100
    store.write("t1", "balance", 90)
    assert store.read("t1", "balance") == 90  # sees own write
    assert store.get_committed("balance") == 100  # not yet durable
    store.prepare("t1")
    store.commit("t1")
    assert store.get_committed("balance") == 90
    assert store.status("t1") == COMMITTED


def test_begin_is_idempotent_for_active_transaction():
    store = make_store()
    first = store.begin("t1")
    second = store.begin("t1")
    assert first is second


def test_begin_after_termination_rejected():
    store = make_store()
    store.begin("t1")
    store.abort("t1")
    with pytest.raises(TransactionError):
        store.begin("t1")


def test_abort_discards_writes_and_releases_locks():
    store = make_store(x=1)
    store.begin("t1")
    store.write("t1", "x", 2)
    store.abort("t1")
    assert store.get_committed("x") == 1
    assert store.status("t1") == ABORTED
    store.begin("t2")
    store.write("t2", "x", 3)  # lock is free again


def test_write_conflict_raises_lock_conflict():
    store = make_store()
    store.begin("t1")
    store.begin("t2")
    store.write("t1", "x", 1)
    with pytest.raises(LockConflict):
        store.write("t2", "x", 2)


def test_commit_requires_prepare_unless_one_phase():
    store = make_store()
    store.begin("t1")
    store.write("t1", "x", 1)
    with pytest.raises(TransactionError):
        store.commit("t1")
    store.commit("t1", allow_one_phase=True)
    assert store.get_committed("x") == 1


def test_commit_unknown_or_aborted_rejected():
    store = make_store()
    with pytest.raises(TransactionError):
        store.commit("ghost")
    store.begin("t1")
    store.abort("t1")
    with pytest.raises(TransactionError):
        store.commit("t1")


def test_abort_after_commit_rejected_and_commit_idempotent():
    store = make_store()
    store.begin("t1")
    store.write("t1", "x", 1)
    store.prepare("t1")
    store.commit("t1")
    assert store.commit("t1") == 0.0  # idempotent
    with pytest.raises(TransactionError):
        store.abort("t1")


def test_read_from_unknown_transaction_rejected():
    store = make_store()
    with pytest.raises(TransactionError):
        store.read("ghost", "x")


# --------------------------------------------------------------------- voting


def test_prepare_votes_yes_and_holds_locks():
    store = make_store()
    store.begin("t1")
    store.write("t1", "x", 1)
    vote, cost = store.prepare("t1")
    assert vote == "yes"
    assert cost > 0  # forced log write
    assert store.status("t1") == PREPARED
    assert store.in_doubt() == ["t1"]
    store.begin("t2")
    with pytest.raises(LockConflict):
        store.write("t2", "x", 2)  # in-doubt transaction still holds the lock


def test_prepare_unknown_transaction_votes_no():
    store = make_store()
    vote, cost = store.prepare("ghost")
    assert vote == "no"
    assert cost == 0.0


def test_prepare_is_idempotent():
    store = make_store()
    store.begin("t1")
    store.write("t1", "x", 1)
    assert store.prepare("t1")[0] == "yes"
    vote, cost = store.prepare("t1")
    assert vote == "yes"
    assert cost == 0.0


# ------------------------------------------------------------- crash recovery


def test_recovery_restores_committed_state():
    store = make_store(balance=100)
    store.begin("t1")
    store.write("t1", "balance", 42)
    store.prepare("t1")
    store.commit("t1")
    store.crash()
    assert store.committed_snapshot() == {}
    in_doubt = store.recover()
    assert in_doubt == []
    assert store.get_committed("balance") == 42


def test_recovery_restores_in_doubt_transactions_with_locks():
    store = make_store()
    store.begin("t1")
    store.write("t1", "x", 1)
    store.prepare("t1")
    store.crash()
    in_doubt = store.recover()
    assert in_doubt == ["t1"]
    assert store.status("t1") == PREPARED
    store.begin("t2")
    with pytest.raises(LockConflict):
        store.write("t2", "x", 9)
    # A later decision can still commit the in-doubt transaction.
    store.commit("t1")
    assert store.get_committed("x") == 1


def test_recovery_discards_active_unprepared_transactions():
    store = make_store(x=0)
    store.begin("t1")
    store.write("t1", "x", 5)
    store.crash()
    in_doubt = store.recover()
    assert in_doubt == []
    assert store.get_committed("x") == 0
    # The lock died with the unprepared transaction.
    store.begin("t2")
    store.write("t2", "x", 7)


def test_recovery_preserves_initial_data():
    store = make_store(seats=10)
    store.crash()
    store.recover()
    assert store.get_committed("seats") == 10


# ------------------------------------------------------------------ XA facade


def test_xa_execute_vote_decide_commit():
    resource = XAResource(make_store(balance=100))

    def logic(view):
        balance = view.read("balance")
        view.write("balance", balance - 10)
        return {"new_balance": balance - 10}

    result = resource.execute("t1", logic)
    assert result == {"new_balance": 90}
    vote, _ = resource.vote("t1")
    assert vote == "yes"
    outcome, _ = resource.decide("t1", OUTCOME_COMMIT)
    assert outcome == OUTCOME_COMMIT
    assert resource.store.get_committed("balance") == 90


def test_xa_decide_abort_always_aborts():
    resource = XAResource(make_store(balance=100))
    resource.execute("t1", lambda view: view.write("balance", 0))
    resource.vote("t1")
    outcome, _ = resource.decide("t1", OUTCOME_ABORT)
    assert outcome == OUTCOME_ABORT
    assert resource.store.get_committed("balance") == 100


def test_xa_commit_without_yes_vote_refused():
    resource = XAResource(make_store())
    resource.execute("t1", lambda view: view.write("x", 1))
    # No vote() call: decide(commit) must not commit.
    outcome, _ = resource.decide("t1", OUTCOME_COMMIT)
    assert outcome == OUTCOME_ABORT
    assert resource.store.get_committed("x") is None


def test_xa_decide_commit_is_idempotent():
    resource = XAResource(make_store())
    resource.execute("t1", lambda view: view.write("x", 1))
    resource.vote("t1")
    assert resource.decide("t1", OUTCOME_COMMIT)[0] == OUTCOME_COMMIT
    assert resource.decide("t1", OUTCOME_COMMIT)[0] == OUTCOME_COMMIT


def test_xa_unknown_outcome_rejected():
    resource = XAResource(make_store())
    with pytest.raises(ValueError):
        resource.decide("t1", "maybe")


def test_xa_lock_conflict_during_execute_aborts_transaction():
    store = make_store()
    resource = XAResource(store)
    resource.execute("t1", lambda view: view.write("x", 1))
    with pytest.raises(LockConflict):
        resource.execute("t2", lambda view: view.write("x", 2))
    assert store.status("t2") == ABORTED


def test_xa_recover_reports_in_doubt():
    resource = XAResource(make_store())
    resource.execute("t1", lambda view: view.write("x", 1))
    resource.vote("t1")
    resource.crash()
    assert resource.recover() == ["t1"]
    assert resource.in_doubt() == ["t1"]


def test_xa_one_phase_commit():
    resource = XAResource(make_store())
    resource.execute("t1", lambda view: view.write("x", 1))
    resource.commit_one_phase("t1")
    assert resource.store.get_committed("x") == 1
