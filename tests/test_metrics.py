"""Tests for the latency-breakdown and communication-step metrics."""

import pytest

from repro.core.timing import DatabaseTiming
from repro.metrics.latency import LatencyBreakdown, LatencyTable, breakdown_from_run
from repro.metrics.steps import (
    CommunicationProfile,
    Step,
    StepComparison,
    profile_from_trace,
)
from repro.sim.tracing import TraceRecorder


def timing():
    return DatabaseTiming(start=3.4, sql=187.0, end=3.4, prepare_cpu=6.5,
                          commit_cpu=6.1, forced_write=12.5)


# ------------------------------------------------------------ latency breakdown


def test_breakdown_baseline_has_no_prepare_or_log_components():
    trace = TraceRecorder()  # no as_prepare, no register writes, no tm_log
    breakdown = breakdown_from_run("baseline", trace, timing(), mean_latency=219.4, samples=3)
    assert breakdown.component("prepare") == 0.0
    assert breakdown.component("log-start") == 0.0
    assert breakdown.component("SQL") == pytest.approx(187.0)
    assert breakdown.component("commit") == pytest.approx(18.6)
    assert breakdown.component("other") > 0
    assert breakdown.total == pytest.approx(219.4)


def test_breakdown_ar_uses_register_write_durations():
    trace = TraceRecorder()
    trace.record("as_prepare", "a1", outcome="commit")
    trace.record("as_phase", "a1", phase="regA_write", duration=4.5)
    trace.record("as_phase", "a1", phase="regD_write", duration=4.7)
    breakdown = breakdown_from_run("AR", trace, timing(), mean_latency=252.3, samples=1)
    assert breakdown.component("prepare") == pytest.approx(19.0)
    assert breakdown.component("log-start") == pytest.approx(4.5)
    assert breakdown.component("log-outcome") == pytest.approx(4.7)


def test_breakdown_twopc_uses_forced_log_durations():
    trace = TraceRecorder()
    trace.record("as_prepare", "a1", outcome="commit")
    trace.record("tm_log", "a1", which="start", duration=12.5)
    trace.record("tm_log", "a1", which="outcome", duration=12.5)
    breakdown = breakdown_from_run("2PC", trace, timing(), mean_latency=266.5, samples=1)
    assert breakdown.component("log-start") == pytest.approx(12.5)
    assert breakdown.component("log-outcome") == pytest.approx(12.5)


def test_breakdown_other_never_negative():
    trace = TraceRecorder()
    breakdown = breakdown_from_run("baseline", trace, timing(), mean_latency=100.0, samples=1)
    assert breakdown.component("other") == 0.0


def test_overhead_and_table_rendering():
    table = LatencyTable()
    table.add(LatencyBreakdown("baseline", {"SQL": 187.0}, total=217.4, samples=1))
    table.add(LatencyBreakdown("AR", {"SQL": 187.0}, total=252.3, samples=1))
    table.add(LatencyBreakdown("2PC", {"SQL": 187.0}, total=266.5, samples=1))
    overheads = table.overheads()
    assert overheads["baseline"] == 0.0
    assert overheads["AR"] == pytest.approx(0.16, abs=0.01)
    assert overheads["2PC"] == pytest.approx(0.225, abs=0.01)
    text = table.to_table()
    assert "baseline" in text and "AR" in text and "2PC" in text
    assert "cost of rel." in text
    assert "total" in text


def test_table_column_lookup_and_as_row():
    table = LatencyTable()
    breakdown = LatencyBreakdown("AR", {"SQL": 187.0, "prepare": 19.0}, total=252.3, samples=2)
    table.add(breakdown)
    assert table.column("AR") is breakdown
    assert table.column("missing") is None
    row = breakdown.as_row()
    assert row["SQL"] == 187.0 and row["total"] == 252.3
    assert set(row) == {"start", "end", "commit", "prepare", "SQL", "log-start",
                        "log-outcome", "other", "total"}


def test_overhead_versus_zero_baseline_is_zero():
    baseline = LatencyBreakdown("baseline", {}, total=0.0, samples=0)
    other = LatencyBreakdown("AR", {}, total=100.0, samples=1)
    assert other.overhead_versus(baseline) == 0.0


# -------------------------------------------------------- communication profile


def make_trace_with_messages():
    from repro.sim.tracing import TraceEvent

    messages = [
        (0.0, "c1", "a1", "Request"),
        (2.5, "a1", "d1", "Execute"),
        (193.0, "d1", "a1", "ExecuteResult"),
        (195.0, "a1", "a2", "Consensus"),
        (197.0, "a1", "d1", "Prepare"),
        (216.0, "d1", "a1", "Vote"),
        (226.0, "a1", "d1", "Decide"),
        (248.0, "d1", "a1", "AckDecide"),
        (250.0, "a1", "c1", "Result"),
    ]
    trace = TraceRecorder()
    trace.extend([
        TraceEvent(time, "msg_send", sender, {"msg_type": msg_type, "destination": receiver})
        for time, sender, receiver, msg_type in messages
    ])
    return trace


def test_profile_from_trace_filters_and_orders_messages():
    trace = make_trace_with_messages()
    profile = profile_from_trace(trace, "AR")
    assert profile.count("Request") == 1
    assert profile.count("Consensus") == 0  # collapsed out of the diagram
    assert profile.consensus_messages == 1
    assert profile.total_messages == 9
    times = [step.time for step in profile.steps]
    assert times == sorted(times)
    assert profile.message_types() == {"Request", "Execute", "ExecuteResult", "Prepare",
                                       "Vote", "Decide", "AckDecide", "Result"}


def test_client_visible_steps_counts_hops_between_request_and_result():
    trace = make_trace_with_messages()
    profile = profile_from_trace(trace, "AR")
    assert profile.client_visible_steps("c1") == 8  # 8 protocol sends before the Result
    assert profile.client_visible_steps("cX") == 0


def test_sequence_diagram_renders_steps():
    profile = CommunicationProfile("demo", steps=[Step(1.0, "c1", "a1", "Request")])
    text = profile.sequence_diagram()
    assert "demo" in text and "c1" in text and "Request" in text


def test_step_comparison_table():
    comparison = StepComparison()
    comparison.add(CommunicationProfile("baseline", steps=[Step(0.0, "c1", "a1", "Request")]))
    comparison.add(CommunicationProfile("AR", steps=[Step(0.0, "c1", "a1", "Request"),
                                                     Step(1.0, "a1", "d1", "Prepare")]))
    assert comparison.message_counts() == {"baseline": 1, "AR": 2}
    table = comparison.to_table()
    assert "baseline" in table and "AR" in table


# ------------------------------------------------------------- percentiles


def test_percentile_interpolates_linearly():
    import pytest

    from repro.metrics import percentile

    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0.0) == 10.0
    assert percentile(values, 1.0) == 40.0
    assert percentile(values, 0.5) == pytest.approx(25.0)
    assert percentile(values, 1 / 3) == pytest.approx(20.0)  # exact at samples
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.99) == 7.0
    with pytest.raises(ValueError):
        percentile(values, 1.5)


def test_summarise_reports_the_standard_fractions():
    import pytest

    from repro.metrics import summarise

    summary = summarise([float(v) for v in range(1, 101)])
    assert set(summary) == {"p50", "p95", "p99"}
    assert summary["p50"] == pytest.approx(50.5)
    assert summary["p95"] == pytest.approx(95.05)
    assert summary["p99"] == pytest.approx(99.01)
