"""Additional resilience scenarios: client recovery, partitions, message loss.

These complement ``test_core_protocol.py`` with conditions the paper discusses
in its model section but does not draw in Figure 1: a client that crashes and
recovers, a temporary partition of the middle tier, and lossy links underneath
the reliable-channel layer.
"""


from repro.core import DeploymentConfig, EtxDeployment
from repro.core.timing import ProtocolTiming
from repro.failure.injection import FaultSchedule
from repro.workload.bank import BankWorkload

BANK = BankWorkload(num_accounts=1, initial_balance=100)


def make_deployment(**overrides):
    defaults = dict(num_app_servers=3, num_db_servers=1, detection_delay=10.0,
                    business_logic=BANK.business_logic, initial_data=BANK.initial_data())
    defaults.update(overrides)
    return EtxDeployment(DeploymentConfig(**defaults))


def test_client_crash_and_recovery_gives_at_most_once():
    deployment = make_deployment()
    issued = deployment.issue(BANK.debit(0, 10))
    deployment.apply_faults(FaultSchedule().crash_for(20.0, "c1", downtime=500.0))
    deployment.run(until=2_000_000.0)
    # The diskless client does not resume the in-flight request after recovery:
    # it cannot know whether the debit was applied, so re-issuing it could
    # execute it twice.  At-most-once is what the paper promises here.
    assert not issued.delivered
    assert deployment.client.pending_requests() == 0
    assert deployment.db_servers["d1"].committed_value("account:0") in (90, 100)
    # The databases are not left blocked (T.2 independent of the client).
    assert deployment.db_servers["d1"].in_doubt() == []
    report = deployment.check_spec(check_termination=False)
    assert report.ok, report.summary()


def test_client_recovery_with_empty_queue_is_harmless():
    deployment = make_deployment()
    first = deployment.run_request(BANK.debit(0, 10))
    assert first.delivered
    deployment.client.crash()
    deployment.client.recover()
    second = deployment.run_request(BANK.debit(0, 10))
    assert second.delivered
    assert deployment.db_servers["d1"].committed_value("account:0") == 80


def test_temporary_partition_of_a_backup_does_not_block_the_run():
    deployment = make_deployment()
    deployment.apply_faults(
        FaultSchedule().partition(10.0, ["a3"], ["a1", "a2", "d1", "c1"]).heal(800.0))
    issued = deployment.run_request(BANK.debit(0, 10), horizon=2_000_000.0)
    assert issued.delivered
    assert deployment.db_servers["d1"].committed_value("account:0") == 90
    assert deployment.check_spec().ok


def test_partition_isolating_the_primary_triggers_failover():
    deployment = make_deployment()
    # a1 is cut off from everyone (including the client) right after it claims
    # the result; because it cannot reach a register quorum it cannot decide,
    # and the others -- who suspect nothing -- only take over once the client
    # rebroadcasts.  The partition never heals: a1 is effectively dead.
    timing = ProtocolTiming(client_backoff=300.0)
    deployment = make_deployment(protocol_timing=timing)
    deployment.apply_faults(FaultSchedule().partition(30.0, ["a1"]))
    deployment.apply_faults(FaultSchedule().crash(500.0, "a1"))
    issued = deployment.run_request(BANK.debit(0, 10), horizon=2_000_000.0)
    assert issued.delivered
    assert deployment.db_servers["d1"].committed_value("account:0") == 90
    report = deployment.check_spec(check_termination=False)
    assert report.ok, report.summary()


def test_lossy_network_without_reliable_channels_still_safe():
    # Without the reliable-channel layer the client's periodic rebroadcast and
    # the application server's retransmission loops provide the retries.
    timing = ProtocolTiming(client_backoff=500.0, client_rebroadcast=500.0,
                            decide_retry=100.0, prepare_retry=100.0, execute_retry=100.0)
    deployment = make_deployment(loss_probability=0.03, seed=21, protocol_timing=timing)
    issued = deployment.run_request(BANK.debit(0, 10), horizon=3_000_000.0)
    assert issued.delivered
    assert deployment.db_servers["d1"].committed_value("account:0") == 90
    report = deployment.check_spec(check_termination=False)
    assert report.ok, report.summary()


def test_sequential_requests_across_repeated_database_crashes():
    deployment = make_deployment(num_db_servers=2, seed=5)
    schedule = FaultSchedule()
    for start in (100.0, 900.0, 1_700.0):
        schedule.crash_for(start, "d1", downtime=200.0)
    deployment.apply_faults(schedule)
    issued = [deployment.issue(BANK.debit(0, 10)) for _ in range(3)]
    deployment.sim.run_until(lambda: all(r.delivered for r in issued), until=5_000_000.0)
    assert all(r.delivered for r in issued)
    for db in deployment.db_servers.values():
        assert db.committed_value("account:0") == 70
    assert deployment.check_spec().ok
