"""Tests for the figure/table reproduction harnesses and ablations.

These tests assert the *shape* claims of the paper hold in the reproduction:
ordering of protocol latencies, the 16 %/23 % neighbourhood of the overheads,
the structure of the communication diagrams, the behaviour of the four
Figure 1 executions, and the qualitative trends of the ablations.
"""

import pytest

from repro.experiments import calibration, fault_sweep, figure1, figure7, figure8
from repro.experiments.ablations import asynchrony_sweep, log_cost_sweep, scaling_sweep


# ------------------------------------------------------------------ calibration


def test_paper_figure8_numbers_are_internally_consistent():
    for protocol, row in calibration.PAPER_FIGURE8.items():
        components = sum(value for key, value in row.items() if key != "total")
        assert components == pytest.approx(row["total"], abs=0.3), protocol


def test_calibrated_database_timing_reproduces_baseline_components():
    timing = calibration.paper_database_timing()
    assert timing.commit_total == pytest.approx(18.6)
    assert timing.prepare_total == pytest.approx(19.0)
    assert timing.sql == pytest.approx(187.0)


# --------------------------------------------------------------------- figure 8


@pytest.fixture(scope="module")
def figure8_report():
    return figure8.run(requests_per_protocol=3)


def test_figure8_totals_close_to_paper(figure8_report):
    for protocol in ("baseline", "AR", "2PC"):
        measured = figure8_report.table.column(protocol).total
        paper = calibration.PAPER_FIGURE8[protocol]["total"]
        assert measured == pytest.approx(paper, rel=0.05), protocol


def test_figure8_cost_of_reliability_ordering_and_magnitude(figure8_report):
    overheads = figure8_report.overheads()
    assert overheads["baseline"] == 0.0
    assert 0.0 < overheads["AR"] < overheads["2PC"]
    assert overheads["AR"] == pytest.approx(0.16, abs=0.06)
    assert overheads["2PC"] == pytest.approx(0.23, abs=0.06)
    assert figure8_report.shape_holds()


def test_figure8_component_shape(figure8_report):
    baseline = figure8_report.table.column("baseline")
    ar = figure8_report.table.column("AR")
    twopc = figure8_report.table.column("2PC")
    # The baseline has no prepare phase and no logging; AR replaces the 2PC
    # forced logs by cheaper replicated register writes.
    assert baseline.component("prepare") == 0.0
    assert baseline.component("log-start") == 0.0
    assert ar.component("prepare") > 0 and twopc.component("prepare") > 0
    assert 0 < ar.component("log-start") < twopc.component("log-start")
    assert 0 < ar.component("log-outcome") < twopc.component("log-outcome")
    assert ar.component("SQL") == twopc.component("SQL") == baseline.component("SQL")


def test_figure8_report_rendering(figure8_report):
    table = figure8_report.to_table()
    assert "cost of rel." in table
    comparison = figure8_report.compare_with_paper()
    assert "baseline" in comparison and "2PC" in comparison


# --------------------------------------------------------------------- figure 7


@pytest.fixture(scope="module")
def figure7_report():
    return figure7.run()


def test_figure7_structure_matches_paper(figure7_report):
    assert figure7_report.expected_structure_holds()


def test_figure7_message_counts(figure7_report):
    counts = figure7_report.message_counts()
    # The baseline exchanges the fewest protocol messages; every reliable
    # protocol adds the voting round; primary-backup adds the replication
    # round-trips on top.
    assert counts["baseline"] < counts["2PC"] <= counts["AR"] <= counts["PB"]


def test_figure7_latency_ordering(figure7_report):
    latencies = figure7_report.latencies
    assert latencies["baseline"] < latencies["AR"] < latencies["2PC"]


def test_figure7_rendering(figure7_report):
    assert "baseline" in figure7_report.to_table()
    diagrams = figure7_report.sequence_diagrams()
    assert "Request" in diagrams and "Result" in diagrams


# --------------------------------------------------------------------- figure 1


@pytest.fixture(scope="module")
def figure1_report():
    return figure1.run()


def test_figure1_all_scenarios_safe_and_delivered(figure1_report):
    assert figure1_report.all_spec_ok()
    for name in "abcd":
        assert figure1_report.scenario(name).delivered, name


def test_figure1_scenario_a_failure_free_commit(figure1_report):
    scenario = figure1_report.scenario("a")
    assert scenario.attempts == 1
    assert scenario.aborted_results == []
    assert scenario.answered_by == {"a1"}
    assert scenario.committed_balance == 100_000 - 10


def test_figure1_scenario_b_failure_free_abort_then_retry(figure1_report):
    scenario = figure1_report.scenario("b")
    assert scenario.aborted_results, "the first intermediate result must abort"
    assert scenario.attempts >= 2
    assert scenario.committed_balance == 100_000 - 10  # exactly-once despite the abort


def test_figure1_scenario_c_failover_with_commit(figure1_report):
    scenario = figure1_report.scenario("c")
    assert scenario.attempts == 1          # the crashed primary's result is committed
    assert scenario.aborted_results == []
    assert scenario.answered_by - {"a1"}, "a backup must answer the client"
    assert scenario.committed_balance == 100_000 - 10


def test_figure1_scenario_d_failover_with_abort(figure1_report):
    scenario = figure1_report.scenario("d")
    assert scenario.aborted_results, "the orphaned result must be aborted by a cleaner"
    assert scenario.answered_by - {"a1"}
    assert scenario.committed_balance == 100_000 - 10  # the retry commits exactly once


# -------------------------------------------------------------------- ablations


def test_asynchrony_sweep_shows_primary_backup_to_active_spectrum():
    points = {point.label: point for point in asynchrony_sweep()}
    quiet = points["patient client, reliable FD"]
    noisy = points["impatient client, false suspicion"]
    assert quiet.distinct_claimers == 1
    assert quiet.aborted_results == 0
    # Unreliable suspicions / impatience cause extra work (aborted intermediate
    # results and/or several servers claiming results) but never unsafety.
    assert noisy.aborted_results + noisy.distinct_claimers > quiet.aborted_results + 1
    assert all(point.spec_ok for point in points.values())
    assert all(point.delivered for point in points.values())


def test_log_cost_sweep_shows_crossover():
    points = log_cost_sweep(latencies=[0.0, 12.5], requests=1)
    cheap_log, paper_log = points
    # With free forced logs 2PC beats AR (fewer messages); at the paper's
    # 12.5 ms the two forced writes make 2PC slower -- the crossover the
    # paper's Appendix 3 argues about.
    assert not cheap_log.ar_wins
    assert paper_log.ar_wins


def test_scaling_sweep_latency_flat_but_messages_grow():
    points = scaling_sweep(degrees=[1, 3, 5], requests=1)
    latencies = [point.mean_latency for point in points]
    messages = [point.total_messages for point in points]
    assert all(point.delivered for point in points)
    # Latency is governed by the majority round trip, not the group size.
    assert max(latencies) - min(latencies) < 10.0
    # Traffic grows with the replication degree.
    assert messages == sorted(messages) and messages[0] < messages[-1]


def test_fault_sweep_all_safe():
    result = fault_sweep.run(num_runs=6, seed=1)
    assert result.runs == 6
    assert result.all_safe, result.violations
    assert result.delivery_rate == 1.0
    assert "6 runs" in result.summary()


def test_figure8_percentile_summary(figure8_report):
    summary = figure8_report.percentile_summary()
    for protocol in ("baseline", "AR", "2PC"):
        assert set(summary[protocol]) == {"p50", "p95", "p99"}
        assert summary[protocol]["p50"] <= summary[protocol]["p99"]


def test_figure8_parallel_workers_match_serial(figure8_report):
    parallel = figure8.run(requests_per_protocol=3, workers=3)
    assert parallel.to_table() == figure8_report.to_table()


def test_fault_sweep_parallel_workers_match_serial():
    serial = fault_sweep.run(num_runs=4, seed=2, workers=1)
    parallel = fault_sweep.run(num_runs=4, seed=2, workers=4)
    assert serial == parallel
