"""Tests that the specification checker actually detects violations.

The integration tests establish that real runs satisfy the spec; these tests
feed synthetic traces to the checker to make sure each property check can
fail when it should (a checker that always passes is worthless).
"""

from repro.core.spec import SpecificationChecker
from repro.core.types import ABORT, COMMIT
from repro.sim.tracing import TraceRecorder


def make_checker(trace, dbs=("d1", "d2"), clients=("c1",)):
    return SpecificationChecker(trace, list(dbs), list(clients))


def base_commit_trace(dbs=("d1", "d2")):
    """A well-formed trace: one request, computed, voted yes, committed, delivered."""
    trace = TraceRecorder()
    trace.record("client_issue", "c1", request_id="req-1", operation="pay")
    trace.record("as_compute", "a1", client="c1", j=1, request_id="req-1", result="{}")
    for db in dbs:
        trace.record("db_vote", db, j=("c1", 1), vote="yes")
    for db in dbs:
        trace.record("db_decide", db, j=("c1", 1), outcome=COMMIT, requested=COMMIT)
    trace.record("client_deliver", "c1", j=1, request_id="req-1",
                 result_request_id="req-1", computed_by="a1", value="{}")
    return trace


def test_well_formed_trace_passes_all_properties():
    report = make_checker(base_commit_trace()).check()
    assert report.ok
    assert set(report.checked_properties) == {"T.1", "T.2", "A.1", "A.2", "A.3",
                                              "V.1", "V.2", "S.1"}


def test_t1_detects_undelivered_request():
    trace = TraceRecorder()
    trace.record("client_issue", "c1", request_id="req-1", operation="pay")
    report = make_checker(trace).check()
    assert report.violated("T.1")


def test_t1_excuses_crashed_client():
    trace = TraceRecorder()
    trace.record("client_issue", "c1", request_id="req-1", operation="pay")
    trace.record("crash", "c1")
    report = make_checker(trace).check()
    assert not report.violated("T.1")


def test_t1_does_not_excuse_recovered_client():
    trace = TraceRecorder()
    trace.record("client_issue", "c1", request_id="req-1", operation="pay")
    trace.record("crash", "c1")
    trace.record("recover", "c1")
    report = make_checker(trace).check()
    assert report.violated("T.1")


def test_t2_detects_vote_without_decision():
    trace = base_commit_trace()
    trace.record("db_vote", "d1", j=("c1", 2), vote="yes")
    report = make_checker(trace).check()
    assert report.violated("T.2")


def test_a1_detects_delivery_without_commit_at_every_database():
    trace = TraceRecorder()
    trace.record("client_issue", "c1", request_id="req-1", operation="pay")
    trace.record("as_compute", "a1", client="c1", j=1, request_id="req-1", result="{}")
    trace.record("db_vote", "d1", j=("c1", 1), vote="yes")
    trace.record("db_decide", "d1", j=("c1", 1), outcome=COMMIT)
    # d2 never commits, yet the client delivers.
    trace.record("client_deliver", "c1", j=1, request_id="req-1",
                 result_request_id="req-1", computed_by="a1", value="{}")
    report = make_checker(trace).check(check_termination=False)
    assert report.violated("A.1")


def test_a2_detects_two_committed_results_for_one_request():
    trace = base_commit_trace(dbs=("d1",))
    trace.record("as_compute", "a2", client="c1", j=2, request_id="req-1", result="{}")
    trace.record("db_vote", "d1", j=("c1", 2), vote="yes")
    trace.record("db_decide", "d1", j=("c1", 2), outcome=COMMIT)
    report = make_checker(trace, dbs=("d1",)).check(check_termination=False)
    assert report.violated("A.2")


def test_a2_allows_one_commit_per_distinct_request():
    trace = base_commit_trace(dbs=("d1",))
    trace.record("client_issue", "c1", request_id="req-2", operation="pay")
    trace.record("as_compute", "a1", client="c1", j=2, request_id="req-2", result="{}")
    trace.record("db_vote", "d1", j=("c1", 2), vote="yes")
    trace.record("db_decide", "d1", j=("c1", 2), outcome=COMMIT)
    trace.record("client_deliver", "c1", j=2, request_id="req-2",
                 result_request_id="req-2", computed_by="a1", value="{}")
    report = make_checker(trace, dbs=("d1",)).check()
    assert not report.violated("A.2")


def test_a3_detects_conflicting_final_outcomes():
    trace = TraceRecorder()
    trace.record("as_compute", "a1", client="c1", j=1, request_id="req-1", result="{}")
    trace.record("db_vote", "d1", j=("c1", 1), vote="yes")
    trace.record("db_vote", "d2", j=("c1", 1), vote="yes")
    trace.record("db_decide", "d1", j=("c1", 1), outcome=COMMIT)
    trace.record("db_decide", "d2", j=("c1", 1), outcome=ABORT)
    report = make_checker(trace).check(check_termination=False)
    assert report.violated("A.3")


def test_v1_detects_invented_result():
    trace = TraceRecorder()
    trace.record("client_issue", "c1", request_id="req-1", operation="pay")
    trace.record("client_deliver", "c1", j=1, request_id="req-1",
                 result_request_id="req-unknown", computed_by="a1", value="{}")
    report = make_checker(trace).check(check_termination=False)
    assert report.violated("V.1")


def test_v1_detects_result_for_never_issued_request():
    trace = TraceRecorder()
    trace.record("as_compute", "a1", client="c1", j=1, request_id="req-9", result="{}")
    trace.record("client_deliver", "c1", j=1, request_id="req-9",
                 result_request_id="req-9", computed_by="a1", value="{}")
    report = make_checker(trace).check(check_termination=False)
    assert report.violated("V.1")


def test_v2_detects_commit_without_unanimous_yes_votes():
    trace = TraceRecorder()
    trace.record("as_compute", "a1", client="c1", j=1, request_id="req-1", result="{}")
    trace.record("db_vote", "d1", j=("c1", 1), vote="yes")
    # d2 never voted yes but d1 commits.
    trace.record("db_decide", "d1", j=("c1", 1), outcome=COMMIT)
    report = make_checker(trace).check(check_termination=False)
    assert report.violated("V.2")


def test_report_summary_mentions_violations():
    trace = TraceRecorder()
    trace.record("client_issue", "c1", request_id="req-1", operation="pay")
    report = make_checker(trace).check()
    assert not report.ok
    assert "T.1" in report.summary()
    good = make_checker(base_commit_trace()).check()
    assert "all properties hold" in good.summary()


# -------------------------------------------------- S.1 epoch confinement


def epoch_stamped_trace(participants, universe=("d1", "d2")):
    """A committed run whose computation is epoch-stamped (online resharding)."""
    trace = TraceRecorder()
    trace.record("reshard", "reshard-coord", stage="init", epoch=0,
                 shards=list(universe))
    trace.record("client_issue", "c1", request_id="req-1", operation="pay")
    trace.record("as_compute", "a1", client="c1", j=1, request_id="req-1",
                 result="{}", epoch=0, participants=list(participants))
    for db in participants:
        trace.record("db_vote", db, j=("c1", 1), vote="yes")
    for db in participants:
        trace.record("db_decide", db, j=("c1", 1), outcome=COMMIT, requested=COMMIT)
    trace.record("client_deliver", "c1", j=1, request_id="req-1",
                 result_request_id="req-1", computed_by="a1", value="{}")
    return trace


def test_s1_epoch_stamped_computation_inside_universe_passes():
    report = make_checker(epoch_stamped_trace(("d1", "d2"))).check()
    assert report.ok


def test_s1_detects_participant_outside_its_epochs_universe():
    # d2 is a legal participant of the deployment, but epoch 0's universe
    # is only (d1,): the computation routed against a shard its epoch does
    # not know.
    trace = epoch_stamped_trace(("d1", "d2"), universe=("d1",))
    report = make_checker(trace).check(check_termination=False)
    assert report.violated("S.1")
    assert any("epoch 0" in str(v) for v in report.violations)


def test_s1_epoch_universe_updates_at_commit():
    # After a reshard commits epoch 1 with a grown universe, computations
    # stamped with epoch 1 may route against the new shards -- and ones
    # stamped with epoch 0 still may not.
    trace = epoch_stamped_trace(("d1",), universe=("d1",))
    trace.record("reshard", "reshard-coord", stage="begin", epoch=1)
    trace.record("reshard", "reshard-coord", stage="commit", epoch=1,
                 shards=["d1", "d2"])
    trace.record("client_issue", "c1", request_id="req-2", operation="pay")
    trace.record("as_compute", "a1", client="c1", j=2, request_id="req-2",
                 result="{}", epoch=1, participants=["d2"])
    trace.record("db_vote", "d2", j=("c1", 2), vote="yes")
    trace.record("db_decide", "d2", j=("c1", 2), outcome=COMMIT, requested=COMMIT)
    trace.record("client_deliver", "c1", j=2, request_id="req-2",
                 result_request_id="req-2", computed_by="a1", value="{}")
    report = make_checker(trace).check()
    assert report.ok
    stale = epoch_stamped_trace(("d1",), universe=("d1",))
    stale.record("reshard", "reshard-coord", stage="commit", epoch=1,
                 shards=["d1", "d2"])
    stale.record("as_compute", "a1", client="c1", j=2, request_id="req-2",
                 result="{}", epoch=0, participants=["d2"])
    report = make_checker(stale).check(check_termination=False)
    assert report.violated("S.1")
