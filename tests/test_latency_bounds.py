"""Unit tests for latency lower bounds and the conservative lookahead.

``LatencyModel.min_latency`` promises a hard per-link floor on ``sample``;
``min_cross_latency`` turns those floors into the lookahead window of a
sharded run (the smallest bound over all directed cross-shard links).  The
parallel kernel's determinism rests on these contracts, so they get direct
tests here in addition to the end-to-end trace-equivalence suite.
"""

import random

import pytest

from repro.net.latency import (
    ExponentialLatency,
    FixedLatency,
    PerLinkLatency,
    UniformLatency,
    min_cross_latency,
    three_tier_latency,
)


def test_fixed_latency_min_is_value():
    assert FixedLatency(2.5).min_latency("a", "b") == 2.5


def test_uniform_latency_min_is_low_bound():
    assert UniformLatency(1.0, 3.0).min_latency("a", "b") == 1.0


def test_exponential_latency_min_is_base():
    assert ExponentialLatency(base=0.75, tail_mean=4.0).min_latency("a", "b") == 0.75


def test_per_link_latency_min_resolves_overrides():
    model = PerLinkLatency(FixedLatency(1.0))
    model.set_link("c1", "a1", UniformLatency(7.0, 9.0))
    assert model.min_latency("c1", "a1") == 7.0
    assert model.min_latency("a1", "c1") == 1.0  # falls back to the default


@pytest.mark.parametrize("model", [
    FixedLatency(1.75),
    UniformLatency(0.5, 2.0),
    ExponentialLatency(base=0.25, tail_mean=1.0),
])
def test_min_latency_is_a_hard_floor_on_samples(model):
    rng = random.Random(42)
    floor = model.min_latency("x", "y")
    for _ in range(2000):
        assert model.sample(rng, "x", "y") >= floor


def test_min_cross_latency_ignores_intra_shard_links():
    model = PerLinkLatency(FixedLatency(5.0))
    # A fast link *inside* shard 0 must not shrink the lookahead.
    model.set_link("a1", "a2", FixedLatency(0.001))
    model.set_link("a2", "a1", FixedLatency(0.001))
    assert min_cross_latency(model, [["a1", "a2"], ["d1"]]) == 5.0


def test_min_cross_latency_takes_smallest_directed_cross_link():
    model = PerLinkLatency(FixedLatency(5.0))
    model.set_link("d1", "a1", FixedLatency(1.25))  # one direction only
    assert min_cross_latency(model, [["a1"], ["d1"]]) == 1.25


def test_min_cross_latency_rejects_zero_bound_cross_link():
    model = PerLinkLatency(FixedLatency(5.0))
    model.set_link("a1", "d1", FixedLatency(0.0))
    with pytest.raises(ValueError, match="a1.*d1.*min_latency > 0"):
        min_cross_latency(model, [["a1"], ["d1"]])


def test_min_cross_latency_empty_or_single_shard_is_unbounded():
    model = FixedLatency(1.0)
    assert min_cross_latency(model, []) == float("inf")
    assert min_cross_latency(model, [["a1", "d1"]]) == float("inf")


def test_three_tier_lookahead_is_cheapest_tier_crossing():
    model = three_tier_latency(
        ["c1"], ["a1", "a2"], ["d1", "d2"],
        client_app_latency=7.5, app_app_latency=1.75, app_db_latency=0.5)
    # Clients vs servers: client<->db links have no override, so the
    # app-to-app default is the floor even though no protocol uses them.
    shards = [["c1"], ["a1", "a2", "d1", "d2"]]
    assert min_cross_latency(model, shards) == 1.75
    # Split the server tiers too and the app<->db floor takes over.
    shards = [["c1"], ["a1", "a2"], ["d1", "d2"]]
    assert min_cross_latency(model, shards) == 0.5
