"""Multi-client deployments: concurrent traffic from every client.

The paper presents a single client for simplicity; the protocols scope result
identifiers by client name exactly so that several clients can share a
deployment.  These tests drive requests from ``c2``/``c3`` concurrently
through all four protocol schemes and check that the specification stays
clean and the per-client statistics add up.
"""

import pytest

from repro import api
from repro.workload.generator import ClosedLoop, OpenLoop

ALL_PROTOCOLS = api.registered_protocols()


def _scenario(protocol: str, clients: int = 3) -> api.Scenario:
    return api.Scenario(protocol=protocol, num_clients=clients,
                        workload="bank", timing="paper")


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_closed_loop_drives_every_client_concurrently(protocol):
    scenario = _scenario(protocol)
    result = api.run_scenario(scenario, requests=2)
    assert result.requested == 6
    assert result.delivered == 6
    assert result.spec.ok, result.spec.summary()
    assert set(result.statistics.by_client) == {"c1", "c2", "c3"}
    for name, leaf in result.statistics.by_client.items():
        assert leaf.count == 2, name
        assert leaf.undelivered == 0, name
        assert all(latency > 0 for latency in leaf.latencies), name
    assert result.statistics.count == sum(
        leaf.count for leaf in result.statistics.by_client.values())
    assert result.throughput > 0


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_requests_issued_from_c2_and_c3_explicitly(protocol):
    system = api.build(_scenario(protocol))
    first = system.issue(system.standard_request(), "c2")
    second = system.issue(system.standard_request(), "c3")
    system.sim.run_until(lambda: first.delivered and second.delivered,
                         until=60_000.0)
    assert first.delivered and second.delivered
    assert system.check_spec().ok


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_multi_client_money_is_conserved(protocol):
    """Concurrent debits from three clients commit exactly once each."""
    scenario = _scenario(protocol)
    system = api.build(scenario)
    stats = ClosedLoop().run(system, 2)
    assert stats.count == 6
    workload = system.workload.instance
    committed = {key: system.deployment.db_servers["d1"].committed_value(key)
                 for key in workload.initial_data()}
    # Every standard request debits account 0 by 10.
    assert committed["account:0"] == 100_000 - 6 * 10
    assert system.check_spec().ok


def test_closed_loop_can_drive_a_subset_of_clients():
    system = api.build(_scenario("etx", clients=3))
    stats = ClosedLoop(clients=["c2", "c3"]).run(system, 1)
    assert set(stats.by_client) == {"c2", "c3"}
    assert stats.count == 2
    assert system.check_spec().ok


def test_open_loop_round_robins_arrivals_over_clients():
    system = api.build(_scenario("etx", clients=2))
    stats = OpenLoop(rate=20.0, arrival="uniform").run(system, 2)
    assert stats.count == 4
    assert stats.by_client["c1"].count == 2
    assert stats.by_client["c2"].count == 2
    assert system.check_spec().ok


def test_open_loop_response_time_includes_queueing():
    """Arrivals faster than the service rate must queue: the open-loop
    response time grows with the queue while closed-loop latency would not."""
    system = api.build(_scenario("etx", clients=1))
    stats = OpenLoop(rate=50.0, arrival="uniform").run(system, 4)
    assert stats.count == 4
    ordered = sorted(stats.latencies)
    assert ordered[-1] > ordered[0] + 100.0  # later arrivals waited in line
    assert system.check_spec().ok


def test_duplicate_retries_are_replayed_not_reexecuted():
    """Under heavy queueing a client's back-off expires and it re-broadcasts;
    the serial coordinators must replay the decision, not re-run the
    transaction (2PC used to crash the database's prepare here)."""
    scenario = api.Scenario(protocol="2pc", num_clients=8,
                            workload="bank", timing="paper")
    result = api.run_scenario(scenario, requests=1)
    assert result.delivered == 8
    assert result.spec.ok, result.spec.summary()


def test_load_generators_terminate_when_a_client_is_down():
    """Offered load to a crashed client is lost, not waited for: the run
    must terminate promptly with the loss reported as undelivered."""
    system = api.build(_scenario("etx", clients=2))
    system.deployment.clients["c2"].crash()
    open_stats = OpenLoop(rate=20.0, arrival="uniform").run(system, 2)
    assert open_stats.count == 2                      # c1's two requests
    assert open_stats.undelivered == 2                # c2's lost arrivals
    system = api.build(_scenario("etx", clients=2))
    system.deployment.clients["c2"].crash()
    closed_stats = ClosedLoop().run(system, 2)
    assert closed_stats.count == 2
    assert closed_stats.undelivered == 2


def test_open_loop_breakdown_uses_service_latency_not_sojourn():
    """Client-side queueing is load, not protocol cost: the latency
    breakdown of a saturating open loop must not absorb the queueing delay
    into the 'other' component."""
    scenario = _scenario("etx", clients=1).with_(rate=50.0, arrival="uniform")
    result = api.run_scenario(scenario, requests=4)
    stats = result.statistics
    assert stats.mean_latency > stats.mean_service_latency + 50.0  # queueing
    assert result.breakdown.total == pytest.approx(stats.mean_service_latency)
