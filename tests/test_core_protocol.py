"""End-to-end integration tests of the e-Transaction protocol.

Each test builds a full three-tier deployment, drives one or more requests
through it under a specific failure scenario, and checks both the concrete
outcome (delivered results, database contents) and the executable
specification (T.1, T.2, A.1-A.3, V.1, V.2) over the recorded trace.
"""

import pytest

from repro.core import COMMIT, DeploymentConfig, EtxDeployment, Request
from repro.core.deployment import REGISTER_LOCAL
from repro.failure.injection import FaultSchedule


def bank_logic(request):
    def logic(view):
        balance = view.read("balance", 0)
        amount = request.params.get("amount", 0)
        view.write("balance", balance - amount)
        return {"new_balance": balance - amount}

    return logic


def make_deployment(**overrides):
    defaults = dict(num_app_servers=3, num_db_servers=1, detection_delay=10.0,
                    business_logic=bank_logic, initial_data={"balance": 100})
    defaults.update(overrides)
    return EtxDeployment(DeploymentConfig(**defaults))


# --------------------------------------------------------------- failure-free


def test_failure_free_commit():
    deployment = make_deployment()
    issued = deployment.run_request(Request("pay", {"amount": 30}))
    assert issued.delivered
    assert issued.attempts == 1
    assert issued.result.value == {"new_balance": 70}
    assert deployment.db_servers["d1"].committed_value("balance") == 70
    report = deployment.check_spec()
    assert report.ok, report.summary()


def test_failure_free_latency_close_to_paper_ar_column():
    deployment = make_deployment()
    issued = deployment.run_request(Request("pay", {"amount": 1}))
    # Paper Figure 8: AR total = 252.3 ms.  The simulator reproduces the shape
    # (+/- a few ms of communication-step differences).
    assert issued.latency == pytest.approx(252.3, rel=0.05)


def test_multiple_sequential_requests_all_commit_exactly_once():
    deployment = make_deployment()
    amounts = [10, 20, 5, 15]
    issued = [deployment.issue(Request("pay", {"amount": a})) for a in amounts]
    deployment.sim.run_until(lambda: all(i.delivered for i in issued), until=1_000_000.0)
    assert all(i.delivered for i in issued)
    assert deployment.db_servers["d1"].committed_value("balance") == 100 - sum(amounts)
    assert deployment.check_spec().ok


def test_two_database_servers_both_commit():
    deployment = make_deployment(num_db_servers=2)
    issued = deployment.run_request(Request("pay", {"amount": 25}))
    assert issued.delivered
    for name in ("d1", "d2"):
        assert deployment.db_servers[name].committed_value("balance") == 75
    report = deployment.check_spec()
    assert report.ok, report.summary()


def test_local_register_mode_equivalent_behaviour():
    deployment = make_deployment(register_mode=REGISTER_LOCAL)
    issued = deployment.run_request(Request("pay", {"amount": 40}))
    assert issued.delivered
    assert deployment.db_servers["d1"].committed_value("balance") == 60
    assert deployment.check_spec().ok


def test_multiple_clients_interleave_without_violations():
    deployment = make_deployment(num_clients=2, num_db_servers=2)
    issued = []
    for i in range(4):
        client = "c1" if i % 2 == 0 else "c2"
        issued.append(deployment.issue(Request("pay", {"amount": 5}), client=client))
    deployment.sim.run_until(lambda: all(r.delivered for r in issued), until=1_000_000.0)
    assert all(r.delivered for r in issued)
    assert deployment.db_servers["d1"].committed_value("balance") == 80
    assert deployment.check_spec().ok


# -------------------------------------------------------------------- failover


def test_failover_with_abort_primary_crashes_before_decision():
    deployment = make_deployment()
    deployment.apply_faults(FaultSchedule().crash(50.0, "a1"))
    issued = deployment.run_request(Request("pay", {"amount": 30}))
    assert issued.delivered
    assert issued.attempts >= 2            # at least one aborted intermediate result
    assert issued.aborted_results          # the first result was aborted by a cleaner
    assert deployment.db_servers["d1"].committed_value("balance") == 70
    # Exactly one committed result: the debit happened exactly once.
    commits = deployment.trace.select("db_decide", "d1", outcome=COMMIT)
    assert len(commits) == 1
    report = deployment.check_spec()
    assert report.ok, report.summary()


def test_failover_with_commit_primary_crashes_after_decision_write():
    deployment = make_deployment()
    # The decision write lands around t=243 ms in the failure-free schedule;
    # crash just after it so a backup finishes the commit and answers the client.
    deployment.apply_faults(FaultSchedule().crash(244.0, "a1"))
    issued = deployment.run_request(Request("pay", {"amount": 30}))
    assert issued.delivered
    assert issued.result.value == {"new_balance": 70}
    assert deployment.db_servers["d1"].committed_value("balance") == 70
    # The client got the committed result even though the primary crashed:
    # the result it delivers was computed by the (now dead) primary.
    assert issued.result.computed_by == "a1"
    deliver = deployment.trace.first("client_deliver", "c1")
    result_senders = {e.process for e in deployment.trace.select("as_result_sent")
                      if e.get("outcome") == COMMIT}
    assert result_senders - {"a1"}, "a backup must have terminated the result"
    report = deployment.check_spec()
    assert report.ok, report.summary()


def test_crash_of_one_backup_does_not_disturb_the_run():
    deployment = make_deployment()
    deployment.apply_faults(FaultSchedule().crash(10.0, "a3"))
    issued = deployment.run_request(Request("pay", {"amount": 10}))
    assert issued.delivered
    assert issued.attempts == 1
    assert deployment.check_spec().ok


def test_false_suspicion_of_live_primary_is_harmless():
    deployment = make_deployment(num_db_servers=2, seed=7)
    deployment.apply_faults(
        FaultSchedule().false_suspicion(20.0, "a2", "a1", duration=150.0))
    issued = deployment.run_request(Request("pay", {"amount": 30}))
    assert issued.delivered
    # Whatever the race outcome (commit by the primary or abort by the cleaner
    # followed by a retry), the databases stay consistent and the debit is
    # applied exactly once.
    assert deployment.db_servers["d1"].committed_value("balance") == 70
    assert deployment.db_servers["d2"].committed_value("balance") == 70
    report = deployment.check_spec()
    assert report.ok, report.summary()


def test_database_crash_and_recovery_mid_request():
    deployment = make_deployment(num_db_servers=2, seed=3)
    deployment.apply_faults(FaultSchedule().crash_for(100.0, "d1", downtime=300.0))
    issued = deployment.run_request(Request("pay", {"amount": 30}))
    assert issued.delivered
    for name in ("d1", "d2"):
        assert deployment.db_servers[name].committed_value("balance") == 70
    assert deployment.check_spec().ok


def test_database_crash_after_vote_recovers_in_doubt_and_commits():
    deployment = make_deployment(seed=5)
    # The yes vote lands around t=216 ms; crash the database right after it and
    # recover it later: terminate() keeps re-sending the decision (T.2).
    deployment.apply_faults(FaultSchedule().crash_for(218.0, "d1", downtime=400.0))
    issued = deployment.run_request(Request("pay", {"amount": 30}))
    assert issued.delivered
    assert deployment.db_servers["d1"].committed_value("balance") == 70
    assert deployment.db_servers["d1"].in_doubt() == []
    report = deployment.check_spec()
    assert report.ok, report.summary()


def test_client_crash_gives_at_most_once_and_releases_databases():
    deployment = make_deployment()
    issued = deployment.issue(Request("pay", {"amount": 30}))
    deployment.sim.schedule(50.0, deployment.client.crash)
    deployment.run(until=50_000.0)
    assert not issued.delivered
    # T.2 still holds: no database is left blocked with locks held.
    assert deployment.db_servers["d1"].in_doubt() == []
    assert deployment.db_servers["d1"].store.locks.locked_keys() == set()
    # At-most-once: the balance is either untouched or debited exactly once.
    assert deployment.db_servers["d1"].committed_value("balance") in (70, 100)
    report = deployment.check_spec(check_termination=False)
    assert report.ok, report.summary()


def test_crash_of_minority_of_app_servers_after_claim_still_terminates():
    deployment = make_deployment(num_app_servers=5, seed=11)
    deployment.apply_faults(FaultSchedule().crash(30.0, "a1").crash(35.0, "a2"))
    issued = deployment.run_request(Request("pay", {"amount": 10}))
    assert issued.delivered
    assert deployment.db_servers["d1"].committed_value("balance") == 90
    assert deployment.check_spec().ok


def test_message_loss_with_reliable_channels_still_commits():
    deployment = make_deployment(loss_probability=0.05, use_reliable_channels=True, seed=13)
    issued = deployment.run_request(Request("pay", {"amount": 10}), horizon=2_000_000.0)
    assert issued.delivered
    assert deployment.db_servers["d1"].committed_value("balance") == 90
    assert deployment.check_spec().ok


# ------------------------------------------------------------------ validation


def test_config_validation():
    with pytest.raises(ValueError):
        DeploymentConfig(num_app_servers=0)
    with pytest.raises(ValueError):
        DeploymentConfig(register_mode="shared-memory")


def test_deployment_overrides_derive_a_replaced_config():
    base = DeploymentConfig(seed=3)
    deployment = EtxDeployment(base, num_db_servers=2)
    assert deployment.config.num_db_servers == 2
    assert deployment.config.seed == 3       # untouched fields carry over
    assert base.num_db_servers == 1          # the original config is unchanged
    assert len(deployment.db_servers) == 2


def test_deployment_exposes_trace_and_names():
    deployment = make_deployment()
    config = deployment.config
    assert config.client_names == ["c1"]
    assert config.app_server_names == ["a1", "a2", "a3"]
    assert config.db_server_names == ["d1"]
    assert deployment.default_primary.name == "a1"
    assert deployment.trace is deployment.sim.trace
