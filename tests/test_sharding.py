"""Partitioned data tier: placement, participant routing, DSN grammar.

Covers the sharding layer end to end: the key-placement map, the shard DSN
parameters (``placement``, ``xshard``) and their round-trip, participant-set
routing through all four protocol stacks, shard-keyed initial data, storage
ownership assertions, per-shard statistics, the S.1 confinement property and
the serial-vs-parallel sweep determinism contract.
"""

import pytest

from repro import api
from repro.core.sharding import (
    PLACEMENT_HASH,
    PLACEMENT_MOD,
    PLACEMENT_REPLICATE,
    Sharding,
    shard_key,
)
from repro.storage.kvstore import ShardOwnershipError, TransactionalKVStore
from repro.workload.bank import BankWorkload
from repro.workload.travel import TravelWorkload


# ---------------------------------------------------------------- placement


def test_hash_tags_select_the_routed_substring():
    assert shard_key("account:{7}") == "7"
    assert shard_key("flight:{PAR}:seats") == "PAR"
    assert shard_key("plain-key") == "plain-key"


def test_replicate_placement_owns_everything_everywhere():
    sharding = Sharding(("d1", "d2"), PLACEMENT_REPLICATE)
    assert not sharding.partitioned
    assert sharding.owner("account:{1}") is None
    assert sharding.owns("d1", "x") and sharding.owns("d2", "x")
    assert sharding.participants(["a", "b"]) == ()
    assert sharding.shard_data("d2", {"a": 1}) == {"a": 1}
    assert sharding.owner_predicate("d1") is None


def test_hash_placement_is_deterministic_and_total():
    sharding = Sharding(("d1", "d2", "d3"), PLACEMENT_HASH)
    owners = {sharding.owner(f"account:{{{i}}}") for i in range(64)}
    assert owners == {"d1", "d2", "d3"}  # 64 keys cover 3 shards
    for i in range(64):
        key = f"account:{{{i}}}"
        assert sharding.owner(key) == sharding.owner(key)
        assert sharding.owns(sharding.owner(key), key)


def test_mod_placement_routes_by_trailing_integer():
    sharding = Sharding(("d1", "d2", "d3", "d4"), PLACEMENT_MOD)
    assert sharding.owner("account:{0}") == "d1"
    assert sharding.owner("account:{5}") == "d2"
    assert sharding.owner("account:{11}") == "d4"


def test_colocated_keys_share_a_shard():
    sharding = Sharding(("d1", "d2", "d3"), PLACEMENT_HASH)
    travel = TravelWorkload(shard_tags=True)
    for city in travel.destinations:
        owners = {sharding.owner(key) for key in travel.city_keys(city)}
        assert len(owners) == 1, city


def test_participants_are_in_shard_order():
    sharding = Sharding(("d1", "d2", "d3", "d4"), PLACEMENT_MOD)
    participants = sharding.participants(["account:{3}", "account:{0}", "account:{7}"])
    assert participants == ("d1", "d4")


def test_shard_data_splits_initial_data():
    sharding = Sharding(("d1", "d2"), PLACEMENT_MOD)
    data = {"account:{0}": 10, "account:{1}": 20, "account:{2}": 30}
    assert sharding.shard_data("d1", data) == {"account:{0}": 10, "account:{2}": 30}
    assert sharding.shard_data("d2", data) == {"account:{1}": 20}


# -------------------------------------------------------------- DSN grammar


def test_shard_dsn_round_trips():
    dsn = "etx://a3.d8.c64?xshard=0.1&placement=hash"
    scenario = api.Scenario.from_dsn(dsn)
    assert scenario.num_db_servers == 8
    assert scenario.placement == PLACEMENT_HASH
    assert scenario.xshard == 0.1
    assert api.Scenario.from_dsn(scenario.to_dsn()) == scenario
    assert "placement=hash" in scenario.to_dsn()
    assert "xshard=0.1" in scenario.to_dsn()


def test_default_placement_is_replicated_and_unserialised():
    scenario = api.Scenario.from_dsn("etx://a3.d4.c1")
    assert scenario.placement == PLACEMENT_REPLICATE
    assert "placement" not in scenario.to_dsn()


def test_xshard_requires_partitioned_placement():
    with pytest.raises(api.ScenarioError):
        api.Scenario.from_dsn("etx://a3.d4.c1?xshard=0.5")


def test_xshard_range_is_validated():
    with pytest.raises(api.ScenarioError):
        api.Scenario.from_dsn("etx://a3.d4.c1?placement=hash&xshard=1.5")


def test_unknown_placement_is_rejected():
    with pytest.raises(api.ScenarioError):
        api.Scenario.from_dsn("etx://a3.d4.c1?placement=roundrobin")


def test_sweep_axes_accept_xshard_and_placement():
    sweep = api.Sweep.over("etx://a3.c2?workload=bank&placement=hash",
                           xshard=[0.0, 0.5], d=[1, 2])
    scenarios = sweep.expand()
    assert len(scenarios) == 4
    assert {s.xshard for s in scenarios} == {0.0, 0.5}
    assert {s.num_db_servers for s in scenarios} == {1, 2}


# ------------------------------------------------------------------ storage


def test_kvstore_rejects_foreign_keys():
    store = TransactionalKVStore("d1", owns_key=lambda key: key.startswith("mine"),
                                 initial_data={"mine:1": 1})
    store.begin("t1")
    store.write("t1", "mine:2", 2)
    with pytest.raises(ShardOwnershipError):
        store.write("t1", "theirs:1", 3)
    with pytest.raises(ShardOwnershipError):
        store.read("t1", "theirs:1")
    assert store.owns("mine:9") and not store.owns("theirs:9")


def test_misrouted_request_aborts_instead_of_half_committing():
    """A request whose participant set misses an owner aborts everywhere."""
    scenario = api.Scenario(protocol="etx", num_db_servers=2, placement="mod",
                            workload="bank")
    system = api.build(scenario)
    workload = system.workload.instance
    # account 0 lives on d1 under mod placement; route the debit to d2 only.
    request = workload.debit(0, 10, participants=("d2",))
    issued = system.issue(request)
    system.run(until=30_000.0)
    assert not issued.delivered
    assert issued.aborted_results  # the protocol aborted the misrouted result
    report = system.check_spec(check_termination=False)
    assert report.ok, report.summary()


def test_unknown_participant_is_rejected_at_issue():
    system = api.build(api.Scenario(protocol="etx", num_db_servers=2,
                                    placement="hash", workload="bank"))
    workload = system.workload.instance
    with pytest.raises(ValueError):
        system.issue(workload.debit(0, 10, participants=("d9",)))


# ------------------------------------------------------------------ routing


ALL_PROTOCOLS = api.registered_protocols()


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_single_shard_requests_only_touch_their_shard(protocol):
    scenario = api.Scenario(protocol=protocol, num_db_servers=4,
                            placement="hash", workload="bank", seed=2)
    result = api.run_scenario(scenario, requests=4)
    assert result.ok, result.spec.summary()
    stats = result.statistics
    # Single-shard traffic: total commits equal delivered requests (each
    # transaction commits at exactly one shard) and spread over shards.
    assert sum(db.commits for db in stats.by_database.values()) == result.delivered
    assert sum(1 for db in stats.by_database.values() if db.commits) >= 2


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_cross_shard_requests_commit_atomically(protocol):
    scenario = api.Scenario(protocol=protocol, num_db_servers=2,
                            placement="mod", workload="bank", seed=4,
                            xshard=1.0)
    system = api.build(scenario)
    workload = system.workload.instance
    total_before = sum(workload.initial_data().values())
    for _ in range(3):
        issued = system.run_request(system.standard_request())
        assert issued.delivered
    report = system.check_spec()
    assert report.ok, report.summary()
    committed = {}
    for db in system.deployment.db_servers.values():
        committed.update(db.store.committed_snapshot())
    assert workload.total_money(committed) == total_before


def test_spec_flags_commits_outside_the_participant_set():
    """S.1: an execution or commit at a non-participant is a violation."""
    from repro.core.spec import SpecificationChecker
    from repro.sim.tracing import TraceRecorder

    trace = TraceRecorder()
    trace.record("as_compute", "a1", client="c1", j=1, request_id="req-1",
                 result="x", participants=["d1"])
    trace.record("db_vote", "d1", j=("c1", 1), vote="yes")
    trace.record("db_decide", "d1", j=("c1", 1), outcome="commit")
    clean = SpecificationChecker(trace, ["d1", "d2"], ["c1"]).check(
        check_termination=False)
    assert clean.ok, clean.summary()
    # Now forge the same result leaking onto d2, outside its participant set.
    trace.record("db_execute", "d2", j=("c1", 1), request_id="req-1", ok=True)
    trace.record("db_vote", "d2", j=("c1", 1), vote="yes")
    trace.record("db_decide", "d2", j=("c1", 1), outcome="commit")
    leaked = SpecificationChecker(trace, ["d1", "d2"], ["c1"]).check(
        check_termination=False)
    assert not leaked.ok
    assert leaked.violated("S.1")


def test_etx_concurrent_requests_from_many_clients_stay_spec_clean():
    """The concurrent per-request handlers keep distinct results independent."""
    scenario = api.Scenario(protocol="etx", num_db_servers=4, num_clients=6,
                            placement="hash", workload="bank", seed=7,
                            rate=30.0, arrival="uniform")
    result = api.run_scenario(scenario, requests=3)
    assert result.ok, result.spec.summary()
    assert result.delivered == 18


# ------------------------------------------------------------- determinism


def test_same_dsn_and_seed_give_byte_identical_sweep_rows():
    """Acceptance: serial and parallel executions of the shard grid match."""
    sweep = api.Sweep.over("etx://a3.c2?workload=bank&placement=hash&seed=11",
                           d=[1, 2, 4], xshard=[0.0, 0.5])
    serial = api.run_sweep(sweep, requests=1, workers=1)
    parallel = api.run_sweep(sweep, requests=1, workers=3)
    assert serial.to_table() == parallel.to_table()
    assert serial.ok


def test_cross_shard_transfers_require_overdraft():
    """The funds check cannot span shards; refusing loudly beats minting money."""
    bank = BankWorkload(num_accounts=8, shard_tags=True, allow_overdraft=False)
    sharding = Sharding(("d1", "d2"), PLACEMENT_MOD)
    with pytest.raises(ValueError, match="allow_overdraft"):
        bank.sharded_requests(sharding, cross_shard_fraction=0.5, seed=0)
    # Single-shard streams over an overdraft-checking bank stay fine.
    factory = bank.sharded_requests(sharding, cross_shard_fraction=0.0, seed=0)
    assert factory().participants


def test_database_counters_count_transactions_not_decide_retransmissions():
    """Lost acknowledgements re-send Decide; the counters must not inflate."""
    result = api.run_scenario("etx://a2.d2.c2?loss=0.2&seed=3&workload=bank"
                              "&placement=hash", requests=3)
    assert result.ok, result.spec.summary()
    stats = result.statistics
    total = sum(db.commits + db.aborts for db in stats.by_database.values())
    # Single-shard traffic: every result decides at exactly one shard, so the
    # distinct-transaction count is bounded by results (delivered + aborted
    # intermediate ones), no matter how many times a Decide was re-applied.
    assert total <= result.delivered + stats.aborted_results


def test_sharded_request_stream_is_deterministic():
    bank = BankWorkload(num_accounts=32, shard_tags=True, allow_overdraft=True)
    sharding = Sharding(("d1", "d2", "d3"), PLACEMENT_HASH)
    first = bank.sharded_requests(sharding, 0.4, seed=9)
    second = bank.sharded_requests(sharding, 0.4, seed=9)
    for _ in range(20):
        a, b = first(), second()
        assert (a.operation, a.params, a.participants) == \
            (b.operation, b.params, b.participants)
        assert a.participants  # always stamped on a partitioned tier
