"""Unit tests for the process / coroutine-thread model."""

import pytest

from repro.net.message import Message, is_type
from repro.net.network import Network
from repro.sim.errors import ProcessNotRunning, ThreadError
from repro.sim.process import Process
from repro.sim.waits import TIMEOUT, SimFuture


def make_pair(sim):
    network = Network(sim)
    a = network.register(Process(sim, "a"))
    b = network.register(Process(sim, "b"))
    return network, a, b


def test_sleep_resumes_after_delay(sim):
    process = Process(sim, "p")
    times = []

    def body():
        yield process.sleep(10.0)
        times.append(sim.now)
        yield process.sleep(2.5)
        times.append(sim.now)

    process.spawn(body())
    sim.run()
    assert times == [pytest.approx(10.0), pytest.approx(12.5)]


def test_receive_delivers_matching_message(sim):
    network, a, b = make_pair(sim)
    got = []

    def receiver():
        message = yield b.receive(is_type("Ping"))
        got.append((message.msg_type, message.sender, sim.now))

    b.spawn(receiver())
    a.send("b", Message("Ping"))
    sim.run()
    assert len(got) == 1
    msg_type, sender, time = got[0]
    assert msg_type == "Ping" and sender == "a"
    assert time > 0.0  # network latency elapsed


def test_receive_buffers_unmatched_messages(sim):
    network, a, b = make_pair(sim)
    got = []

    def receiver():
        message = yield b.receive(is_type("Wanted"))
        got.append(message.msg_type)

    b.spawn(receiver())
    a.send("b", Message("Unwanted"))
    a.send("b", Message("Wanted"))
    sim.run()
    assert got == ["Wanted"]
    assert b.mailbox_size == 1  # the unwanted message stays buffered


def test_receive_consumes_from_mailbox_first(sim):
    network, a, b = make_pair(sim)
    got = []
    a.send("b", Message("Early"))
    sim.run()
    assert b.mailbox_size == 1

    def receiver():
        message = yield b.receive(is_type("Early"))
        got.append(message.msg_type)

    b.spawn(receiver())
    sim.run()
    assert got == ["Early"]
    assert b.mailbox_size == 0


def test_receive_timeout_returns_sentinel(sim):
    process = Process(sim, "p")
    results = []

    def body():
        result = yield process.receive(timeout=5.0)
        results.append(result)

    process.spawn(body())
    sim.run()
    assert results == [TIMEOUT]
    assert sim.now == pytest.approx(5.0)


def test_timeout_cancelled_when_message_arrives_first(sim):
    network, a, b = make_pair(sim)
    results = []

    def receiver():
        result = yield b.receive(is_type("Ping"), timeout=100.0)
        results.append(result)

    b.spawn(receiver())
    a.send("b", Message("Ping"))
    sim.run()
    assert len(results) == 1
    assert results[0] is not TIMEOUT
    assert sim.now < 100.0


def test_two_threads_with_different_matchers_get_their_own_messages(sim):
    network, a, b = make_pair(sim)
    got = {"x": None, "y": None}

    def wants(msg_type, key):
        message = yield b.receive(is_type(msg_type))
        got[key] = message.msg_type

    b.spawn(wants("X", "x"))
    b.spawn(wants("Y", "y"))
    a.send("b", Message("Y"))
    a.send("b", Message("X"))
    sim.run()
    assert got == {"x": "X", "y": "Y"}


def test_crash_kills_threads_and_clears_mailbox(sim):
    network, a, b = make_pair(sim)
    resumed = []

    def body():
        yield b.sleep(50.0)
        resumed.append(True)

    b.spawn(body())
    a.send("b", Message("Ping"))
    sim.run(until=10.0)
    b.crash()
    assert not b.up
    assert b.mailbox_size == 0
    assert b.threads == []
    sim.run()
    assert resumed == []


def test_messages_to_crashed_process_are_dropped(sim):
    network, a, b = make_pair(sim)
    b.crash()
    a.send("b", Message("Ping"))
    sim.run()
    assert network.stats.dropped_dest_down == 1
    assert network.stats.delivered == 0


def test_crashed_process_sends_are_ignored(sim):
    network, a, b = make_pair(sim)
    a.crash()
    a.send("b", Message("Ping"))
    sim.run()
    assert network.stats.sent == 0


def test_recovery_calls_on_start_with_recovery_flag(sim):
    class Recoverable(Process):
        def __init__(self, sim, name):
            super().__init__(sim, name)
            self.starts = []

        def on_start(self, recovery):
            self.starts.append(recovery)

    network = Network(sim)
    p = network.register(Recoverable(sim, "p"))
    p.start()
    p.crash()
    p.recover()
    assert p.starts == [False, True]
    assert p.up


def test_crash_for_schedules_recovery(sim):
    network, a, b = make_pair(sim)
    b.crash_for(25.0)
    assert not b.up
    sim.run()
    assert b.up
    assert sim.now >= 25.0


def test_spawn_on_crashed_process_raises(sim):
    process = Process(sim, "p")
    process.crash()
    with pytest.raises(ProcessNotRunning):
        process.spawn(iter(()), name="t")


def test_thread_exception_is_wrapped_and_traced(sim):
    process = Process(sim, "p")

    def body():
        yield process.sleep(1.0)
        raise RuntimeError("boom")

    process.spawn(body())
    with pytest.raises(ThreadError):
        sim.run()
    assert sim.trace.count("thread_error", "p") == 1


def test_wait_for_future_resolution(sim):
    process = Process(sim, "p")
    future = SimFuture()
    got = []

    def body():
        value = yield process.wait_for(future)
        got.append(value)

    process.spawn(body())
    sim.schedule(7.0, lambda: future.resolve("decided"))
    sim.run()
    assert got == ["decided"]


def test_wait_for_already_resolved_future(sim):
    process = Process(sim, "p")
    future = SimFuture()
    future.resolve(99)
    got = []

    def body():
        value = yield process.wait_for(future)
        got.append(value)

    process.spawn(body())
    sim.run()
    assert got == [99]


def test_future_is_write_once(sim):
    future = SimFuture()
    future.resolve(1)
    future.resolve(2)
    assert future.value == 1


def test_wait_for_future_timeout(sim):
    process = Process(sim, "p")
    future = SimFuture()
    got = []

    def body():
        value = yield process.wait_for(future, timeout=3.0)
        got.append(value)

    process.spawn(body())
    sim.run()
    assert got == [TIMEOUT]


def test_multicast_sends_to_every_destination(sim):
    network = Network(sim)
    a = network.register(Process(sim, "a"))
    targets = [network.register(Process(sim, f"t{i}")) for i in range(3)]
    a.multicast([t.name for t in targets], Message("Hello"))
    sim.run()
    assert network.stats.delivered == 3
    assert all(t.mailbox_size == 1 for t in targets)


def test_send_without_transport_raises(sim):
    process = Process(sim, "orphan")
    with pytest.raises(ProcessNotRunning):
        process.send("nowhere", Message("Ping"))


# ------------------------------------------------- waiter / mailbox indexing


def test_delivery_prefers_earlier_spawned_thread_on_tie(sim):
    """Two threads waiting on the same matcher: spawn order breaks the tie,
    exactly as the historical full thread scan did."""
    network, a, b = make_pair(sim)
    got = []

    def wants(label):
        message = yield b.receive(is_type("Ping"))
        got.append((label, message["n"]))

    b.spawn(wants("first"))
    b.spawn(wants("second"))
    # The second thread re-blocks "after" the first in wall-clock terms, but
    # spawn order must still win for the first message.
    a.send("b", Message("Ping", payload={"n": 1}))
    a.send("b", Message("Ping", payload={"n": 2}))
    sim.run()
    assert got == [("first", 1), ("second", 2)]


def test_correlated_receive_only_gets_its_own_key(sim):
    """is_type_with(j=...) waiters are indexed by correlation id."""
    from repro.net.message import is_type_with

    network, a, b = make_pair(sim)
    got = {}

    def handler(key):
        message = yield b.receive(is_type_with("Vote", j=key))
        got[key] = message["v"]

    for key in ("k1", "k2", "k3"):
        b.spawn(handler(key))
    a.send("b", Message("Vote", payload={"j": "k2", "v": 2}))
    a.send("b", Message("Vote", payload={"j": "k3", "v": 3}))
    a.send("b", Message("Vote", payload={"j": "k1", "v": 1}))
    sim.run()
    assert got == {"k1": 1, "k2": 2, "k3": 3}


def test_mailbox_preserves_arrival_order_across_type_buckets(sim):
    """An any_of receive takes the globally oldest matching message even
    though the mailbox is bucketed by type and correlation id."""
    from repro.net.message import any_of, is_type_with

    network, a, b = make_pair(sim)
    a.send("b", Message("Beta", payload={"j": 9, "n": 1}))
    a.send("b", Message("Alpha", payload={"j": 9, "n": 2}))
    a.send("b", Message("Beta", payload={"j": 9, "n": 3}))
    sim.run()
    assert b.mailbox_size == 3
    taken = []

    def drain():
        for _ in range(3):
            message = yield b.receive(any_of(is_type_with("Alpha", j=9),
                                             is_type_with("Beta", j=9)))
            taken.append((message.msg_type, message["n"]))

    b.spawn(drain())
    sim.run()
    assert taken == [("Beta", 1), ("Alpha", 2), ("Beta", 3)]
    assert b.mailbox_size == 0


def test_any_of_with_types_only_inner_matcher_stays_reachable(sim):
    """An inner matcher annotated with msg_types but no msg_corr must still
    be indexed (as any-correlation) when combined through any_of."""
    from repro.net.message import any_of, is_type_with

    network, a, b = make_pair(sim)
    got = []

    def probe(m):
        return m.msg_type == "Probe"

    probe.msg_types = frozenset({"Probe"})  # hand annotation, no msg_corr

    def handler():
        message = yield b.receive(any_of(is_type_with("Vote", j=1), probe))
        got.append(message.msg_type)

    b.spawn(handler())
    a.send("b", Message("Probe"))
    sim.run()
    assert got == ["Probe"]


def test_custom_matcher_without_hints_still_works(sim):
    """A hand-written matcher (no msg_types hint) is a wildcard: it scans the
    whole mailbox and is consulted for every delivery."""
    network, a, b = make_pair(sim)
    got = []
    a.send("b", Message("Odd", payload={"n": 1}))
    sim.run()

    def picky():
        message = yield b.receive(lambda m: m.get("n", 0) % 2 == 1)
        got.append(message["n"])
        message = yield b.receive(lambda m: m.get("n", 0) % 2 == 0)
        got.append(message["n"])

    b.spawn(picky())
    a.send("b", Message("Even", payload={"n": 2}))
    sim.run()
    assert got == [1, 2]
