"""Tests for the protocol domain types and message constructors."""

import pytest

from repro.core import messages as msg
from repro.core.types import (
    ABORT,
    ABORT_DECISION,
    COMMIT,
    Decision,
    Request,
    Result,
)


def test_request_ids_are_unique():
    first = Request("book", {"city": "SFO"})
    second = Request("book", {"city": "SFO"})
    assert first.request_id != second.request_id
    assert first.describe().startswith("book(")


def test_result_holds_provenance():
    result = Result(value={"seat": "12A"}, request_id="req-1", computed_by="a1")
    assert result.value == {"seat": "12A"}
    assert result.computed_by == "a1"


def test_decision_outcome_validation():
    result = Result(value=1, request_id="r", computed_by="a1")
    assert Decision(result, COMMIT).committed
    assert not Decision(result, ABORT).committed
    with pytest.raises(ValueError):
        Decision(result, "maybe")


def test_abort_decision_constant():
    assert ABORT_DECISION.result is None
    assert ABORT_DECISION.outcome == ABORT
    assert not ABORT_DECISION.committed


def test_message_constructors_round_trip():
    request = Request("pay", {"amount": 10})
    m = msg.request_message(request, 3)
    assert m.msg_type == msg.REQUEST
    assert m["request"] is request
    assert m["j"] == 3

    decision = Decision(Result(1, "r", "a1"), COMMIT)
    m = msg.result_message(3, decision)
    assert m.msg_type == msg.RESULT and m["decision"] is decision

    assert msg.prepare_message(("c1", 1))["j"] == ("c1", 1)
    assert msg.vote_message(("c1", 1), "yes")["vote"] == "yes"
    assert msg.decide_message(("c1", 1), COMMIT)["outcome"] == COMMIT
    assert msg.ack_decide_message(("c1", 1)).msg_type == msg.ACK_DECIDE
    assert msg.ready_message().msg_type == msg.READY
    execute = msg.execute_message(("c1", 1), request)
    assert execute["request"] is request
    reply = msg.execute_result_message(("c1", 1), {"ok": 1}, ok=True)
    assert reply["value"] == {"ok": 1} and reply["ok"] is True
