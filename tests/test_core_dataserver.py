"""Tests for the database-server protocol (Figure 3) in isolation.

A scripted 'application server' process drives the database server directly so
each reaction (vote, decide, execute, recovery notification) can be observed
without the full protocol stack.
"""

import pytest

from repro.core import messages as msg
from repro.core.dataserver import DatabaseServer
from repro.core.timing import DatabaseTiming
from repro.core.types import ABORT, COMMIT, Request
from repro.net.message import is_type
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Simulator


def bank_logic(request):
    def logic(view):
        balance = view.read("balance", 0)
        amount = request.params.get("amount", 0)
        view.write("balance", balance - amount)
        return {"new_balance": balance - amount}

    return logic


def build(initial=None, timing=None):
    sim = Simulator(seed=0)
    network = Network(sim)
    driver = network.register(Process(sim, "a1"))
    db = DatabaseServer(sim, "d1", ["a1"], business_logic=bank_logic,
                        timing=timing or DatabaseTiming(),
                        initial_data=initial or {"balance": 100})
    network.register(db)
    db.start()
    return sim, network, driver, db


def drive(driver, responses, script):
    """Spawn a scripted driver coroutine collecting replies into ``responses``."""

    def body():
        yield from script(driver, responses)

    driver.spawn(body())


def test_execute_runs_business_logic_and_replies():
    sim, network, driver, db = build()
    responses = []

    def script(p, out):
        p.send("d1", msg.execute_message(("c1", 1), Request("pay", {"amount": 30})))
        reply = yield p.receive(is_type(msg.EXECUTE_RESULT))
        out.append(reply)

    drive(driver, responses, script)
    sim.run(until=5_000.0)
    assert len(responses) == 1
    assert responses[0]["value"] == {"new_balance": 70}
    assert responses[0]["ok"] is True
    # Not committed yet: only transient manipulation happened.
    assert db.committed_value("balance") == 100


def test_execute_charges_start_plus_sql_time():
    timing = DatabaseTiming(start=3.4, sql=187.0)
    sim, network, driver, db = build(timing=timing)
    responses = []

    def script(p, out):
        p.send("d1", msg.execute_message(("c1", 1), Request("pay", {"amount": 1})))
        reply = yield p.receive(is_type(msg.EXECUTE_RESULT))
        out.append(sim.now)

    drive(driver, responses, script)
    sim.run(until=5_000.0)
    # one-way latency 1.75 * 2 + 190.4 of database work
    assert responses[0] == pytest.approx(3.5 + 190.4, abs=0.5)


def test_execute_is_idempotent_for_same_result_key():
    sim, network, driver, db = build()
    responses = []

    def script(p, out):
        for _ in range(2):
            p.send("d1", msg.execute_message(("c1", 1), Request("pay", {"amount": 30})))
            reply = yield p.receive(is_type(msg.EXECUTE_RESULT))
            out.append(reply["value"])

    drive(driver, responses, script)
    sim.run(until=10_000.0)
    # The second execution must not re-apply the debit inside the transaction.
    assert responses == [{"new_balance": 70}, {"new_balance": 70}]


def test_vote_yes_then_commit_applies_writes():
    sim, network, driver, db = build()
    log = []

    def script(p, out):
        key = ("c1", 1)
        p.send("d1", msg.execute_message(key, Request("pay", {"amount": 30})))
        yield p.receive(is_type(msg.EXECUTE_RESULT))
        p.send("d1", msg.prepare_message(key))
        vote = yield p.receive(is_type(msg.VOTE))
        out.append(("vote", vote["vote"]))
        p.send("d1", msg.decide_message(key, COMMIT))
        ack = yield p.receive(is_type(msg.ACK_DECIDE))
        out.append(("ack", ack["j"]))

    drive(driver, log, script)
    sim.run(until=10_000.0)
    assert ("vote", "yes") in log
    assert ("ack", ("c1", 1)) in log
    assert db.committed_value("balance") == 70


def test_vote_no_for_unknown_result():
    sim, network, driver, db = build()
    log = []

    def script(p, out):
        p.send("d1", msg.prepare_message(("c1", 99)))
        vote = yield p.receive(is_type(msg.VOTE))
        out.append(vote["vote"])

    drive(driver, log, script)
    sim.run(until=5_000.0)
    assert log == ["no"]


def test_decide_abort_discards_writes():
    sim, network, driver, db = build()

    def script(p, out):
        key = ("c1", 1)
        p.send("d1", msg.execute_message(key, Request("pay", {"amount": 30})))
        yield p.receive(is_type(msg.EXECUTE_RESULT))
        p.send("d1", msg.prepare_message(key))
        yield p.receive(is_type(msg.VOTE))
        p.send("d1", msg.decide_message(key, ABORT))
        yield p.receive(is_type(msg.ACK_DECIDE))

    drive(driver, [], script)
    sim.run(until=10_000.0)
    assert db.committed_value("balance") == 100
    assert db.in_doubt() == []


def test_decide_commit_without_yes_vote_is_refused():
    sim, network, driver, db = build()
    outcomes = []

    def script(p, out):
        key = ("c1", 1)
        p.send("d1", msg.execute_message(key, Request("pay", {"amount": 30})))
        yield p.receive(is_type(msg.EXECUTE_RESULT))
        # No Prepare: straight to Decide(commit).
        p.send("d1", msg.decide_message(key, COMMIT))
        yield p.receive(is_type(msg.ACK_DECIDE))

    drive(driver, outcomes, script)
    sim.run(until=10_000.0)
    assert db.committed_value("balance") == 100
    decide_events = sim.trace.select("db_decide", "d1")
    assert decide_events and decide_events[0].get("outcome") == ABORT


def test_duplicate_decide_is_acknowledged_idempotently():
    sim, network, driver, db = build()
    acks = []

    def script(p, out):
        key = ("c1", 1)
        p.send("d1", msg.execute_message(key, Request("pay", {"amount": 10})))
        yield p.receive(is_type(msg.EXECUTE_RESULT))
        p.send("d1", msg.prepare_message(key))
        yield p.receive(is_type(msg.VOTE))
        for _ in range(3):
            p.send("d1", msg.decide_message(key, COMMIT))
            ack = yield p.receive(is_type(msg.ACK_DECIDE))
            out.append(ack["j"])

    drive(driver, acks, script)
    sim.run(until=20_000.0)
    assert acks == [("c1", 1)] * 3
    assert db.committed_value("balance") == 90


def test_recovery_sends_ready_and_restores_in_doubt():
    sim, network, driver, db = build()
    observed = []

    def script(p, out):
        key = ("c1", 1)
        p.send("d1", msg.execute_message(key, Request("pay", {"amount": 30})))
        yield p.receive(is_type(msg.EXECUTE_RESULT))
        p.send("d1", msg.prepare_message(key))
        yield p.receive(is_type(msg.VOTE))
        # Crash the database after the yes vote and bring it back.
        db.crash_for(50.0)
        ready = yield p.receive(is_type(msg.READY))
        out.append(("ready", ready.sender))
        # The in-doubt transaction can still be committed after recovery.
        p.send("d1", msg.decide_message(key, COMMIT))
        yield p.receive(is_type(msg.ACK_DECIDE))

    drive(driver, observed, script)
    sim.run(until=20_000.0)
    assert ("ready", "d1") in observed
    assert db.committed_value("balance") == 70


def test_crash_loses_unprepared_transaction():
    sim, network, driver, db = build()

    def script(p, out):
        key = ("c1", 1)
        p.send("d1", msg.execute_message(key, Request("pay", {"amount": 30})))
        yield p.receive(is_type(msg.EXECUTE_RESULT))
        db.crash_for(10.0)
        yield p.receive(is_type(msg.READY))

    drive(driver, [], script)
    sim.run(until=20_000.0)
    assert db.committed_value("balance") == 100
    assert db.in_doubt() == []
    assert db.store.locks.locked_keys() == set()
