"""Unit tests for the trace recorder."""

from repro.sim.scheduler import Simulator
from repro.sim.tracing import TraceEvent, TraceRecorder


def test_record_uses_virtual_clock():
    sim = Simulator()
    sim.schedule(12.0, lambda: sim.trace.record("tick", "p", n=1))
    sim.run()
    event = sim.trace.first("tick")
    assert event is not None
    assert event.time == 12.0
    assert event.process == "p"
    assert event.data == {"n": 1}


def test_select_filters_by_category_process_and_data():
    trace = TraceRecorder()
    trace.record("a", "p1", k=1)
    trace.record("a", "p2", k=2)
    trace.record("b", "p1", k=1)
    assert len(trace.select("a")) == 2
    assert len(trace.select("a", "p1")) == 1
    assert len(trace.select(process="p1")) == 2
    assert len(trace.select("a", k=2)) == 1
    assert trace.count("b") == 1


def test_first_and_last():
    trace = TraceRecorder()
    trace.record("x", "p", n=1)
    trace.record("x", "p", n=2)
    assert trace.first("x").data["n"] == 1
    assert trace.last("x").data["n"] == 2
    assert trace.first("missing") is None
    assert trace.last("missing") is None


def test_summary_and_categories():
    trace = TraceRecorder()
    for _ in range(3):
        trace.record("send")
    trace.record("deliver")
    assert trace.summary() == {"send": 3, "deliver": 1}
    assert trace.categories() == {"send", "deliver"}


def test_between_filters_time_window():
    sim = Simulator()
    for t in (1.0, 5.0, 9.0):
        sim.schedule(t, lambda: sim.trace.record("tick"))
    sim.run()
    assert len(sim.trace.between(2.0, 8.0)) == 1


def test_disable_stops_recording():
    trace = TraceRecorder()
    trace.enabled = False
    assert trace.record("x") is None
    assert len(trace) == 0
    trace.enabled = True
    trace.record("x")
    assert len(trace) == 1


def test_extend_and_clear():
    trace = TraceRecorder()
    trace.extend([TraceEvent(1.0, "a", "p"), TraceEvent(2.0, "b", "q")])
    assert len(trace) == 2
    trace.clear()
    assert len(trace) == 0


def test_event_get_helper():
    event = TraceEvent(0.0, "cat", "p", {"k": "v"})
    assert event.get("k") == "v"
    assert event.get("missing", 7) == 7
