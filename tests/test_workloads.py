"""Tests for the bank and travel workloads and the closed-loop driver."""

import random

import pytest

from repro.core import DeploymentConfig, EtxDeployment
from repro.storage.kvstore import TransactionalKVStore
from repro.storage.xa import TransactionView
from repro.workload.bank import BankWorkload
from repro.workload.generator import ClosedLoop, OpenLoop, RequestStream, RunStatistics
from repro.workload.travel import TravelWorkload


def run_logic(workload, request, initial=None):
    """Run a workload's business logic against a scratch store; return (result, committed)."""
    store = TransactionalKVStore("db", initial_data=initial or workload.initial_data())
    store.begin("t1")
    view = TransactionView(store, "t1")
    result = workload.business_logic(request)(view)
    store.prepare("t1")
    store.commit("t1")
    return result, store.committed_snapshot()


# ------------------------------------------------------------------------ bank


def test_bank_initial_data_and_total_money():
    bank = BankWorkload(num_accounts=3, initial_balance=50)
    data = bank.initial_data()
    assert data == {"account:0": 50, "account:1": 50, "account:2": 50}
    assert bank.total_money(data) == 150


def test_bank_debit_credit_logic():
    bank = BankWorkload(num_accounts=2, initial_balance=100)
    result, committed = run_logic(bank, bank.debit(0, 30))
    assert result["status"] == "ok"
    assert committed["account:0"] == 70
    result, committed = run_logic(bank, bank.credit(1, 25))
    assert committed["account:1"] == 125


def test_bank_transfer_conserves_money():
    bank = BankWorkload(num_accounts=2, initial_balance=100)
    result, committed = run_logic(bank, bank.transfer(0, 1, 40))
    assert result["status"] == "ok"
    assert committed["account:0"] == 60
    assert committed["account:1"] == 140
    assert bank.total_money(committed) == 200


def test_bank_insufficient_funds_is_user_level_abort():
    bank = BankWorkload(num_accounts=1, initial_balance=10)
    result, committed = run_logic(bank, bank.debit(0, 50))
    assert result["status"] == "insufficient_funds"
    assert committed["account:0"] == 10  # nothing changed


def test_bank_overdraft_allowed_when_configured():
    bank = BankWorkload(num_accounts=1, initial_balance=10, allow_overdraft=True)
    result, committed = run_logic(bank, bank.debit(0, 50))
    assert result["status"] == "ok"
    assert committed["account:0"] == -40


def test_bank_random_requests_are_valid_and_deterministic():
    bank = BankWorkload(num_accounts=5)
    first = [bank.random_request(random.Random(1)).operation for _ in range(5)]
    second = [bank.random_request(random.Random(1)).operation for _ in range(5)]
    assert first == second
    with pytest.raises(ValueError):
        BankWorkload(num_accounts=0)
    with pytest.raises(ValueError):
        bank.business_logic(bank.debit(0, 1).__class__("unknown_op", {}))


# ---------------------------------------------------------------------- travel


def test_travel_initial_inventory():
    travel = TravelWorkload(destinations=("PAR",), seats_per_flight=2,
                            rooms_per_hotel=2, cars_per_city=1)
    data = travel.initial_data()
    assert data["flight:PAR:seats"] == 2
    assert data["hotel:PAR:rooms"] == 2
    assert data["car:PAR:available"] == 1


def test_travel_booking_decrements_inventory_and_returns_reservation():
    travel = TravelWorkload(destinations=("PAR",))
    result, committed = run_logic(travel, travel.book("PAR", "alice"))
    assert result["status"] == "confirmed"
    assert result["traveller"] == "alice"
    assert result["flight"].startswith("FL-PAR")
    assert committed["flight:PAR:seats"] == travel.seats_per_flight - 1
    assert travel.bookings_made(committed) == 1


def test_travel_sold_out_is_regular_result_value():
    travel = TravelWorkload(destinations=("PAR",), seats_per_flight=0)
    result, committed = run_logic(travel, travel.book("PAR"))
    assert result["status"] == "sold_out"
    assert travel.bookings_made(committed) == 0


def test_travel_booking_without_car_keeps_cars():
    travel = TravelWorkload(destinations=("NYC",), cars_per_city=3)
    result, committed = run_logic(travel, travel.book("NYC", need_car=False))
    assert result["car"] is None
    assert committed["car:NYC:available"] == 3


def test_travel_unknown_destination_rejected():
    travel = TravelWorkload(destinations=("PAR",))
    with pytest.raises(ValueError):
        travel.book("MARS")
    with pytest.raises(ValueError):
        TravelWorkload(destinations=())


def test_travel_end_to_end_through_protocol():
    travel = TravelWorkload(destinations=("PAR",), seats_per_flight=2)
    deployment = EtxDeployment(DeploymentConfig(
        business_logic=travel.business_logic, initial_data=travel.initial_data()))
    issued = deployment.run_request(travel.book("PAR", "alice"))
    assert issued.delivered
    assert issued.result.value["status"] == "confirmed"
    assert deployment.db_servers["d1"].committed_value("flight:PAR:seats") == 1
    assert deployment.check_spec().ok


# -------------------------------------------------------------------- generator


def test_request_stream_is_reproducible():
    bank = BankWorkload()
    first = RequestStream(bank.random_request, seed=3).take(4)
    second = RequestStream(bank.random_request, seed=3).take(4)
    assert [r.operation for r in first] == [r.operation for r in second]
    assert [r.params for r in first] == [r.params for r in second]


def test_run_statistics_aggregation():
    stats = RunStatistics(latencies=[100.0, 200.0, 300.0], attempts=[1, 2, 1])
    assert stats.count == 3
    assert stats.mean_latency == pytest.approx(200.0)
    assert stats.max_latency == pytest.approx(300.0)
    assert stats.mean_attempts == pytest.approx(4 / 3)
    assert stats.percentile(0.0) == pytest.approx(100.0)
    assert stats.percentile(1.0) == pytest.approx(300.0)
    empty = RunStatistics()
    assert empty.mean_latency == 0.0 and empty.percentile(0.5) == 0.0


def test_run_statistics_percentiles_interpolate():
    stats = RunStatistics(latencies=[100.0, 200.0, 300.0, 400.0])
    assert stats.p50 == pytest.approx(250.0)  # between the middle samples
    assert stats.percentile(0.25) == pytest.approx(175.0)
    assert stats.p99 == pytest.approx(397.0)


def test_run_statistics_throughput():
    stats = RunStatistics(latencies=[10.0, 20.0], elapsed=500.0)
    assert stats.throughput == pytest.approx(4.0)  # 2 requests in 0.5 s
    assert RunStatistics().throughput == 0.0


def test_closed_loop_runs_requests_sequentially():
    bank = BankWorkload(num_accounts=1, initial_balance=100)
    deployment = EtxDeployment(DeploymentConfig(
        business_logic=bank.business_logic, initial_data=bank.initial_data()))
    stats = ClosedLoop().run(deployment, [bank.debit(0, 10) for _ in range(3)])
    assert stats.count == 3
    assert stats.undelivered == 0
    assert deployment.db_servers["d1"].committed_value("account:0") == 70
    assert stats.mean_latency > 0
    assert stats.throughput > 0
    assert set(stats.by_client) == {"c1"}
    assert stats.by_client["c1"].count == 3


def test_closed_loop_think_time_spaces_requests():
    bank = BankWorkload(num_accounts=1, initial_balance=100)
    fast = EtxDeployment(DeploymentConfig(
        business_logic=bank.business_logic, initial_data=bank.initial_data()))
    slow = EtxDeployment(DeploymentConfig(
        business_logic=bank.business_logic, initial_data=bank.initial_data()))
    fast_stats = ClosedLoop().run(fast, [bank.debit(0, 10) for _ in range(3)])
    slow_stats = ClosedLoop(think_time=500.0).run(
        slow, [bank.debit(0, 10) for _ in range(3)])
    assert slow_stats.count == fast_stats.count == 3
    # Think time stretches the run without touching per-request latency much.
    assert slow_stats.elapsed >= fast_stats.elapsed + 2 * 500.0
    assert slow_stats.throughput < fast_stats.throughput


def test_open_loop_uniform_arrivals_inject_at_rate():
    bank = BankWorkload(num_accounts=1, initial_balance=1_000)
    deployment = EtxDeployment(DeploymentConfig(
        business_logic=bank.business_logic, initial_data=bank.initial_data()))
    generator = OpenLoop(rate=10.0, arrival="uniform")  # one every 100 ms
    stats = generator.run(deployment, [bank.debit(0, 10) for _ in range(4)])
    assert stats.count == 4
    assert stats.undelivered == 0
    # Four uniform arrivals at 10/s span 400 ms plus the last service time.
    assert stats.elapsed >= 400.0
    assert deployment.db_servers["d1"].committed_value("account:0") == 960


def test_open_loop_rejects_bad_parameters():
    with pytest.raises(ValueError):
        OpenLoop(rate=0.0)
    with pytest.raises(ValueError):
        OpenLoop(rate=5.0, arrival="bursty")
    with pytest.raises(ValueError):
        ClosedLoop(think_time=-1.0)


def test_serial_run_emits_full_parallel_and_saturation_schema():
    # Schema parity: a serial (jobs=0) run reports the same parallel and
    # saturation keys a sharded run does, zeroed -- consumers of soak.json
    # and sweep rows must never KeyError on the serial path.
    bank = BankWorkload(num_accounts=1, initial_balance=100)
    deployment = EtxDeployment(DeploymentConfig(
        business_logic=bank.business_logic, initial_data=bank.initial_data()))
    stats = ClosedLoop().run(deployment, [bank.debit(0, 10) for _ in range(2)])
    assert stats.parallel == {"jobs": 0, "workers": 0, "rounds": 0,
                              "stalled_windows": 0, "events": {},
                              "balance": 1.0}
    assert stats.saturation == {"shed_messages": 0, "mailbox_peak": 0}
