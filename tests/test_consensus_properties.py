"""Property-based tests of the consensus/wo-register invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.consensus.synod import ConsensusHost
from repro.net.network import Network
from repro.registers.local import LocalRegisterArray, LocalRegisterStore
from repro.sim.process import Process
from repro.sim.scheduler import Simulator


@st.composite
def consensus_scenarios(draw):
    """A random consensus scenario: group size, proposers, crash pattern."""
    n = draw(st.sampled_from([3, 5]))
    names = [f"a{i + 1}" for i in range(n)]
    proposers = draw(st.lists(st.sampled_from(names), min_size=1, max_size=n, unique=True))
    # Crash at most a minority, never a proposer-free majority.
    max_crashes = (n - 1) // 2
    crashed = draw(st.lists(st.sampled_from(names), min_size=0, max_size=max_crashes,
                            unique=True))
    # Keep at least one live proposer so a decision is reachable.  (Dropping
    # an arbitrary element is not enough: the surviving entry could itself be
    # the sole proposer, e.g. proposers=[a1], crashed=[a1, a2].)
    live_proposers = [p for p in proposers if p not in crashed]
    if not live_proposers:
        crashed = [name for name in crashed if name != proposers[0]]
    seed = draw(st.integers(min_value=0, max_value=2**16))
    crash_times = {name: draw(st.floats(min_value=0.0, max_value=50.0)) for name in crashed}
    return n, names, proposers, crash_times, seed


@given(consensus_scenarios())
@settings(max_examples=30, deadline=None)
def test_consensus_agreement_validity_and_termination(scenario):
    n, names, proposers, crash_times, seed = scenario
    sim = Simulator(seed=seed)
    network = Network(sim)
    hosts = {}
    for name in names:
        process = network.register(Process(sim, name))
        host = ConsensusHost(process, names, fast_path_owner=names[0])
        host.install()
        hosts[name] = host
    for name, time in crash_times.items():
        sim.schedule(time, hosts[name].process.crash)
    futures = {}
    for index, name in enumerate(proposers):
        futures[name] = hosts[name].propose("inst", f"value-{name}")

    live_proposer_futures = [futures[p] for p in proposers if p not in crash_times]
    sim.run_until(lambda: all(f.resolved for f in live_proposer_futures), until=100_000.0)

    # Termination: every live proposer learns a decision.
    assert all(f.resolved for f in live_proposer_futures)
    # Agreement: all resolved futures and all learned decisions carry one value.
    decided_values = {f.value for f in futures.values() if f.resolved}
    decided_values |= {host.decision("inst") for host in hosts.values()
                       if host.decision("inst") is not None}
    assert len(decided_values) == 1
    # Validity: the decision is one of the proposed values.
    value = decided_values.pop()
    assert value in {f"value-{name}" for name in proposers}


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=9), st.text(min_size=1, max_size=5)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_local_register_first_write_wins(operations):
    """For any sequence of writes, each cell holds the first value written to it."""
    sim = Simulator()
    store = LocalRegisterStore(sim, "reg")
    view = LocalRegisterArray(store)
    expected: dict[int, str] = {}
    for index, value in operations:
        view.write(index, value)
        expected.setdefault(index, value)
    sim.run()
    for index, value in expected.items():
        assert view.read(index) == value
    assert view.known_indices() == sorted(expected)


@given(
    st.integers(min_value=0, max_value=2**16),
    st.sampled_from([3, 5, 7]),
)
@settings(max_examples=15, deadline=None)
def test_all_servers_learn_the_same_register_value(seed, n):
    """After concurrent writes, every up server eventually reads the same value."""
    sim = Simulator(seed=seed)
    network = Network(sim)
    names = [f"a{i + 1}" for i in range(n)]
    hosts = {}
    for name in names:
        process = network.register(Process(sim, name))
        host = ConsensusHost(process, names, fast_path_owner=names[0])
        host.install()
        hosts[name] = host
    futures = [hosts[name].propose(("regA", 1), name) for name in names]
    assert sim.run_until(lambda: all(f.resolved for f in futures), until=100_000.0)
    sim.run(until=sim.now + 500.0)
    values = {hosts[name].decision(("regA", 1)) for name in names}
    assert len(values) == 1
