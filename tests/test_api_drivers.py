"""Tests for the protocol-driver registry and the unified run facade.

The smoke test parametrizes over :func:`repro.api.registered_protocols`, so
any protocol registered later is automatically held to the same bar: one
failure-free request must execute end-to-end and satisfy the e-Transaction
specification.
"""

import pytest

from repro import api


# ------------------------------------------------------------ registry smoke


@pytest.mark.parametrize("protocol", api.registered_protocols())
def test_every_registered_protocol_passes_the_smoke_scenario(protocol):
    """One request, failure-free: delivered and ``SpecReport.ok``."""
    result = api.run_scenario(api.Scenario(protocol=protocol, workload="bank"))
    assert result.delivered == result.requested == 1
    assert result.spec.ok, result.spec.summary()
    assert result.ok


@pytest.mark.parametrize("protocol", api.registered_protocols())
def test_every_registered_protocol_builds_from_its_scheme(protocol):
    system = api.build(api.Scenario.from_dsn(f"{protocol}://"))
    assert system.scenario.protocol == protocol
    issued = system.run_request(system.standard_request())
    assert issued.delivered


def test_unknown_protocol_is_rejected_with_known_names():
    with pytest.raises(api.ScenarioError):
        api.get_protocol("carrier-pigeon")


def test_custom_protocols_can_be_registered():
    class EtxTwin(api.ProtocolDriver):
        name = "etx-twin"
        default_app_servers = 3

        def build(self, scenario, **kwargs):
            return api.get_protocol("etx").build(scenario, **kwargs)

    api.register_protocol("etx-twin", EtxTwin())
    try:
        assert "etx-twin" in api.registered_protocols()
        result = api.run_scenario("etx-twin://a3.d1.c1")
        assert result.ok
    finally:
        from repro.api import drivers, scenario
        drivers._REGISTRY.pop("etx-twin", None)
        scenario._SCHEME_ALIASES.pop("etx-twin", None)
        scenario._DEFAULT_APP_SERVERS.pop("etx-twin", None)


def test_pb_rejects_a_single_app_server():
    with pytest.raises(api.ScenarioError):
        api.build(api.Scenario(protocol="pb", num_app_servers=1))


# -------------------------------------------------------------- the facade


def test_running_system_exposes_the_uniform_surface():
    system = api.build(api.Scenario.from_dsn("etx://a3.d1.c1"))
    for attribute in ("issue", "run", "run_request", "apply_faults",
                      "check_spec", "stats", "standard_request"):
        assert hasattr(system, attribute)
    # delegation to the wrapped deployment keeps existing idioms working
    assert set(system.db_servers) == {"d1"}
    assert system.sim is system.deployment.sim
    assert system.trace is system.deployment.trace


def test_scenario_faults_are_applied_at_build_time():
    system = api.build(api.Scenario.from_dsn(
        "etx://a3.d1.c1?detect=10&timing=paper&workload=bank&fault=crash@244:a1"))
    issued = system.run_request(system.standard_request())
    assert issued.delivered
    assert system.trace.count("crash", "a1") == 1
    # a backup answered on behalf of the crashed primary
    answered = {event.process for event in system.trace.select("as_result_sent")}
    assert answered - {"a1"}


def test_build_accepts_workload_and_timing_overrides():
    from repro.workload.bank import BankWorkload

    bank = BankWorkload(num_accounts=1, initial_balance=77)
    system = api.build(api.Scenario(protocol="baseline"), workload=bank)
    issued = system.run_request(bank.debit(0, 7))
    assert issued.delivered
    assert system.db_servers["d1"].committed_value("account:0") == 70


def test_run_scenario_accepts_dsn_strings_and_reports():
    result = api.run_scenario("2pc://?workload=bank&timing=paper", requests=2)
    assert result.requested == 2
    assert result.delivered == 2
    assert result.total_messages > 0
    assert result.message_counts.get("Prepare", 0) >= 2
    assert result.breakdown.protocol == "2pc"
    summary = result.summary()
    assert "2pc://" in summary and "spec" in summary


def test_run_scenario_skips_termination_check_for_client_crashes():
    result = api.run_scenario("etx://a3.d1.c1?fault=crash@10:c1")
    assert result.delivered == 0
    assert result.spec.ok  # only safety was checked; no T.1 violation reported


def test_protocols_reject_parameters_they_do_not_consume():
    with pytest.raises(api.ScenarioError, match="does not support"):
        api.build(api.Scenario.from_dsn("2pc://?fd=heartbeat"))
    with pytest.raises(api.ScenarioError, match="does not support"):
        api.build(api.Scenario.from_dsn("baseline://?reliable=1"))
    with pytest.raises(api.ScenarioError, match="does not support"):
        api.build(api.Scenario.from_dsn("etx://?log=25"))
    # ... but the parameter is fine on a protocol that consumes it
    assert api.build(api.Scenario.from_dsn("2pc://?log=25"))
    assert api.build(api.Scenario.from_dsn("etx://?fd=heartbeat"))


def test_explicit_zero_backoff_is_honoured():
    system = api.build(api.Scenario.from_dsn("etx://a3.d1.c1?backoff=0"))
    assert system.deployment.config.protocol_timing.client_backoff == 0.0
