"""Trace equivalence: serial kernels and the sharded parallel kernel.

The regression oracle for the timer-wheel rebuild and the conservative
parallel kernel: every execution strategy must produce *byte-identical*
traces -- same events, same timestamps, same payloads.  Three sweeps
enforce it:

* every committed corpus artifact (``tests/corpus/``) replayed with the
  exact evaluation parameters recorded in the artifact -- faulted
  schedules exercise cancellation, crash timers and recovery paths that
  clean runs never reach -- under both serial kernels and under
  ``jobs=2`` sharding;
* a seed sweep across all four protocol schemes, so the FIFO-within-
  timestamp contract is pinned for each protocol's own scheduling mix;
* the same seed sweep against the sharded kernel (``jobs=`` > 0,
  in-process and forked-worker modes), canonicalized by a stable sort on
  ``(time, process)``: the round engine commits whole timestamps at
  barriers, so cross-process order *within* one instant is the one
  representational difference allowed.

Kernel selection happens inside :func:`repro.runtime.base.create_kernel`
at build time, so the tests toggle the ``REPRO_KERNEL`` environment
variable around each build.
"""

import glob
import os
from contextlib import contextmanager

import pytest

from repro import api
from repro.api.runner import load_generator_for
from repro.campaign.artifacts import Counterexample
from repro.core.types import reset_request_counter
from repro.workload.generator import ClosedLoop

CORPUS = sorted(glob.glob(os.path.join(os.path.dirname(__file__), "corpus", "*.json")))

SEEDS = range(20)
SCHEMES = {
    "etx": "etx://a3.d2.c2?workload=bank&placement=mod&xshard=0.5&seed={seed}",
    "2pc": "2pc://a1.d1.c1?workload=travel&seed={seed}",
    "pb": "pb://a2.d1.c1?workload=bank&timing=paper&seed={seed}",
    "baseline": "baseline://a1.d1.c1?workload=bank&timing=paper&seed={seed}",
}


@contextmanager
def _kernel(kind: str):
    previous = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = kind
    try:
        yield
    finally:
        if previous is None:
            del os.environ["REPRO_KERNEL"]
        else:
            os.environ["REPRO_KERNEL"] = previous


def _fingerprint(system) -> list[tuple]:
    """The full trace as comparable plain data (every field, repr'd)."""
    return [
        (event.time, event.category, event.process,
         tuple(sorted((key, repr(value)) for key, value in event.data.items())))
        for event in system.trace
    ]


def _canonical(trace: list[tuple]) -> list[tuple]:
    """Stable-sort a fingerprint by ``(time, process)``.

    The parallel round engine merges per-shard traces at barriers: within
    one timestamp, events of *different* processes may commit in a
    different relative order than the serial dispatch interleaving.
    Per-process order and every field are still exact, so sorting both
    sides by ``(time, process)`` (stable, preserving per-process order)
    is a lossless canonical form.
    """
    return sorted(trace, key=lambda row: (row[0], row[2]))


def _scenario_trace(dsn: str, requests: int = 2) -> list[tuple]:
    reset_request_counter()
    system = api.build(api.Scenario.from_dsn(dsn))
    ClosedLoop().run(system, requests)
    fingerprint = _fingerprint(system)
    system.close()
    return fingerprint


def _replay_trace(path: str) -> tuple[list[tuple], tuple[str, ...]]:
    """Replay a corpus artifact exactly as ``campaign.replay`` does.

    Same steps as :func:`repro.campaign.runner.evaluate_schedule`, but the
    system object is kept so the full trace can be fingerprinted alongside
    the observed violations.
    """
    artifact = Counterexample.load(path)
    scenario = artifact.scenario(os.path.dirname(os.path.abspath(path)))
    reset_request_counter()
    system = api.build(scenario)
    generator = load_generator_for(scenario, horizon_per_request=artifact.horizon)
    generator.run(system, artifact.requests)
    if artifact.settle > 0:
        system.run(until=system.sim.now + artifact.settle)
    report = system.check_spec(check_termination=True)
    return _fingerprint(system), tuple(str(v) for v in report.violations)


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(path) for path in CORPUS])
def test_corpus_replay_is_byte_identical_across_kernels(path):
    """Every committed artifact replays identically under both kernels."""
    with _kernel("heap"):
        heap_trace, heap_violations = _replay_trace(path)
    with _kernel("wheel"):
        wheel_trace, wheel_violations = _replay_trace(path)
    assert wheel_violations == heap_violations
    assert wheel_trace == heap_trace


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_seed_sweep_is_byte_identical_across_kernels(scheme):
    """20 seeds per protocol scheme: old and new kernel traces match."""
    template = SCHEMES[scheme]
    for seed in SEEDS:
        dsn = template.format(seed=seed)
        with _kernel("heap"):
            heap_trace = _scenario_trace(dsn)
        with _kernel("wheel"):
            wheel_trace = _scenario_trace(dsn)
        assert wheel_trace == heap_trace, f"trace divergence for {dsn}"


def test_corpus_is_present():
    """The equivalence suite must never silently run over an empty corpus."""
    assert len(CORPUS) >= 8


# --------------------------------------------------- parallel (sharded) runs

#: Shard counts per scheme, bounded by each scheme's server count
#: (``jobs <= app_servers + db_servers``).
PARALLEL_JOBS = {
    "etx": (2, 4),
    "2pc": (2,),
    "pb": (3,),
    "baseline": (2,),
}


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_seed_sweep_is_byte_identical_under_sharding(scheme):
    """20 seeds per scheme: in-process sharded traces match serial exactly."""
    template = SCHEMES[scheme]
    for seed in SEEDS:
        dsn = template.format(seed=seed)
        serial = _canonical(_scenario_trace(dsn))
        for jobs in PARALLEL_JOBS[scheme]:
            sharded = _canonical(_scenario_trace(f"{dsn}&jobs={jobs}"))
            assert sharded == serial, \
                f"trace divergence for {dsn} at jobs={jobs}"


@pytest.mark.parametrize("scheme,jobs,workers", [
    ("etx", 2, 2),
    ("etx", 4, 2),
    ("pb", 3, 3),
    ("2pc", 2, 1),
])
def test_worker_processes_are_byte_identical(scheme, jobs, workers):
    """Forked-worker runs produce the same merged trace as serial runs.

    A few seeds only: each comparison forks ``workers`` OS processes, so
    this pins the wire codec and pipe protocol rather than re-proving the
    ordering theory (the in-process sweep above covers that breadth).
    """
    template = SCHEMES[scheme]
    for seed in (0, 1, 2):
        dsn = template.format(seed=seed)
        serial = _canonical(_scenario_trace(dsn))
        sharded = _canonical(
            _scenario_trace(f"{dsn}&jobs={jobs}&workers={workers}"))
        assert sharded == serial, \
            f"trace divergence for {dsn} at jobs={jobs}&workers={workers}"


def _parallel_replay_trace(path: str):
    """Replay a corpus artifact under ``jobs=2`` sharding (when eligible)."""
    artifact = Counterexample.load(path)
    scenario = artifact.scenario(os.path.dirname(os.path.abspath(path)))
    if scenario.runtime != "sim" or scenario.use_reliable_channels:
        pytest.skip("scenario not eligible for sharding")
    jobs = min(2, scenario.num_app_servers + scenario.num_db_servers)
    scenario = scenario.with_(jobs=jobs)
    reset_request_counter()
    system = api.build(scenario)
    generator = load_generator_for(scenario, horizon_per_request=artifact.horizon)
    generator.run(system, artifact.requests)
    if artifact.settle > 0:
        system.run(until=system.sim.now + artifact.settle)
    report = system.check_spec(check_termination=True)
    fingerprint = _fingerprint(system)
    system.close()
    return fingerprint, tuple(str(v) for v in report.violations)


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(path) for path in CORPUS])
def test_corpus_replay_is_byte_identical_under_sharding(path):
    """Faulted corpus schedules replay identically on the sharded kernel.

    Crashes, recoveries and partitions of server processes are mirrored
    into every shard (shadow faults), so the same message drops and
    retries happen at the same virtual times.
    """
    with _kernel("wheel"):
        serial_trace, serial_violations = _replay_trace(path)
        sharded_trace, sharded_violations = _parallel_replay_trace(path)
    assert sharded_violations == serial_violations
    assert _canonical(sharded_trace) == _canonical(serial_trace)
