"""Trace equivalence: the timer-wheel kernel vs the frozen heap kernel.

The regression oracle for the timer-wheel rebuild: under either value of
``REPRO_KERNEL`` every scenario must produce *byte-identical* traces --
same events, same timestamps, same payloads, same order.  Two sweeps
enforce it:

* every committed corpus artifact (``tests/corpus/``) replayed with the
  exact evaluation parameters recorded in the artifact -- faulted
  schedules exercise cancellation, crash timers and recovery paths that
  clean runs never reach;
* a seed sweep across all four protocol schemes, so the FIFO-within-
  timestamp contract is pinned for each protocol's own scheduling mix.

Kernel selection happens inside :func:`repro.runtime.base.create_kernel`
at build time, so the tests toggle the ``REPRO_KERNEL`` environment
variable around each build.
"""

import glob
import os
from contextlib import contextmanager

import pytest

from repro import api
from repro.api.runner import load_generator_for
from repro.campaign.artifacts import Counterexample
from repro.core.types import reset_request_counter
from repro.workload.generator import ClosedLoop

CORPUS = sorted(glob.glob(os.path.join(os.path.dirname(__file__), "corpus", "*.json")))

SEEDS = range(20)
SCHEMES = {
    "etx": "etx://a3.d2.c2?workload=bank&placement=mod&xshard=0.5&seed={seed}",
    "2pc": "2pc://a1.d1.c1?workload=travel&seed={seed}",
    "pb": "pb://a2.d1.c1?workload=bank&timing=paper&seed={seed}",
    "baseline": "baseline://a1.d1.c1?workload=bank&timing=paper&seed={seed}",
}


@contextmanager
def _kernel(kind: str):
    previous = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = kind
    try:
        yield
    finally:
        if previous is None:
            del os.environ["REPRO_KERNEL"]
        else:
            os.environ["REPRO_KERNEL"] = previous


def _fingerprint(system) -> list[tuple]:
    """The full trace as comparable plain data (every field, repr'd)."""
    return [
        (event.time, event.category, event.process,
         tuple(sorted((key, repr(value)) for key, value in event.data.items())))
        for event in system.trace
    ]


def _scenario_trace(dsn: str, requests: int = 2) -> list[tuple]:
    reset_request_counter()
    system = api.build(api.Scenario.from_dsn(dsn))
    ClosedLoop().run(system, requests)
    return _fingerprint(system)


def _replay_trace(path: str) -> tuple[list[tuple], tuple[str, ...]]:
    """Replay a corpus artifact exactly as ``campaign.replay`` does.

    Same steps as :func:`repro.campaign.runner.evaluate_schedule`, but the
    system object is kept so the full trace can be fingerprinted alongside
    the observed violations.
    """
    artifact = Counterexample.load(path)
    scenario = artifact.scenario(os.path.dirname(os.path.abspath(path)))
    reset_request_counter()
    system = api.build(scenario)
    generator = load_generator_for(scenario, horizon_per_request=artifact.horizon)
    generator.run(system, artifact.requests)
    if artifact.settle > 0:
        system.run(until=system.sim.now + artifact.settle)
    report = system.check_spec(check_termination=True)
    return _fingerprint(system), tuple(str(v) for v in report.violations)


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(path) for path in CORPUS])
def test_corpus_replay_is_byte_identical_across_kernels(path):
    """Every committed artifact replays identically under both kernels."""
    with _kernel("heap"):
        heap_trace, heap_violations = _replay_trace(path)
    with _kernel("wheel"):
        wheel_trace, wheel_violations = _replay_trace(path)
    assert wheel_violations == heap_violations
    assert wheel_trace == heap_trace


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_seed_sweep_is_byte_identical_across_kernels(scheme):
    """20 seeds per protocol scheme: old and new kernel traces match."""
    template = SCHEMES[scheme]
    for seed in SEEDS:
        dsn = template.format(seed=seed)
        with _kernel("heap"):
            heap_trace = _scenario_trace(dsn)
        with _kernel("wheel"):
            wheel_trace = _scenario_trace(dsn)
        assert wheel_trace == heap_trace, f"trace divergence for {dsn}"


def test_corpus_is_present():
    """The equivalence suite must never silently run over an empty corpus."""
    assert len(CORPUS) >= 8
