"""Tests for the client protocol (Figure 2) against a scripted application server."""

import pytest

from repro.core import messages as msg
from repro.core.client import Client
from repro.core.timing import ProtocolTiming
from repro.core.types import ABORT, COMMIT, Decision, Request, Result
from repro.net.message import is_type
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Simulator


class ScriptedAppServer(Process):
    """Replies to client requests according to a scripted list of outcomes."""

    def __init__(self, sim, name, script):
        super().__init__(sim, name)
        self.script = list(script)  # outcome per incoming request ("commit"/"abort"/"ignore")
        self.seen = []

    def on_start(self, recovery):
        self.spawn(self._serve(), name="scripted")

    def _serve(self):
        while True:
            message = yield self.receive(is_type(msg.REQUEST))
            j = message["j"]
            request = message["request"]
            self.seen.append((message.sender, j))
            action = self.script.pop(0) if self.script else "commit"
            if action == "ignore":
                continue
            if action == "commit":
                decision = Decision(Result({"ok": True}, request.request_id, self.name), COMMIT)
            else:
                decision = Decision(None, ABORT)
            self.send(message.sender, msg.result_message(j, decision))


def build(script, timing=None, servers=("a1", "a2", "a3")):
    sim = Simulator(seed=0)
    network = Network(sim)
    app_servers = []
    for name in servers:
        server = ScriptedAppServer(sim, name, script if name == "a1" else ["commit"] * 10)
        network.register(server)
        server.start()
        app_servers.append(server)
    client = Client(sim, "c1", list(servers), timing=timing or ProtocolTiming())
    network.register(client)
    client.start()
    return sim, network, client, app_servers


def test_commit_on_first_try_delivers_result():
    sim, network, client, servers = build(script=["commit"])
    issued = client.issue(Request("pay", {"amount": 1}))
    sim.run_until(lambda: issued.delivered, until=100_000.0)
    assert issued.delivered
    assert issued.attempts == 1
    assert issued.aborted_results == []
    assert issued.result.value == {"ok": True}
    assert issued.latency is not None and issued.latency > 0


def test_aborted_result_triggers_retry_with_next_j():
    sim, network, client, servers = build(script=["abort", "abort", "commit"])
    issued = client.issue(Request("pay", {}))
    sim.run_until(lambda: issued.delivered, until=100_000.0)
    assert issued.delivered
    assert issued.attempts == 3
    assert issued.aborted_results == [1, 2]
    js = [j for _, j in servers[0].seen]
    assert js == [1, 2, 3]  # a fresh result identifier per attempt


def test_backoff_broadcasts_to_all_servers():
    timing = ProtocolTiming(client_backoff=50.0, client_rebroadcast=50.0)
    sim, network, client, servers = build(script=["ignore", "commit"], timing=timing)
    issued = client.issue(Request("pay", {}))
    sim.run_until(lambda: issued.delivered, until=100_000.0)
    assert issued.delivered
    broadcast_events = sim.trace.select("client_send", "c1", broadcast=True)
    assert len(broadcast_events) >= 1
    # The other servers saw the broadcast for the same j.
    assert any(j == 1 for _, j in servers[1].seen)


def test_client_delivers_exactly_once_even_with_duplicate_results():
    class DuplicatingServer(ScriptedAppServer):
        def _serve(self):
            while True:
                message = yield self.receive(is_type(msg.REQUEST))
                j = message["j"]
                request = message["request"]
                decision = Decision(Result({"ok": 1}, request.request_id, self.name), COMMIT)
                for _ in range(3):
                    self.send(message.sender, msg.result_message(j, decision))

    sim = Simulator(seed=0)
    network = Network(sim)
    server = DuplicatingServer(sim, "a1", [])
    network.register(server)
    server.start()
    client = Client(sim, "c1", ["a1"])
    network.register(client)
    client.start()
    issued = client.issue(Request("pay", {}))
    sim.run_until(lambda: issued.delivered, until=100_000.0)
    sim.run(until=sim.now + 1_000.0)
    assert issued.delivered
    assert sim.trace.count("client_deliver", "c1") == 1


def test_requests_are_processed_one_at_a_time_in_order():
    sim, network, client, servers = build(script=["commit"] * 5)
    first = client.issue(Request("op-1", {}))
    second = client.issue(Request("op-2", {}))
    assert client.pending_requests() == 2
    sim.run_until(lambda: second.delivered, until=200_000.0)
    assert first.delivered and second.delivered
    assert first.delivered_at <= second.delivered_at
    assert client.pending_requests() == 0
    assert [issued.request.operation for issued in client.completed] == ["op-1", "op-2"]


def test_result_identifiers_are_never_reused_across_requests():
    sim, network, client, servers = build(script=["abort", "commit", "commit"])
    first = client.issue(Request("op-1", {}))
    second = client.issue(Request("op-2", {}))
    sim.run_until(lambda: second.delivered, until=200_000.0)
    js = [j for _, j in servers[0].seen]
    assert js == sorted(js)
    assert len(js) == len(set(js))


def test_crashed_client_stops_and_does_not_deliver():
    timing = ProtocolTiming(client_backoff=100.0, client_rebroadcast=100.0)
    sim, network, client, servers = build(script=["ignore", "ignore", "ignore", "ignore"],
                                          timing=timing)
    issued = client.issue(Request("pay", {}))
    sim.schedule(30.0, client.crash)
    sim.run(until=5_000.0)
    assert not issued.delivered
    # A crashed client sends nothing further.
    sends_after_crash = [e for e in sim.trace.select("client_send", "c1") if e.time > 30.0]
    assert sends_after_crash == []


def test_client_requires_servers_and_valid_primary():
    sim = Simulator()
    with pytest.raises(ValueError):
        Client(sim, "c1", [])
    with pytest.raises(ValueError):
        Client(sim, "c1", ["a1"], default_primary="a9")
