"""Tests for the exclusive lock manager."""

import pytest

from repro.storage.locks import LockConflict, LockManager


def test_acquire_grants_free_lock():
    locks = LockManager()
    assert locks.acquire("t1", "x")
    assert locks.holder("x") == "t1"
    assert locks.locks_held("t1") == {"x"}


def test_reacquire_by_same_transaction_is_idempotent():
    locks = LockManager()
    assert locks.acquire("t1", "x")
    assert locks.acquire("t1", "x")
    assert locks.conflicts == 0


def test_conflicting_acquire_denied_and_counted():
    locks = LockManager()
    locks.acquire("t1", "x")
    assert not locks.acquire("t2", "x")
    assert locks.conflicts == 1
    assert locks.holder("x") == "t1"


def test_acquire_or_raise():
    locks = LockManager()
    locks.acquire("t1", "x")
    with pytest.raises(LockConflict) as exc_info:
        locks.acquire_or_raise("t2", "x")
    assert exc_info.value.holder == "t1"
    assert exc_info.value.requester == "t2"
    assert exc_info.value.key == "x"


def test_release_all_frees_locks_for_others():
    locks = LockManager()
    locks.acquire("t1", "x")
    locks.acquire("t1", "y")
    released = locks.release_all("t1")
    assert released == 2
    assert locks.acquire("t2", "x")
    assert locks.acquire("t2", "y")


def test_release_all_unknown_transaction_is_noop():
    locks = LockManager()
    assert locks.release_all("ghost") == 0


def test_clear_drops_everything():
    locks = LockManager()
    locks.acquire("t1", "x")
    locks.clear()
    assert locks.locked_keys() == set()
    assert locks.acquire("t2", "x")


def test_reinstall_restores_in_doubt_locks():
    locks = LockManager()
    locks.reinstall("t1", ["x", "y"])
    assert not locks.acquire("t2", "x")
    assert locks.locks_held("t1") == {"x", "y"}
