"""Tests for fault schedules and the random fault plan generator."""

import pytest

from repro.failure.detectors import EventuallyPerfectFailureDetector
from repro.failure.injection import FaultAction, FaultSchedule, RandomFaultPlan
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Simulator


def build(names):
    sim = Simulator()
    network = Network(sim)
    procs = {name: network.register(Process(sim, name)) for name in names}
    return sim, network, procs


def test_crash_and_recover_actions_apply():
    sim, network, procs = build(["a"])
    schedule = FaultSchedule().crash(10.0, "a").recover(20.0, "a")
    schedule.apply(sim, network)
    sim.run(until=15.0)
    assert not procs["a"].up
    sim.run(until=25.0)
    assert procs["a"].up


def test_crash_for_action_applies():
    sim, network, procs = build(["a"])
    FaultSchedule().crash_for(5.0, "a", downtime=10.0).apply(sim, network)
    sim.run(until=7.0)
    assert not procs["a"].up
    sim.run(until=20.0)
    assert procs["a"].up


def test_partition_and_heal_actions_apply():
    sim, network, procs = build(["a", "b"])
    schedule = FaultSchedule().partition(5.0, ["a"], ["b"]).heal(15.0)
    schedule.apply(sim, network)
    sim.run(until=10.0)
    assert network._partitioned("a", "b")
    sim.run(until=20.0)
    assert not network._partitioned("a", "b")


def test_false_suspicion_requires_detector():
    sim, network, procs = build(["a", "b"])
    schedule = FaultSchedule().false_suspicion(5.0, "a", "b", duration=10.0)
    with pytest.raises(ValueError):
        schedule.apply(sim, network, failure_detector=None)


def test_false_suspicion_applies_through_detector():
    sim, network, procs = build(["a", "b"])
    fd = EventuallyPerfectFailureDetector(network)
    FaultSchedule().false_suspicion(5.0, "a", "b", duration=10.0).apply(sim, network, fd)
    sim.run(until=8.0)
    assert fd.suspect("a", "b")
    sim.run(until=20.0)
    assert not fd.suspect("a", "b")


def test_invalid_fault_kind_rejected():
    with pytest.raises(ValueError):
        FaultAction(1.0, "explode", "a")


def test_negative_fault_time_rejected():
    with pytest.raises(ValueError):
        FaultAction(-1.0, "crash", "a")


def test_crash_for_requires_a_positive_numeric_downtime():
    with pytest.raises(ValueError, match="downtime"):
        FaultAction(1.0, "crash_for", "d1")  # missing entirely
    with pytest.raises(ValueError, match="downtime"):
        FaultAction(1.0, "crash_for", "d1", {"downtime": 0.0})
    with pytest.raises(ValueError, match="downtime"):
        FaultAction(1.0, "crash_for", "d1", {"downtime": "soon"})
    with pytest.raises(ValueError, match="downtime"):
        FaultAction(1.0, "crash_for", "d1", {"downtime": True})
    assert FaultAction(1.0, "crash_for", "d1", {"downtime": 5.0})


def test_partition_groups_validated_eagerly():
    with pytest.raises(ValueError, match="groups"):
        FaultAction(1.0, "partition")  # no groups at all
    with pytest.raises(ValueError, match="non-empty"):
        FaultAction(1.0, "partition", params={"groups": []})
    with pytest.raises(ValueError, match="non-empty"):
        FaultAction(1.0, "partition", params={"groups": [["a"], []]})
    with pytest.raises(ValueError, match="two partition groups"):
        FaultAction(1.0, "partition", params={"groups": [["a", "b"], ["b"]]})
    with pytest.raises(ValueError, match="two partition groups"):
        FaultAction(1.0, "partition", params={"groups": [["a", "a"]]})
    assert FaultAction(1.0, "partition", params={"groups": [["a"], ["b"]]})


def test_overlapping_partition_rejected_by_the_network_too():
    sim, network, procs = build(["a", "b"])
    with pytest.raises(ValueError, match="two partition groups"):
        network.partition(["a", "b"], ["b"])
    with pytest.raises(ValueError, match="unknown process"):
        network.partition(["a"], ["ghost"])


def test_false_suspicion_params_validated_eagerly():
    with pytest.raises(ValueError, match="observer"):
        FaultAction(1.0, "false_suspicion", "b", {"duration": 5.0})
    with pytest.raises(ValueError, match="must differ"):
        FaultAction(1.0, "false_suspicion", "b",
                    {"observer": "b", "duration": 5.0})
    with pytest.raises(ValueError, match="duration"):
        FaultAction(1.0, "false_suspicion", "b", {"observer": "a"})
    with pytest.raises(ValueError, match="duration"):
        FaultAction(1.0, "false_suspicion", "b",
                    {"observer": "a", "duration": -3.0})


def test_target_requirements_validated_eagerly():
    with pytest.raises(ValueError, match="needs a target"):
        FaultAction(1.0, "crash")
    with pytest.raises(ValueError, match="takes no target"):
        FaultAction(1.0, "heal", "a")
    with pytest.raises(ValueError, match="takes no target"):
        FaultAction(1.0, "partition", "a", {"groups": [["b"]]})


def test_unknown_params_rejected_eagerly():
    with pytest.raises(ValueError, match="does not take params"):
        FaultAction(1.0, "crash", "a", {"downtime": 5.0})
    with pytest.raises(ValueError, match="does not take params"):
        FaultAction(1.0, "crash_for", "d1", {"downtime": 5.0, "grace": 1.0})


def test_schedule_iterates_in_time_order():
    schedule = FaultSchedule().crash(30.0, "b").crash(10.0, "a").recover(20.0, "a")
    times = [action.time for action in schedule]
    assert times == sorted(times)


def test_describe_is_human_readable():
    schedule = (FaultSchedule()
                .crash(1.0, "a")
                .crash_for(2.0, "d", downtime=5.0)
                .partition(3.0, ["a"], ["b"])
                .false_suspicion(4.0, "x", "y", duration=2.0))
    lines = schedule.describe()
    assert len(lines) == 4
    assert any("crash a" in line for line in lines)
    assert any("falsely suspects" in line for line in lines)


def test_random_plan_is_deterministic_per_seed():
    plan = RandomFaultPlan(app_servers=["a1", "a2", "a3"], db_servers=["d1", "d2"])
    first = plan.generate(seed=7).describe()
    second = plan.generate(seed=7).describe()
    third = plan.generate(seed=8).describe()
    assert first == second
    assert first != third or len(first) == 0


def test_random_plan_respects_app_server_majority():
    plan = RandomFaultPlan(app_servers=["a1", "a2", "a3"], db_servers=[],
                           db_crash_probability=0.0, false_suspicion_probability=0.0)
    for seed in range(30):
        schedule = plan.generate(seed)
        app_crashes = [a for a in schedule.actions if a.kind == "crash" and a.target.startswith("a")]
        assert len(app_crashes) <= 1  # minority of 3


def test_random_plan_db_crashes_always_recover():
    plan = RandomFaultPlan(app_servers=["a1", "a2", "a3"], db_servers=["d1", "d2"],
                           db_crash_probability=1.0)
    schedule = plan.generate(seed=3)
    db_actions = [a for a in schedule.actions if a.target.startswith("d")]
    assert db_actions, "expected database faults with probability 1"
    assert all(a.kind == "crash_for" for a in db_actions)


def test_extend_merges_schedules():
    first = FaultSchedule().crash(1.0, "a")
    second = FaultSchedule().crash(2.0, "b")
    first.extend(second)
    assert len(first) == 2
