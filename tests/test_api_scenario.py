"""Tests for the scenario DSN parser/serializer of :mod:`repro.api`."""

import pytest

from repro import api
from repro.api.scenario import FaultSpec, Scenario, ScenarioError


# ------------------------------------------------------------- round-trip


ROUND_TRIP_SCENARIOS = [
    Scenario(),
    Scenario(protocol="2pc"),
    Scenario(protocol="pb", num_db_servers=2),
    Scenario(protocol="baseline", seed=9, loss_probability=0.25),
    Scenario(protocol="etx", num_app_servers=5, num_clients=2,
             failure_detector="heartbeat", register_mode="local",
             detection_delay=10.0, heartbeat_interval=2.5, heartbeat_timeout=40.0,
             client_app_latency=12.0, app_app_latency=1.0, app_db_latency=0.25,
             client_backoff=40.0, use_reliable_channels=True,
             workload="bank", timing="paper"),
    Scenario(protocol="etx", faults=(
        FaultSpec("crash", 244.0, "a1"),
        FaultSpec("recover", 500.0, "a1"),
        FaultSpec("crash_for", 600.0, "d1", downtime=800.0),
        FaultSpec("false_suspicion", 15.0, "a1", observer="a2", duration=200.0),
    )),
    Scenario(protocol="2pc", coordinator_log_latency=25.0, timing="paper"),
    Scenario(protocol="etx", num_clients=8, rate=50.0, seed=7),
    Scenario(protocol="etx", num_clients=4, rate=12.5, arrival="uniform"),
    Scenario(protocol="pb", num_clients=4, think_time=250.0),
    Scenario(protocol="etx", num_db_servers=4, num_clients=8, rate=6.0,
             seed=7, placement="hash", mailbox=8,
             faults=(FaultSpec("reshard", 5000.0, from_shards=4, to_shards=8),)),
    Scenario(protocol="etx", runtime="asyncio", host="localhost", port=7450,
             pace=0.05),
    Scenario(protocol="etx", num_db_servers=3, jobs=4, workers=2, rate=20.0),
]


@pytest.mark.parametrize("scenario", ROUND_TRIP_SCENARIOS,
                         ids=lambda s: s.to_dsn())
def test_dsn_round_trips(scenario):
    assert Scenario.from_dsn(scenario.to_dsn()) == scenario


def test_parse_the_issue_example():
    scenario = Scenario.from_dsn("etx://a3.d1.c1?fd=heartbeat&loss=0.01&seed=7")
    assert scenario.protocol == "etx"
    assert scenario.num_app_servers == 3
    assert scenario.num_db_servers == 1
    assert scenario.num_clients == 1
    assert scenario.failure_detector == "heartbeat"
    assert scenario.loss_probability == 0.01
    assert scenario.seed == 7


def test_to_dsn_omits_defaults():
    assert Scenario().to_dsn() == "etx://a3.d1.c1"
    assert Scenario(protocol="2pc").to_dsn() == "2pc://a1.d1.c1"


# ------------------------------------------------------------- defaulting


def test_omitted_host_components_use_protocol_defaults():
    assert Scenario.from_dsn("etx://").num_app_servers == 3
    assert Scenario.from_dsn("pb://").num_app_servers == 2
    assert Scenario.from_dsn("2pc://").num_app_servers == 1
    assert Scenario.from_dsn("baseline://").num_app_servers == 1
    scenario = Scenario.from_dsn("etx://d2")
    assert (scenario.num_app_servers, scenario.num_db_servers,
            scenario.num_clients) == (3, 2, 1)


def test_host_components_accept_any_order():
    scenario = Scenario.from_dsn("etx://c2.a5.d3")
    assert (scenario.num_app_servers, scenario.num_db_servers,
            scenario.num_clients) == (5, 3, 2)


def test_scheme_aliases_normalise_to_canonical_protocols():
    assert Scenario.from_dsn("ar://") == Scenario.from_dsn("etx://")
    assert Scenario.from_dsn("twopc://") == Scenario.from_dsn("2pc://")
    assert Scenario.from_dsn("primary-backup://") == Scenario.from_dsn("pb://")
    assert Scenario.from_dsn("ar://").to_dsn().startswith("etx://")


def test_omitted_query_parameters_fall_back_to_defaults():
    scenario = Scenario.from_dsn("etx://a3")
    assert scenario.seed == 0
    assert scenario.failure_detector == "oracle"
    assert scenario.register_mode == "consensus"
    assert scenario.workload == "default"
    assert scenario.timing == "default"
    assert scenario.faults == ()


# ----------------------------------------------------------------- errors


@pytest.mark.parametrize("dsn, fragment", [
    ("gopher://a3", "unknown scenario scheme"),
    ("etx", "missing '://'"),
    ("etx://x3", "bad host token"),
    ("etx://a3.a4", "given twice"),
    ("etx://a3?warp=9", "unknown DSN parameter"),
    ("etx://a3?seed=1&seed=2", "ambiguous"),
    ("etx://a3?seed=1&seed=1", "ambiguous"),
    ("etx://a3?seed=banana", "bad value for 'seed'"),
    ("etx://a3?fd=psychic", "unknown failure detector"),
    ("etx://a3?loss=1.5", "loss probability"),
    ("etx://a3?fault=crash", "malformed fault token"),
    ("etx://a3?fault=warp@1:a1", "unknown fault kind"),
    ("etx://a0", "at least one process"),
])
def test_clear_errors_on_bad_dsns(dsn, fragment):
    with pytest.raises(ScenarioError) as excinfo:
        Scenario.from_dsn(dsn)
    assert fragment in str(excinfo.value)


def test_scenario_error_is_a_value_error():
    assert issubclass(ScenarioError, ValueError)


# ----------------------------------------------------------------- faults


def test_fault_tokens_round_trip():
    for token in ("crash@244:a1", "recover@500:a1", "crash_for@600:d2:800",
                  "false_suspicion@15:a2:a1:200"):
        assert FaultSpec.from_token(token).to_token() == token


def test_fault_schedule_materialises_every_fault():
    scenario = Scenario.from_dsn(
        "etx://?fault=crash@244:a1&fault=crash_for@600:d1:800")
    schedule = scenario.fault_schedule()
    assert len(schedule) == 2
    kinds = sorted(action.kind for action in schedule)
    assert kinds == ["crash", "crash_for"]


# ------------------------------------------------------------ conveniences


def test_with_replaces_fields():
    scenario = Scenario.from_dsn("etx://a3?seed=1")
    assert scenario.with_(seed=9).seed == 9
    assert scenario.seed == 1


def test_tier_name_helpers_match_host():
    scenario = Scenario.from_dsn("etx://a2.d2.c2")
    assert scenario.app_server_names == ["a1", "a2"]
    assert scenario.db_server_names == ["d1", "d2"]
    assert scenario.client_names == ["c1", "c2"]


def test_api_reexports_the_scenario_surface():
    assert api.Scenario is Scenario
    assert api.FaultSpec is FaultSpec
    assert "etx" in api.known_schemes()


def test_faults_naming_unknown_processes_are_rejected():
    with pytest.raises(ScenarioError, match="unknown process 'a9'"):
        Scenario.from_dsn("etx://a3.d1.c1?fault=crash@10:a9")
    with pytest.raises(ScenarioError, match="unknown process 'a7'"):
        Scenario.from_dsn("etx://a3?fault=false_suspicion@15:a7:a1:200")
    with pytest.raises(ScenarioError, match="unknown process 'd9'"):
        Scenario.from_dsn("etx://a3.d1?fault=partition@10:a1~d9")
    # valid targets in any tier parse fine
    assert Scenario.from_dsn("etx://a3.d1.c1?fault=crash@10:c1")
    assert Scenario.from_dsn("etx://a3.d2?fault=crash_for@10:d2:50")


def test_scenario_defaults_track_the_config_dataclasses():
    from repro.baselines.common import BaselineConfig
    from repro.core.deployment import DeploymentConfig
    from repro.core.timing import ProtocolTiming

    scenario = Scenario()
    config = DeploymentConfig()
    assert scenario.detection_delay == config.detection_delay
    assert scenario.client_app_latency == config.client_app_latency
    assert scenario.app_app_latency == config.app_app_latency
    assert scenario.app_db_latency == config.app_db_latency
    assert scenario.coordinator_log_latency == BaselineConfig().coordinator_log_latency
    assert scenario.client_backoff == ProtocolTiming().client_backoff


# ------------------------------------------------------------ traffic shape


def test_parse_the_open_loop_issue_example():
    scenario = Scenario.from_dsn("etx://a3.d1.c8?rate=50&arrival=poisson&seed=7")
    assert scenario.num_clients == 8
    assert scenario.rate == 50.0
    assert scenario.arrival == "poisson"
    assert scenario.seed == 7
    assert Scenario.from_dsn(scenario.to_dsn()) == scenario


def test_clients_query_parameter_is_an_alternative_host_spelling():
    scenario = Scenario.from_dsn("etx://a3.d1?clients=4&think=100")
    assert scenario.num_clients == 4
    assert scenario.think_time == 100.0
    # Serialisation always uses the host token, never the parameter.
    assert ".c4" in scenario.to_dsn() and "clients=" not in scenario.to_dsn()
    assert Scenario.from_dsn(scenario.to_dsn()) == scenario


def test_clients_parameter_conflicting_with_host_is_ambiguous():
    with pytest.raises(ScenarioError, match="host token"):
        Scenario.from_dsn("etx://a3.d1.c8?clients=8")


def test_load_shape_validation():
    with pytest.raises(ScenarioError, match="non-negative"):
        Scenario(rate=-1.0)
    with pytest.raises(ScenarioError, match="arrival"):
        Scenario(rate=5.0, arrival="bursty")
    with pytest.raises(ScenarioError, match="think time"):
        Scenario(think_time=-2.0)
    with pytest.raises(ScenarioError, match="closed-loop"):
        Scenario(rate=5.0, think_time=10.0)
    assert Scenario(rate=5.0).load_shape == "open"
    assert Scenario().load_shape == "closed"


def test_describe_mentions_the_load_shape():
    assert "open loop @ 50/s (poisson)" in Scenario(rate=50.0).describe()
    assert "closed loop" in Scenario().describe()
    assert "think 250 ms" in Scenario(think_time=250.0).describe()


# ----------------------------------------------------------- runtime backend


def test_runtime_params_round_trip_through_the_dsn():
    scenario = Scenario.from_dsn(
        "etx://a3.d1.c4?runtime=asyncio&host=10.0.0.5&port=7000&pace=0.2")
    assert scenario.runtime == "asyncio"
    assert scenario.host == "10.0.0.5"
    assert scenario.port == 7000
    assert scenario.pace == 0.2
    assert Scenario.from_dsn(scenario.to_dsn()) == scenario
    spec = scenario.runtime_spec
    assert spec.kind == "asyncio" and spec.port == 7000 and not spec.distributed


def test_unknown_runtime_rejected_with_the_known_list():
    with pytest.raises(ScenarioError, match="unknown runtime 'trio'.*sim.*asyncio"):
        Scenario.from_dsn("etx://?runtime=trio")


def test_malformed_endpoints_rejected_at_parse_time():
    with pytest.raises(ScenarioError, match="bad value for 'port'"):
        Scenario.from_dsn("etx://?runtime=asyncio&port=http")
    with pytest.raises(ScenarioError, match=r"port must be in \[0, 65535\]"):
        Scenario.from_dsn("etx://?runtime=asyncio&port=70000")
    with pytest.raises(ScenarioError, match="host"):
        Scenario.from_dsn("etx://?runtime=asyncio&host=10.0.0.5:7000")
    with pytest.raises(ScenarioError, match="pace must be > 0"):
        Scenario.from_dsn("etx://?runtime=asyncio&pace=0")


def test_port_range_must_fit_every_process():
    # Process i listens on port+i, so the base port must leave room for the
    # whole deployment below 65535.
    with pytest.raises(ScenarioError, match="port range"):
        Scenario.from_dsn("etx://a3.d1.c4?runtime=asyncio&port=65530")


def test_endpoint_params_meaningless_under_the_simulator():
    for dsn in ("etx://?host=10.0.0.5", "etx://?port=7000", "etx://?pace=0.2"):
        with pytest.raises(ScenarioError, match="runtime=asyncio"):
            Scenario.from_dsn(dsn)


def test_host_env_and_port_file_resolve_indirectly(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_HOST", "192.168.7.1")
    port_file = tmp_path / "port"
    port_file.write_text("7100\n")
    scenario = Scenario.from_dsn(
        f"etx://?runtime=asyncio&host_env=REPRO_HOST&port_file={port_file}")
    assert scenario.host == "192.168.7.1"
    assert scenario.port == 7100
    # Serialisation is canonical: the resolved values, not the indirection.
    assert "host=192.168.7.1" in scenario.to_dsn()


def test_indirect_and_direct_endpoint_params_are_ambiguous(monkeypatch):
    monkeypatch.setenv("REPRO_HOST", "192.168.7.1")
    with pytest.raises(ScenarioError, match="ambiguous"):
        Scenario.from_dsn(
            "etx://?runtime=asyncio&host=10.0.0.5&host_env=REPRO_HOST")


def test_missing_indirect_sources_are_clear_errors(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_NO_SUCH_VAR", raising=False)
    with pytest.raises(ScenarioError, match="REPRO_NO_SUCH_VAR"):
        Scenario.from_dsn("etx://?runtime=asyncio&host_env=REPRO_NO_SUCH_VAR")
    with pytest.raises(ScenarioError, match="port_file"):
        Scenario.from_dsn(
            f"etx://?runtime=asyncio&port_file={tmp_path / 'absent'}")


# ------------------------------------------------- full-surface round-trip

from hypothesis import given, settings, strategies as st  # noqa: E402

# Fault instants: plain integers plus awkward floats -- including values big
# enough that repr() uses scientific notation, which must survive a URL
# (the serializer strips the '+' that urlencode would turn into a space).
_times = st.one_of(
    st.integers(min_value=0, max_value=10**6).map(float),
    st.floats(min_value=0.0, max_value=1e21, allow_nan=False,
              allow_infinity=False),
)
_positive_times = _times.filter(lambda t: t > 0)


@st.composite
def _fault_lists(draw, names, allow_reshard, num_db_servers):
    """0..6 fault atoms over the deployment's process names."""
    faults = []
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        kind = draw(st.sampled_from(
            ["crash", "recover", "crash_for", "false_suspicion",
             "partition", "heal"]))
        time = draw(_times)
        if kind in ("crash", "recover"):
            faults.append(FaultSpec(kind, time, draw(st.sampled_from(names))))
        elif kind == "crash_for":
            faults.append(FaultSpec(kind, time, draw(st.sampled_from(names)),
                                    downtime=draw(_positive_times)))
        elif kind == "false_suspicion":
            observer, target = draw(st.permutations(names).map(lambda p: p[:2]))
            faults.append(FaultSpec(kind, time, target, observer=observer,
                                    duration=draw(_positive_times)))
        elif kind == "partition":
            split = draw(st.integers(min_value=1, max_value=len(names) - 1))
            members = draw(st.permutations(names))
            faults.append(FaultSpec(kind, time, groups=(
                tuple(members[:split]), tuple(members[split:]))))
        else:
            faults.append(FaultSpec(kind, time))
    if allow_reshard and draw(st.booleans()):
        count = num_db_servers
        time = 0.0
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            grown = draw(st.integers(min_value=1, max_value=9)
                         .filter(lambda n: n != count))
            time += draw(_positive_times)
            faults.append(FaultSpec("reshard", time, from_shards=count,
                                    to_shards=grown))
            count = grown
    return tuple(faults)


@st.composite
def _scenarios(draw):
    protocol = draw(st.sampled_from(["etx", "2pc", "pb", "baseline"]))
    apps = draw(st.integers(min_value=1, max_value=5))
    dbs = draw(st.integers(min_value=1, max_value=4))
    clients = draw(st.integers(min_value=1, max_value=8))
    kwargs = {
        "protocol": protocol,
        "num_app_servers": apps,
        "num_db_servers": dbs,
        "num_clients": clients,
        "seed": draw(st.integers(min_value=0, max_value=2**31)),
        "mailbox": draw(st.integers(min_value=0, max_value=64)),
        "trace": draw(st.sampled_from(["full", "off"])
                      | st.integers(min_value=1, max_value=10**6)
                        .map(lambda n: f"ring:{n}")),
        "use_reliable_channels": draw(st.booleans()),
    }
    rate = draw(st.floats(min_value=0.0, max_value=5000.0, allow_nan=False))
    kwargs["rate"] = rate
    if rate > 0:
        kwargs["arrival"] = draw(st.sampled_from(["poisson", "uniform"]))
    else:
        kwargs["think_time"] = draw(st.floats(min_value=0.0, max_value=1e4,
                                              allow_nan=False))
    placement = draw(st.sampled_from(["replicate", "hash", "mod"]))
    kwargs["placement"] = placement
    if placement != "replicate":
        kwargs["xshard"] = draw(st.floats(min_value=0.0, max_value=1.0,
                                          allow_nan=False))
    runtime = draw(st.sampled_from(["sim", "asyncio"]))
    kwargs["runtime"] = runtime
    allow_reshard = placement != "replicate" and runtime == "sim" \
        and not kwargs["use_reliable_channels"]
    if runtime == "asyncio":
        kwargs["host"] = draw(st.sampled_from(
            ["", "localhost", "127.0.0.1", "db-0.example.com"]))
        kwargs["port"] = draw(st.sampled_from([0, 7450, 60000]))
        kwargs["pace"] = draw(st.floats(min_value=0.01, max_value=10.0,
                                        allow_nan=False))
    elif not kwargs["use_reliable_channels"] and draw(st.booleans()):
        jobs = draw(st.integers(min_value=0, max_value=apps + dbs))
        kwargs["jobs"] = jobs
        if jobs:
            kwargs["workers"] = draw(st.integers(min_value=0, max_value=jobs))
        allow_reshard = allow_reshard and jobs == 0
    names = ([f"a{i + 1}" for i in range(apps)]
             + [f"d{i + 1}" for i in range(dbs)]
             + [f"c{i + 1}" for i in range(clients)])
    kwargs["faults"] = draw(_fault_lists(names, allow_reshard, dbs))
    return Scenario(**kwargs)


@settings(max_examples=200, deadline=None)
@given(scenario=_scenarios())
def test_dsn_round_trips_over_the_full_parameter_surface(scenario):
    # Parse -> serialise -> parse must be lossless for every expressible
    # scenario, and the serialised form must be a fixed point: a DSN that
    # came out of to_dsn() re-serialises byte-identically (including the
    # faults= comma-list spill past the repeated-token threshold).
    dsn = scenario.to_dsn()
    reparsed = Scenario.from_dsn(dsn)
    assert reparsed == scenario
    assert reparsed.to_dsn() == dsn
