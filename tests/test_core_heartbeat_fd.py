"""End-to-end tests with the message-based (heartbeat) failure detector.

The protocol-level tests mostly use the oracle eventually-perfect detector for
speed and precise fault timing; these tests run the real heartbeat-based
detector to show the protocol does not depend on oracle knowledge of crashes.
"""

import pytest

from repro.core import DeploymentConfig, EtxDeployment, FD_HEARTBEAT
from repro.failure.injection import FaultSchedule
from repro.workload.bank import BankWorkload

BANK = BankWorkload(num_accounts=1, initial_balance=100)


def make_deployment(**overrides):
    defaults = dict(
        num_app_servers=3,
        num_db_servers=1,
        failure_detector=FD_HEARTBEAT,
        heartbeat_interval=5.0,
        heartbeat_timeout=20.0,
        business_logic=BANK.business_logic,
        initial_data=BANK.initial_data(),
    )
    defaults.update(overrides)
    return EtxDeployment(DeploymentConfig(**defaults))


def test_heartbeat_mode_failure_free_commit():
    deployment = make_deployment()
    issued = deployment.run_request(BANK.debit(0, 10))
    assert issued.delivered
    assert issued.attempts == 1
    assert deployment.db_servers["d1"].committed_value("account:0") == 90
    assert deployment.check_spec().ok
    # Heartbeats actually flowed.
    assert deployment.trace.count("msg_send", msg_type="Heartbeat") > 0


def test_heartbeat_mode_failover_after_primary_crash():
    deployment = make_deployment()
    deployment.apply_faults(FaultSchedule().crash(50.0, "a1"))
    issued = deployment.run_request(BANK.debit(0, 10), horizon=2_000_000.0)
    assert issued.delivered
    # The crash was detected through missed heartbeats, not an oracle.
    assert deployment.trace.count("fd_suspect", target="a1") >= 1
    assert deployment.db_servers["d1"].committed_value("account:0") == 90
    report = deployment.check_spec()
    assert report.ok, report.summary()


def test_heartbeat_mode_latency_unchanged_in_failure_free_runs():
    oracle = EtxDeployment(DeploymentConfig(
        business_logic=BANK.business_logic, initial_data=BANK.initial_data()))
    heartbeat = make_deployment()
    oracle_latency = oracle.run_request(BANK.debit(0, 10)).latency
    heartbeat_latency = heartbeat.run_request(BANK.debit(0, 10)).latency
    # The detector is off the request's critical path.
    assert heartbeat_latency == pytest.approx(oracle_latency, abs=1.0)


def test_invalid_failure_detector_mode_rejected():
    with pytest.raises(ValueError):
        DeploymentConfig(failure_detector="telepathy")
