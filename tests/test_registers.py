"""Tests for wo-register arrays (local reference and consensus-backed)."""

import pytest

from repro.consensus.synod import ConsensusHost
from repro.net.network import Network
from repro.registers.base import BOTTOM
from repro.registers.consensus_backed import ConsensusRegisterArray
from repro.registers.local import LocalRegisterArray, LocalRegisterStore
from repro.sim.process import Process
from repro.sim.scheduler import Simulator


# ----------------------------------------------------------------- local store


def test_local_register_initially_bottom():
    sim = Simulator()
    store = LocalRegisterStore(sim, "regA")
    view = LocalRegisterArray(store)
    assert view.read(1) is BOTTOM
    assert not view.is_written(1)
    assert view.known_indices() == []


def test_local_register_write_once_semantics():
    sim = Simulator()
    store = LocalRegisterStore(sim, "regA")
    first = LocalRegisterArray(store, owner="a1")
    second = LocalRegisterArray(store, owner="a2")
    f1 = first.write(1, "a1")
    f2 = second.write(1, "a2")
    sim.run()
    assert f1.value == "a1"
    assert f2.value == "a1"  # the second writer observes the first value
    assert first.read(1) == "a1"
    assert store.lost_writes == 1
    assert store.write_attempts == 2


def test_local_register_independent_indices():
    sim = Simulator()
    store = LocalRegisterStore(sim, "regD")
    view = LocalRegisterArray(store)
    view.write(1, ("r1", "commit"))
    view.write(2, ("r2", "abort"))
    sim.run()
    assert view.read(1) == ("r1", "commit")
    assert view.read(2) == ("r2", "abort")
    assert view.known_indices() == [1, 2]


def test_local_register_operation_latency():
    sim = Simulator()
    store = LocalRegisterStore(sim, "regA", operation_latency=4.5)
    view = LocalRegisterArray(store)
    future = view.write(1, "x")
    assert not future.resolved
    sim.run()
    assert future.resolved
    assert sim.now == pytest.approx(4.5)


def test_local_register_negative_latency_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        LocalRegisterStore(sim, "regA", operation_latency=-1.0)


def test_bottom_is_falsy_and_singleton():
    from repro.registers.base import _Bottom

    assert not BOTTOM
    assert _Bottom() is BOTTOM
    assert repr(BOTTOM) == "⊥"


# ------------------------------------------------------------ consensus-backed


def build_consensus_registers(n=3, seed=0):
    sim = Simulator(seed=seed)
    network = Network(sim)
    names = [f"a{i + 1}" for i in range(n)]
    arrays = {}
    for name in names:
        process = network.register(Process(sim, name))
        host = ConsensusHost(process, names, fast_path_owner="a1")
        host.install()
        arrays[name] = {
            "regA": ConsensusRegisterArray(host, "regA"),
            "regD": ConsensusRegisterArray(host, "regD"),
        }
    return sim, network, arrays


def test_consensus_register_write_and_read():
    sim, network, arrays = build_consensus_registers()
    future = arrays["a1"]["regA"].write(1, "a1")
    assert sim.run_until(lambda: future.resolved, until=1_000.0)
    assert future.value == "a1"
    sim.run(until=200.0)
    for name in arrays:
        assert arrays[name]["regA"].read(1) == "a1"


def test_consensus_register_write_once_across_servers():
    sim, network, arrays = build_consensus_registers(seed=3)
    f1 = arrays["a1"]["regD"].write(5, ("result-1", "commit"))
    f2 = arrays["a2"]["regD"].write(5, (None, "abort"))
    assert sim.run_until(lambda: f1.resolved and f2.resolved, until=5_000.0)
    assert f1.value == f2.value
    assert f1.value in {("result-1", "commit"), (None, "abort")}


def test_consensus_register_arrays_are_namespaced():
    sim, network, arrays = build_consensus_registers()
    arrays["a1"]["regA"].write(1, "owner")
    arrays["a1"]["regD"].write(1, ("res", "commit"))
    sim.run(until=1_000.0)
    assert arrays["a2"]["regA"].read(1) == "owner"
    assert arrays["a2"]["regD"].read(1) == ("res", "commit")
    assert arrays["a2"]["regA"].known_indices() == [1]
    assert arrays["a2"]["regD"].known_indices() == [1]


def test_consensus_register_unwritten_reads_bottom():
    sim, network, arrays = build_consensus_registers()
    assert arrays["a1"]["regA"].read(99) is BOTTOM


def test_consensus_register_refresh_after_partition():
    sim, network, arrays = build_consensus_registers()
    network.partition(["a1", "a2"], ["a3"])
    future = arrays["a1"]["regA"].write(1, "a1")
    sim.run_until(lambda: future.resolved, until=1_000.0)
    assert arrays["a3"]["regA"].read(1) is BOTTOM
    network.heal_partition()
    arrays["a3"]["regA"].refresh(1)
    sim.run(until=sim.now + 100.0)
    assert arrays["a3"]["regA"].read(1) == "a1"
