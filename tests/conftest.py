"""Shared pytest fixtures and helpers for the reproduction test suite."""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.sim.scheduler import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=42)


@pytest.fixture
def network(sim: Simulator) -> Network:
    """A lossless network bound to the ``sim`` fixture."""
    return Network(sim)
