"""One protocol semantics, two runtimes.

The generator-coroutine protocol code never names its runtime: it yields
waits to whatever :class:`repro.runtime.base.Kernel` the deployment chose.
These tests run the same behavioural scenarios against the deterministic
simulator and the wall-clock asyncio kernel and assert the *semantics*
agree -- wake-up ordering, receive matchers, timer cancellation on kill,
multicast fan-out.  Assertions about exact virtual timestamps only run
where they are meaningful, i.e. on kernels with ``realtime == False``; a
wall clock keeps moving between statements, so under asyncio the same
checks degrade to ordering and lower-bound facts.
"""

import pytest

from repro.net.message import Message, is_type
from repro.net.network import Network
from repro.runtime.base import RUNTIME_ASYNCIO, RUNTIME_SIM
from repro.sim.process import Process
from repro.sim.waits import TIMEOUT

# Virtual milliseconds are cheap on the simulator and cost
# ``delay * PACE / 1000`` wall seconds on asyncio: with PACE = 0.002 a
# 100 ms virtual sleep takes 0.2 ms of real time, so the whole module
# stays fast while still crossing the real event loop.
PACE = 0.002


@pytest.fixture(params=[RUNTIME_SIM, RUNTIME_ASYNCIO])
def kernel(request):
    if request.param == RUNTIME_SIM:
        from repro.sim.scheduler import Simulator

        kernel = Simulator(seed=7)
    else:
        from repro.runtime.loop import AsyncioKernel

        kernel = AsyncioKernel(seed=7, pace=PACE)
    yield kernel
    kernel.close()


def make_network(kernel) -> Network:
    from repro.net.latency import FixedLatency

    return Network(kernel, latency=FixedLatency(1.0))


def run_until(kernel, predicate, horizon: float = 60_000.0) -> bool:
    return kernel.run_until(predicate, until=horizon)


# ------------------------------------------------------------ sleep ordering


def test_sleeps_wake_in_delay_order(kernel):
    network = make_network(kernel)
    process = network.register(Process(kernel, "p"))
    woke: list[str] = []

    def sleeper(tag: str, delay: float):
        def thread():
            yield process.sleep(delay)
            woke.append(tag)

        return thread()

    # Spawn out of delay order on purpose: wake order must follow delays,
    # not spawn order.
    process.spawn(sleeper("slow", 120.0), name="slow")
    process.spawn(sleeper("fast", 20.0), name="fast")
    process.spawn(sleeper("mid", 60.0), name="mid")
    assert run_until(kernel, lambda: len(woke) == 3)
    assert woke == ["fast", "mid", "slow"]
    if not kernel.realtime:
        assert kernel.now == 120.0
    else:
        # A wall clock can overshoot but never undershoot a timer.
        assert kernel.now >= 120.0


def test_zero_delay_runs_before_any_timer(kernel):
    network = make_network(kernel)
    process = network.register(Process(kernel, "p"))
    order: list[str] = []

    def timed():
        # Generous delay: under a wall clock the time between the two
        # spawn() calls below is real, so the timer must dwarf it for the
        # ordering claim to be about semantics rather than racing epsilons.
        yield process.sleep(5_000.0)
        order.append("timer")

    def immediate():
        yield process.sleep(0.0)
        order.append("immediate")

    process.spawn(timed(), name="timed")
    process.spawn(immediate(), name="immediate")
    assert run_until(kernel, lambda: len(order) == 2)
    assert order == ["immediate", "timer"]


def test_same_timestamp_events_dispatch_in_schedule_order(kernel):
    """FIFO within a timestamp: both kernels fire equal-time events in the
    order they were scheduled, even when armed out of order relative to
    other delays."""
    order: list[str] = []
    kernel.schedule(50.0, lambda: order.append("same-a"))
    kernel.schedule(10.0, lambda: order.append("early"))
    kernel.schedule(50.0, lambda: order.append("same-b"))
    kernel.schedule(50.0, lambda: order.append("same-c"))
    assert run_until(kernel, lambda: len(order) == 4)
    assert order == ["early", "same-a", "same-b", "same-c"]


def test_cancel_inside_callback_stops_later_event(kernel):
    """A callback may cancel an event scheduled for the same timestamp after
    it; the cancelled callback must not run on either kernel.  Exercises the
    wheel kernel's cancelled-in-place skip inside an already-drained batch."""
    order: list[str] = []

    def killer():
        order.append("killer")
        assert victim.cancel() is True
        assert victim.cancel() is False  # second cancel: documented no-op

    # Killer first, victim second: FIFO puts the killer earlier in the
    # same-time batch, so the victim is cancelled after it was drained.
    kernel.schedule(40.0, killer)
    victim = kernel.schedule(40.0, lambda: order.append("victim"))
    kernel.schedule(200.0, lambda: order.append("tail"))
    assert run_until(kernel, lambda: "tail" in order)
    assert order == ["killer", "tail"]


# ---------------------------------------------------------- receive matchers


def test_receive_matchers_route_by_type(kernel):
    network = make_network(kernel)
    sender = network.register(Process(kernel, "s"))
    receiver = network.register(Process(kernel, "r"))
    seen: dict[str, list] = {"Ping": [], "Pong": []}

    def listener(msg_type: str):
        while True:
            message = yield receiver.receive(is_type(msg_type))
            seen[msg_type].append(message.payload["n"])

    receiver.spawn(listener("Ping"), name="ping-listener")
    receiver.spawn(listener("Pong"), name="pong-listener")

    def producer():
        sender.send("r", Message("Pong", payload={"n": 1}))
        sender.send("r", Message("Ping", payload={"n": 2}))
        sender.send("r", Message("Pong", payload={"n": 3}))
        yield sender.sleep(0.0)

    sender.spawn(producer(), name="producer")
    assert run_until(kernel, lambda: len(seen["Ping"]) + len(seen["Pong"]) == 3)
    # Each matcher saw exactly its own messages, in send order.
    assert seen == {"Ping": [2], "Pong": [1, 3]}


def test_receive_timeout_resumes_with_sentinel(kernel):
    network = make_network(kernel)
    process = network.register(Process(kernel, "p"))
    outcomes: list[object] = []

    def waiter():
        message = yield process.receive(is_type("Never"), timeout=30.0)
        outcomes.append(TIMEOUT if message is TIMEOUT else message.msg_type)

    process.spawn(waiter(), name="waiter")
    assert run_until(kernel, lambda: outcomes)
    assert outcomes == [TIMEOUT]
    if not kernel.realtime:
        assert kernel.now == 30.0


# ------------------------------------------------------ timer cancel on kill


def test_kill_cancels_pending_timer(kernel):
    network = make_network(kernel)
    process = network.register(Process(kernel, "p"))
    woke: list[str] = []

    def sleeper():
        yield process.sleep(40.0)
        woke.append("sleeper")  # must never run

    def bystander():
        yield process.sleep(100.0)
        woke.append("bystander")

    victim = process.spawn(sleeper(), name="victim")
    process.spawn(bystander(), name="bystander")
    victim.kill()
    assert not victim.alive
    assert run_until(kernel, lambda: woke)
    # The killed thread's timer fired into the void (or was descheduled);
    # only the bystander woke, well after the victim's deadline passed.
    assert woke == ["bystander"]


def test_crash_kills_threads_and_recovery_restarts(kernel):
    network = make_network(kernel)
    process = network.register(Process(kernel, "p"))
    woke: list[str] = []

    def sleeper():
        yield process.sleep(20.0)
        woke.append("pre-crash")  # must never run

    process.start()
    process.spawn(sleeper(), name="sleeper")
    process.crash()
    assert not process.up
    kernel.run(until=kernel.now + 60.0)
    assert woke == []
    process.recover()
    assert process.up


# ------------------------------------------------------------------ multicast


def test_multicast_reaches_every_destination_once(kernel):
    network = make_network(kernel)
    sender = network.register(Process(kernel, "s"))
    received: dict[str, int] = {}
    receivers = []
    for name in ("r1", "r2", "r3"):
        receiver = network.register(Process(kernel, name))
        receivers.append(receiver)

        def listener(receiver=receiver):
            while True:
                message = yield receiver.receive(is_type("Gossip"))
                received[receiver.name] = received.get(receiver.name, 0) + message["n"]

        receiver.spawn(listener(), name="listener")

    def producer():
        sender.multicast(["r1", "r2", "r3"], Message("Gossip", payload={"n": 1}))
        yield sender.sleep(0.0)

    sender.spawn(producer(), name="producer")
    assert run_until(kernel, lambda: len(received) == 3)
    assert received == {"r1": 1, "r2": 1, "r3": 1}
    assert network.stats.sent == 3
    assert network.stats.delivered == 3
