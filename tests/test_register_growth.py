"""Register-array growth: the garbage collection the paper explicitly defers.

Section 5: "we did not address the issue of cleaning the wo-register arrays".
The reproduction follows the paper, so every intermediate result permanently
occupies one cell in ``regA`` and one in ``regD``.  These tests document that
behaviour (it is a known limitation, not an accident) and check the growth is
exactly linear in the number of intermediate results -- no leak beyond it.
"""

from repro.core import DeploymentConfig, EtxDeployment
from repro.failure.injection import FaultSchedule
from repro.workload.bank import BankWorkload

BANK = BankWorkload(num_accounts=1, initial_balance=1_000)


def make_deployment(**overrides):
    defaults = dict(business_logic=BANK.business_logic, initial_data=BANK.initial_data())
    defaults.update(overrides)
    return EtxDeployment(DeploymentConfig(**defaults))


def register_cells(deployment):
    server = deployment.default_primary
    return (len(server.registers.reg_a.known_indices()),
            len(server.registers.reg_d.known_indices()))


def test_one_register_cell_pair_per_committed_result():
    deployment = make_deployment()
    for _ in range(4):
        issued = deployment.run_request(BANK.debit(0, 1))
        assert issued.delivered
    reg_a_cells, reg_d_cells = register_cells(deployment)
    assert reg_a_cells == 4
    assert reg_d_cells == 4


def test_aborted_intermediate_results_also_occupy_cells():
    deployment = make_deployment(detection_delay=10.0)
    deployment.apply_faults(FaultSchedule().crash(50.0, "a1"))
    issued = deployment.run_request(BANK.debit(0, 1))
    assert issued.delivered
    assert issued.aborted_results  # at least one aborted intermediate result
    survivor = deployment.app_servers["a2"]
    total_results = issued.attempts
    assert len(survivor.registers.reg_d.known_indices()) == total_results


def test_growth_is_linear_not_quadratic():
    deployment = make_deployment()
    sizes = []
    for count in (2, 4, 6):
        while len(deployment.client.completed) < count:
            deployment.run_request(BANK.debit(0, 1))
        sizes.append(register_cells(deployment)[0])
    assert sizes == [2, 4, 6]
