"""Cross-run determinism: no process-global counter leaks between runs.

Thread identifiers and network-message identifiers are scoped to the
:class:`~repro.sim.scheduler.Simulator` (and request identifiers restart per
run), so running the same scenario twice in one interpreter -- with arbitrary
other work in between -- produces byte-identical traces.  This is the
foundation of the sweep executor's serial == parallel contract.
"""

from repro import api
from repro.core.types import reset_request_counter
from repro.sim.process import Process
from repro.sim.scheduler import Simulator
from repro.workload.generator import ClosedLoop

DSN = "etx://a3.d2.c2?workload=bank&placement=mod&xshard=0.5&seed=13"
OTHER_DSN = "2pc://a1.d1.c1?workload=travel&seed=99"


def _trace_of(dsn: str, requests: int = 2) -> list[tuple]:
    reset_request_counter()
    system = api.build(api.Scenario.from_dsn(dsn))
    ClosedLoop().run(system, requests)
    return [
        (event.time, event.category, event.process,
         tuple(sorted((key, repr(value)) for key, value in event.data.items())))
        for event in system.trace
    ]


def test_back_to_back_runs_produce_identical_traces():
    first = _trace_of(DSN)
    # Perturb any interpreter-global state: run a different protocol stack,
    # spawn raw simulator threads, send raw messages.
    _trace_of(OTHER_DSN)
    second = _trace_of(DSN)
    assert first == second


def test_execution_order_does_not_matter():
    """A run's trace is independent of what ran before it in the process."""
    baseline = _trace_of(OTHER_DSN)
    for _ in range(3):
        _trace_of(DSN, requests=1)
    assert _trace_of(OTHER_DSN) == baseline


def test_thread_ids_are_scoped_to_the_simulator():
    def spin(process):
        yield process.sleep(1.0)

    first_sim = Simulator()
    first = Process(first_sim, "p")
    ids_first = [first.spawn(spin(first)).id for _ in range(3)]
    second_sim = Simulator()
    second = Process(second_sim, "q")
    ids_second = [second.spawn(spin(second)).id for _ in range(3)]
    assert ids_first == ids_second == [1, 2, 3]


def test_run_scenario_resets_request_ids():
    first = api.run_scenario(DSN, requests=1)
    second = api.run_scenario(DSN, requests=1)
    assert first.statistics.latencies == second.statistics.latencies
    assert first.summary() == second.summary()


# --------------------------------------------------------------- campaigns


CAMPAIGN_DSN = "baseline://a1.d1.c1?workload=bank&timing=paper&seed=3"


def _campaign_fingerprint(workers: int) -> tuple:
    """Everything a campaign produced, as comparable plain data."""
    from repro.campaign import CampaignBudget, run_campaign

    report = run_campaign(
        CAMPAIGN_DSN,
        budget=CampaignBudget(max_runs=12, population=6, stop_after=2,
                              shrink_checks=25, horizon=60_000.0,
                              settle=10_000.0),
        seed=5, workers=workers)
    return (
        report.runs,
        report.shrink_runs,
        [(g.index, g.size, g.best_score, g.violating_runs)
         for g in report.generations],
        [example.to_json() for example in report.counterexamples],
        [example.to_json() for example in report.certificates],
    )


def test_campaign_with_fixed_master_seed_is_byte_identical():
    """Two campaigns, same seed: same generations, shrunk schedules, artifacts.

    Interleaved unrelated runs must not perturb the search (same contract as
    back-to-back scenario runs above).
    """
    first = _campaign_fingerprint(workers=1)
    _trace_of(OTHER_DSN)  # perturb interpreter state between campaigns
    second = _campaign_fingerprint(workers=1)
    assert first == second


def test_campaign_is_deterministic_under_map_jobs_parallelism():
    """A parallel campaign produces byte-identical results to a serial one."""
    serial = _campaign_fingerprint(workers=1)
    parallel = _campaign_fingerprint(workers=2)
    assert serial == parallel
