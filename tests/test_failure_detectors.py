"""Tests for the failure detectors (perfect, eventually perfect, heartbeat)."""

import pytest

from repro.failure.detectors import (
    EventuallyPerfectFailureDetector,
    HeartbeatFailureDetector,
    PerfectFailureDetector,
)
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Simulator


def build(names, seed=0):
    sim = Simulator(seed=seed)
    network = Network(sim)
    procs = {name: network.register(Process(sim, name)) for name in names}
    return sim, network, procs


# --------------------------------------------------------------- perfect FD


def test_perfect_fd_tracks_ground_truth():
    sim, network, procs = build(["a", "b"])
    fd = PerfectFailureDetector(network)
    assert not fd.suspect("a", "b")
    procs["b"].crash()
    assert fd.suspect("a", "b")
    procs["b"].recover()
    assert not fd.suspect("a", "b")


def test_perfect_fd_suspects_unknown_process():
    sim, network, procs = build(["a"])
    fd = PerfectFailureDetector(network)
    assert fd.suspect("a", "ghost")


# ----------------------------------------------------- eventually perfect FD


def test_ep_fd_completeness_after_detection_delay():
    sim, network, procs = build(["a", "b"])
    fd = EventuallyPerfectFailureDetector(network, detection_delay=10.0)
    sim.schedule(5.0, procs["b"].crash)
    sim.run(until=7.0)
    assert not fd.suspect("a", "b")  # crash not yet detectable
    sim.run(until=20.0)
    assert fd.suspect("a", "b")


def test_ep_fd_accuracy_for_up_processes():
    sim, network, procs = build(["a", "b"])
    fd = EventuallyPerfectFailureDetector(network, detection_delay=0.0)
    sim.run(until=100.0)
    assert not fd.suspect("a", "b")
    assert not fd.suspect("b", "a")


def test_ep_fd_false_suspicion_window_is_transient():
    sim, network, procs = build(["a", "b"])
    fd = EventuallyPerfectFailureDetector(network, detection_delay=5.0)
    fd.inject_false_suspicion("a", "b", start=10.0, duration=20.0)
    sim.run(until=15.0)
    assert fd.suspect("a", "b")
    assert not fd.suspect("b", "a")  # only the named observer is fooled
    sim.run(until=40.0)
    assert not fd.suspect("a", "b")  # eventual accuracy


def test_ep_fd_recovery_clears_suspicion():
    sim, network, procs = build(["a", "b"])
    fd = EventuallyPerfectFailureDetector(network, detection_delay=1.0)
    sim.schedule(5.0, procs["b"].crash)
    sim.schedule(50.0, procs["b"].recover)
    sim.run(until=30.0)
    assert fd.suspect("a", "b")
    sim.run(until=60.0)
    assert not fd.suspect("a", "b")


def test_ep_fd_suspected_by_helper():
    sim, network, procs = build(["a", "b", "c"])
    fd = EventuallyPerfectFailureDetector(network, detection_delay=0.0)
    procs["c"].crash()
    assert fd.suspected_by("a", ["b", "c"]) == ["c"]


def test_ep_fd_negative_delay_rejected():
    sim, network, procs = build(["a"])
    with pytest.raises(ValueError):
        EventuallyPerfectFailureDetector(network, detection_delay=-1.0)


# ------------------------------------------------------------- heartbeat FD


def test_heartbeat_fd_no_suspicions_without_failures():
    sim, network, procs = build(["a", "b", "c"])
    fd = HeartbeatFailureDetector(network, ["a", "b", "c"],
                                  heartbeat_interval=5.0, initial_timeout=15.0)
    sim.run(until=200.0)
    for observer in ("a", "b", "c"):
        for target in ("a", "b", "c"):
            if observer != target:
                assert not fd.suspect(observer, target)


def test_heartbeat_fd_detects_crash():
    sim, network, procs = build(["a", "b", "c"])
    fd = HeartbeatFailureDetector(network, ["a", "b", "c"],
                                  heartbeat_interval=5.0, initial_timeout=15.0)
    sim.schedule(50.0, procs["c"].crash)
    sim.run(until=200.0)
    assert fd.suspect("a", "c")
    assert fd.suspect("b", "c")
    assert not fd.suspect("a", "b")


def test_heartbeat_fd_trusts_again_after_recovery_and_adapts_timeout():
    sim, network, procs = build(["a", "b"])
    fd = HeartbeatFailureDetector(network, ["a", "b"],
                                  heartbeat_interval=5.0, initial_timeout=12.0)
    sim.schedule(30.0, procs["b"].crash)
    sim.schedule(80.0, procs["b"].recover)
    sim.schedule(80.1, lambda: fd.reinstall("b"))
    sim.run(until=70.0)
    assert fd.suspect("a", "b")
    sim.run(until=200.0)
    assert not fd.suspect("a", "b")
    # The contradicted suspicion raised the timeout for b.
    assert fd._timeouts["a"]["b"] > 12.0
    assert sim.trace.count("fd_trust", "a", target="b") >= 1


def test_heartbeat_fd_invalid_parameters_rejected():
    sim, network, procs = build(["a", "b"])
    with pytest.raises(ValueError):
        HeartbeatFailureDetector(network, ["a", "b"], heartbeat_interval=0.0)
