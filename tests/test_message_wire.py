"""The wire codec round-trips every payload the protocols put on the network.

``Message.to_wire``/``from_wire`` is what the TCP transport frames, so its
fidelity is a correctness property: consensus keys instances by *tuples*,
registers use non-string dictionary keys, and the client/decision path ships
:mod:`repro.core.types` dataclasses.  A codec that silently collapsed any of
those (as plain JSON would) corrupts protocol state only under the real
runtime -- exactly the kind of divergence between backends these tests pin
down, along with the stability of the versioned format itself.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import COMMIT, Decision, Request, Result
from repro.net.message import WIRE_VERSION, Message, WireFormatError

# ----------------------------------------------------------------- strategies

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)

# Dictionary keys the registers/consensus layers actually use: strings,
# integers, and (nested) tuples such as consensus instance identifiers.
hashable_keys = st.one_of(
    st.text(max_size=10),
    st.integers(min_value=-1000, max_value=1000),
    st.tuples(st.text(max_size=5), st.integers(min_value=0, max_value=99)),
)


def containers(children):
    return st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
        st.dictionaries(hashable_keys, children, max_size=4),
    )


values = st.recursive(scalars, containers, max_leaves=12)

results = st.builds(
    Result,
    value=values,
    request_id=st.text(min_size=1, max_size=12),
    computed_by=st.sampled_from(["a1", "a2", "a3"]),
)

payload_values = st.one_of(
    values,
    st.builds(Request, operation=st.text(min_size=1, max_size=8), params=st.dictionaries(st.text(max_size=6), values, max_size=3)),
    results,
    st.builds(Decision, result=results, outcome=st.just(COMMIT)),
)

messages = st.builds(
    Message,
    msg_type=st.sampled_from(["Request", "Execute", "Consensus", "Decide"]),
    sender=st.sampled_from(["c1", "a1", "d1"]),
    destination=st.sampled_from(["c1", "a2", "d2"]),
    payload=st.dictionaries(st.text(min_size=1, max_size=10), payload_values, max_size=4),
)


# ----------------------------------------------------------------- round-trip


@settings(max_examples=200, deadline=None)
@given(messages)
def test_round_trip_preserves_everything(message):
    decoded = Message.from_wire(message.to_wire())
    assert decoded.msg_type == message.msg_type
    assert decoded.sender == message.sender
    assert decoded.destination == message.destination
    assert decoded.msg_id == message.msg_id
    assert decoded.send_time == message.send_time
    assert decoded.payload == message.payload
    # Equality alone would pass for a tuple->list collapse on the key side
    # of == in some containers; check the types explicitly too.
    assert _types_match(decoded.payload, message.payload)


def _types_match(a, b):
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        return all(
            any(_types_match(ka, kb) and _types_match(a[ka], b[kb])
                for kb in b) for ka in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(map(_types_match, a, b))
    return True


def test_consensus_instance_tuple_survives():
    # The consensus layer uses message payload tuples directly as dict keys;
    # a codec that returned lists would KeyError deep inside the protocol.
    message = Message("Consensus", sender="a1", destination="a2",
                      payload={"instance": ("c1", 4), "round": 2})
    decoded = Message.from_wire(message.to_wire())
    assert decoded.payload["instance"] == ("c1", 4)
    assert isinstance(decoded.payload["instance"], tuple)
    {decoded.payload["instance"]: "usable as a dict key"}


def test_core_dataclasses_round_trip():
    result = Result(value={"balance": 70}, request_id="req-9", computed_by="a2")
    message = Message("Decide", sender="a2", destination="d1",
                      payload={"decision": Decision(result=result, outcome=COMMIT),
                               "request": Request("pay", {"amount": (1, 2)})})
    decoded = Message.from_wire(message.to_wire())
    assert decoded.payload["decision"].result == result
    assert decoded.payload["decision"].committed
    request = decoded.payload["request"]
    assert isinstance(request, Request)
    assert request.params["amount"] == (1, 2)


# ------------------------------------------------------------------ stability


def test_wire_format_is_stable():
    # A golden frame: if this assertion ever fails the wire version must be
    # bumped, because already-deployed peers speak the old layout.
    message = Message("Execute", sender="a1", destination="d1",
                      payload={"j": ("c1", 1), "n": 3}, msg_id=7, send_time=1.5)
    assert message.to_wire() == (
        b'{"v":1,"t":"Execute","s":"a1","d":"d1","id":7,"ts":1.5,'
        b'"p":{"j":{"k":"tuple","v":["c1",1]},"n":3}}'
    )


def test_unknown_wire_version_rejected():
    frame = Message("Request", sender="c1", destination="a1").to_wire()
    bumped = frame.replace(b'{"v":1,', b'{"v":%d,' % (WIRE_VERSION + 1))
    with pytest.raises(WireFormatError, match="unsupported wire version"):
        Message.from_wire(bumped)


def test_garbage_frames_rejected():
    with pytest.raises(WireFormatError):
        Message.from_wire(b"\xff\xfe not json")
    with pytest.raises(WireFormatError):
        Message.from_wire(b'"just a string"')
    with pytest.raises(WireFormatError, match="missing field"):
        Message.from_wire(b'{"v":1,"t":"Request"}')


def test_unsupported_payloads_rejected():
    with pytest.raises(WireFormatError):
        Message("X", payload={"obj": object()}).to_wire()
    with pytest.raises(ValueError):
        # Non-finite floats have no JSON spelling; allow_nan=False makes the
        # sender fail loudly instead of emitting a frame peers cannot parse.
        Message("X", payload={"x": math.inf}).to_wire()


# -------------------------------------------------------------- copy-on-write


def test_copy_shares_payload_until_mutation():
    original = Message("Execute", sender="a1", payload={"j": ("c1", 1), "n": 0})
    sibling = original.copy()
    # The dict is shared for as long as nobody asks to mutate it...
    assert sibling.get("j") == ("c1", 1)
    assert sibling._payload is original._payload
    # ...and the ``payload`` property is the mutation point: it hands each
    # side a private dict, so writes never leak to the other copy.
    sibling.payload["n"] = 1
    assert original.get("n") == 0
    assert sibling.get("n") == 1
    assert sibling._payload is not original._payload


def test_multicast_sibling_mutation_is_isolated():
    template = Message("Decide", payload={"j": ("c2", 7), "outcome": "commit"})
    siblings = [template.copy() for _ in range(3)]
    siblings[0].payload["outcome"] = "abort"
    # One recipient's mutation must not reach the template or its peers.
    assert template.get("outcome") == "commit"
    assert all(s.get("outcome") == "commit" for s in siblings[1:])


def test_template_mutation_does_not_reach_copies():
    template = Message("Prepare", payload={"j": ("c3", 2)})
    sibling = template.copy()
    template.payload["extra"] = True
    assert sibling.get("extra") is None


def test_wire_round_trip_of_shared_payload():
    original = Message("Execute", sender="a1", destination="d1",
                       payload={"j": ("c1", 4), "v": [1, 2]}, msg_id=9,
                       send_time=3.5)
    sibling = original.copy()
    # Serialising a COW-shared message must neither unshare nor corrupt it.
    decoded = Message.from_wire(original.to_wire())
    assert decoded.payload == original._payload
    assert sibling._payload is original._payload
    # The decoded message owns a private dict: mutating it is invisible to
    # the sender-side pair.
    decoded.payload["v"].append(3)
    assert original.get("v") == [1, 2]
