"""Tests for the adversarial fault-campaign engine.

Covers the window observer (live phases off the event bus), the adversarial
plan (window targeting, assumption envelope, mutation operators), the
campaign runner (violations found and shrunk for the baselines, a clean pass
for etx) and artifact replay.
"""

import random

import pytest

from repro import api
from repro.campaign import (
    PHASE_DECIDING,
    PHASE_EXECUTING,
    PHASE_TERMINATING,
    PHASE_VOTING,
    AdversarialFaultPlan,
    CampaignBudget,
    Counterexample,
    FaultWindowObserver,
    atoms_to_specs,
    probe_windows,
    replay,
    run_campaign,
)
from repro.campaign.adversarial import ATOM_CRASH

ETX_DSN = "etx://a3.d1.c1?workload=bank&timing=paper&seed=3&detect=10"
TWOPC_DSN = "2pc://a1.d1.c1?workload=bank&timing=paper&seed=3"
BASELINE_DSN = "baseline://a1.d1.c1?workload=bank&timing=paper&seed=3"

SMALL = dict(max_runs=24, population=8, stop_after=2, shrink_checks=40,
             horizon=60_000.0, settle=10_000.0)


# ----------------------------------------------------------------- observer


def test_window_observer_tracks_phases_of_a_clean_run():
    system = api.build(api.Scenario.from_dsn(ETX_DSN))
    observer = FaultWindowObserver.attach(system.trace)
    issued = system.run_request(system.standard_request())
    assert issued.delivered
    system.run(until=system.sim.now + 5_000.0)
    phases = {t.phase for t in observer.transitions}
    assert {PHASE_EXECUTING, PHASE_VOTING, PHASE_DECIDING,
            PHASE_TERMINATING} <= phases
    times = [t.time for t in observer.transitions]
    assert times == sorted(times)
    # The terminated transaction's live phase has been retired.
    assert observer.in_flight == 0
    assert observer.completed >= 1
    observer.detach()


def test_window_observer_exposes_the_live_phase_mid_run():
    system = api.build(api.Scenario.from_dsn(ETX_DSN))
    observer = FaultWindowObserver.attach(system.trace)
    issued = system.issue(system.standard_request())
    request_id = issued.request.request_id
    # Run until the result is computed but (long) before cleanup finishes.
    system.sim.run_until(lambda: observer.phase_of(request_id) is not None,
                         until=10_000.0)
    assert observer.phase_of(request_id) == PHASE_EXECUTING
    system.sim.run_until(
        lambda: observer.phase_of(request_id) in (PHASE_DECIDING,
                                                  PHASE_TERMINATING, None),
        until=300_000.0)
    assert observer.completed or observer.in_flight


def test_window_observer_retires_protocols_without_terminate_events():
    """The one-phase baseline never emits as_terminate; delivery retires."""
    system = api.build(api.Scenario.from_dsn(BASELINE_DSN))
    observer = FaultWindowObserver.attach(system.trace)
    for _ in range(3):
        assert system.run_request(system.standard_request()).delivered
    system.run(until=system.sim.now + 5_000.0)
    assert observer.in_flight == 0
    assert observer.completed == 3


def test_probe_windows_returns_transitions_without_faults():
    windows = probe_windows(api.Scenario.from_dsn(TWOPC_DSN),
                            horizon=60_000.0, settle=5_000.0)
    assert windows
    assert {t.phase for t in windows} >= {PHASE_EXECUTING, PHASE_VOTING,
                                          PHASE_DECIDING}


# --------------------------------------------------------------------- plan


def make_plan(**overrides):
    scenario = api.Scenario.from_dsn(ETX_DSN)
    windows = probe_windows(scenario, horizon=60_000.0, settle=5_000.0)
    return AdversarialFaultPlan.for_scenario(scenario, anchors=windows,
                                             **overrides)


def test_plan_sampling_is_deterministic_per_seed():
    plan = make_plan()
    first = [plan.sample(random.Random(7)) for _ in range(5)]
    second = [plan.sample(random.Random(7)) for _ in range(5)]
    assert first == second


def test_plan_targets_the_recorded_windows():
    plan = make_plan()
    window_times = sorted(t.time for t in plan.anchors)
    rng = random.Random(1)
    for _ in range(50):
        for atom in plan.sample(rng):
            # Every sampled time sits within jitter of some recorded window.
            assert any(abs(atom.time - t) <= plan.jitter + 1e-9
                       or (t <= plan.jitter and atom.time == 0.0)
                       for t in window_times)


def test_plan_respects_the_crash_budget():
    plan = make_plan(max_atoms=6)
    assert plan.max_app_crashes == 1  # minority of 3
    rng = random.Random(2)
    for _ in range(100):
        atoms = plan.sample(rng)
        crashes = [a for a in atoms if a.kind == ATOM_CRASH]
        assert len(crashes) <= 1


def test_mutations_stay_inside_the_envelope():
    plan = make_plan(max_atoms=5)
    rng = random.Random(3)
    atoms = plan.sample(rng)
    for _ in range(200):
        atoms = plan.mutate(atoms, rng)
        assert atoms, "mutation must never produce an empty schedule"
        crashes = [a for a in atoms if a.kind == ATOM_CRASH]
        assert len(crashes) <= plan.max_app_crashes
        assert all(a.time >= 0 for a in atoms)


def test_partition_atoms_lower_to_partition_plus_heal():
    plan = make_plan()
    rng = random.Random(4)
    for _ in range(50):
        atoms = plan.sample(rng)
        specs = atoms_to_specs(atoms)
        partitions = sum(s.kind == "partition" for s in specs)
        heals = sum(s.kind == "heal" for s in specs)
        assert partitions == heals, "every partition window carries its heal"
        times = [s.time for s in specs]
        assert times == sorted(times)


def test_etx_crash_budget_is_the_exact_minority():
    """Crashing a majority of a small etx tier would fake a violation."""
    for app_servers, allowed in ((1, 0), (2, 0), (3, 1), (5, 2)):
        scenario = api.Scenario(protocol="etx", num_app_servers=app_servers)
        plan = AdversarialFaultPlan.for_scenario(scenario)
        assert plan.max_app_crashes == allowed
    # The unreplicated baselines get the same one-crash hardware budget --
    # exceeding their (zero) tolerance is the point of the comparison.
    for protocol in ("baseline", "2pc", "pb"):
        scenario = api.Scenario(protocol=protocol)
        assert AdversarialFaultPlan.for_scenario(scenario).max_app_crashes == 1


def test_campaign_budget_rejects_degenerate_values():
    with pytest.raises(ValueError, match="stop_after"):
        CampaignBudget(stop_after=0)
    with pytest.raises(ValueError, match="max_runs"):
        CampaignBudget(max_runs=0)
    with pytest.raises(ValueError, match="survivors"):
        CampaignBudget(survivors=0)


def test_artifacts_missing_required_keys_fail_cleanly():
    with pytest.raises(ValueError, match="missing required"):
        Counterexample.from_json({"schema": 1, "kind": "certificate"})
    with pytest.raises(ValueError, match="schema"):
        Counterexample.from_json({"kind": "certificate", "dsn": ETX_DSN})


def test_false_suspicion_only_offered_where_injectable():
    etx_plan = make_plan()
    assert etx_plan.allow_false_suspicion
    twopc = api.Scenario.from_dsn(TWOPC_DSN)
    twopc_plan = AdversarialFaultPlan.for_scenario(twopc)
    assert not twopc_plan.allow_false_suspicion


# ------------------------------------------------------------------ campaign


def test_campaign_finds_and_shrinks_a_baseline_violation():
    report = run_campaign(BASELINE_DSN, budget=CampaignBudget(**SMALL), seed=1)
    assert report.counterexamples, "the unreliable baseline must violate"
    for example in report.counterexamples:
        assert example.kind == "violation"
        assert example.violations
        assert len(example.scenario().fault_schedule()) <= 4
        assert replay(example).matches


def test_campaign_finds_the_2pc_blocking_counterexample():
    report = run_campaign(TWOPC_DSN, budget=CampaignBudget(**SMALL), seed=1)
    assert report.counterexamples
    signatures = {tuple(e.provenance["signature"])
                  for e in report.counterexamples}
    assert any("T.2" in signature for signature in signatures), \
        "a crashed coordinator must leave a database blocked in doubt (T.2)"
    for example in report.counterexamples:
        assert len(example.scenario().fault_schedule()) <= 4
        assert replay(example).matches


def test_campaign_certifies_etx_clean_within_the_same_budget():
    report = run_campaign(ETX_DSN, budget=CampaignBudget(**SMALL), seed=1)
    assert report.clean, (
        "etx violated under an assumption-respecting schedule: "
        + "; ".join(v for e in report.counterexamples for v in e.violations))
    assert report.runs == SMALL["max_runs"]
    assert report.certificates
    for certificate in report.certificates:
        assert certificate.kind == "certificate"
        assert not certificate.violations
        assert replay(certificate).matches


def test_campaign_artifacts_round_trip_through_json(tmp_path):
    report = run_campaign(BASELINE_DSN,
                          budget=CampaignBudget(max_runs=8, population=8,
                                                stop_after=1, shrink_checks=20,
                                                horizon=60_000.0,
                                                settle=10_000.0),
                          seed=1)
    example = report.counterexamples[0]
    path = str(tmp_path / "example.json")
    example.save(path)
    loaded = Counterexample.load(path)
    assert loaded == example
    assert replay(path).matches


def test_artifacts_with_relative_sidecars_replay_from_anywhere(tmp_path):
    from repro.campaign import write_sidecar

    scenario = api.Scenario.from_dsn(ETX_DSN).with_(
        faults=api.faults_from_text("partition@250:c1,heal@300"))
    out = tmp_path / "run1"
    out.mkdir()
    # A relative sidecar reference next to the artifact, the natural layout.
    dsn = write_sidecar(scenario, str(out / "schedule.faults.json"))
    relative_dsn = dsn.replace(str(out) + "/", "")
    assert "faults=@schedule.faults.json" in relative_dsn
    example = Counterexample(dsn=relative_dsn, kind="certificate",
                             horizon=60_000.0, settle=5_000.0)
    path = example.save(str(out / "artifact.json"))
    # Replaying by path works regardless of the process CWD.
    assert replay(path).matches


def test_artifact_violations_must_be_a_list_of_strings():
    with pytest.raises(ValueError, match="list of violation strings"):
        Counterexample.from_json({"schema": 1, "kind": "violation",
                                  "dsn": ETX_DSN,
                                  "violations": "[T.1] not a list"})


def test_certificate_artifacts_reject_recorded_violations():
    with pytest.raises(ValueError, match="zero violations"):
        Counterexample(dsn=ETX_DSN, kind="certificate", violations=("[T.1] x",))
    with pytest.raises(ValueError, match="expected violations"):
        Counterexample(dsn=ETX_DSN, kind="violation", violations=())
    with pytest.raises(ValueError, match="artifact kind"):
        Counterexample(dsn=ETX_DSN, kind="anecdote")
