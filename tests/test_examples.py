"""Smoke tests: every shipped example runs to completion on the public API."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize("example", [
    "quickstart.py",
    "travel_booking.py",
    "bank_failover.py",
])
def test_example_runs(example, capsys):
    path = EXAMPLES_DIR / example
    assert path.exists(), f"missing example {example}"
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), "examples should print something"


def test_reproduce_figure8_example_runs(capsys):
    # The heaviest example: run it with the module functions it wraps, but
    # still through its main() so the script itself is exercised.
    path = EXAMPLES_DIR / "reproduce_figure8.py"
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert "cost of rel." in output
    assert "Figure 7" in output
    assert "Figure 1" in output


def test_examples_directory_is_complete():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart.py", "travel_booking.py", "bank_failover.py",
            "reproduce_figure8.py"} <= names
