"""Unit tests for the network fabric: latency, loss, partitions, stats."""

import pytest

from repro.net.latency import ExponentialLatency, FixedLatency, PerLinkLatency, UniformLatency
from repro.net.message import Message, any_of, from_senders, is_type, is_type_with
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Simulator


def build(sim, names, **kwargs):
    network = Network(sim, **kwargs)
    procs = {name: network.register(Process(sim, name)) for name in names}
    return network, procs


def test_message_delivered_with_fixed_latency():
    sim = Simulator()
    network, procs = build(sim, ["a", "b"], latency=FixedLatency(4.0))
    procs["a"].send("b", Message("Ping"))
    sim.run()
    assert procs["b"].mailbox_size == 1
    assert sim.now == pytest.approx(4.0)


def test_duplicate_registration_rejected():
    sim = Simulator()
    network = Network(sim)
    network.register(Process(sim, "a"))
    with pytest.raises(ValueError):
        network.register(Process(sim, "a"))


def test_unknown_destination_rejected():
    sim = Simulator()
    network, procs = build(sim, ["a"])
    with pytest.raises(KeyError):
        procs["a"].send("ghost", Message("Ping"))


def test_loss_probability_drops_messages():
    sim = Simulator(seed=3)
    network, procs = build(sim, ["a", "b"], loss_probability=0.5)
    for _ in range(200):
        procs["a"].send("b", Message("Ping"))
    sim.run()
    assert network.stats.dropped_loss > 0
    assert network.stats.delivered > 0
    assert network.stats.dropped_loss + network.stats.delivered == 200


def test_invalid_loss_probability_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, loss_probability=1.5)


def test_partition_blocks_cross_group_traffic_and_heals():
    sim = Simulator()
    network, procs = build(sim, ["a", "b", "c"])
    network.partition(["a"], ["b", "c"])
    procs["a"].send("b", Message("Ping"))
    procs["b"].send("c", Message("Ping"))
    sim.run()
    assert network.stats.dropped_partition == 1
    assert network.stats.delivered == 1
    network.heal_partition()
    procs["a"].send("b", Message("Ping"))
    sim.run()
    assert network.stats.delivered == 2


def test_partition_with_unlisted_processes_forms_implicit_group():
    sim = Simulator()
    network, procs = build(sim, ["a", "b", "c"])
    network.partition(["a"])
    procs["b"].send("c", Message("Ping"))
    procs["c"].send("a", Message("Ping"))
    sim.run()
    assert network.stats.delivered == 1
    assert network.stats.dropped_partition == 1


def test_stats_by_type():
    sim = Simulator()
    network, procs = build(sim, ["a", "b"])
    procs["a"].send("b", Message("Prepare"))
    procs["a"].send("b", Message("Prepare"))
    procs["a"].send("b", Message("Decide"))
    sim.run()
    assert network.stats.by_type_sent == {"Prepare": 2, "Decide": 1}
    assert network.stats.by_type_delivered == {"Prepare": 2, "Decide": 1}


def test_trace_records_send_and_deliver():
    sim = Simulator()
    network, procs = build(sim, ["a", "b"])
    procs["a"].send("b", Message("Ping"))
    sim.run()
    assert sim.trace.count("msg_send", msg_type="Ping") == 1
    assert sim.trace.count("msg_deliver", msg_type="Ping") == 1


def test_messages_have_unique_ids():
    # Construction no longer burns a global counter: ids are stamped by the
    # network at send time from the sender's per-source stream.
    assert Message("A").msg_id == 0
    sim = Simulator()
    network, procs = build(sim, ["a", "b"])
    first, second = Message("A"), Message("A")
    procs["a"].send("b", first)
    procs["a"].send("b", second)
    sim.run()
    assert first.msg_id != 0 and second.msg_id != 0
    assert first.msg_id != second.msg_id


# ---------------------------------------------------------------- latency models


def test_uniform_latency_within_bounds():
    sim = Simulator(seed=1)
    model = UniformLatency(2.0, 6.0)
    rng = sim.rng("x")
    samples = [model.sample(rng, "a", "b") for _ in range(100)]
    assert all(2.0 <= s <= 6.0 for s in samples)
    assert model.mean() == pytest.approx(4.0)


def test_exponential_latency_has_base_floor():
    sim = Simulator(seed=1)
    model = ExponentialLatency(base=3.0, tail_mean=1.0)
    rng = sim.rng("x")
    samples = [model.sample(rng, "a", "b") for _ in range(100)]
    assert all(s >= 3.0 for s in samples)
    assert model.mean() == pytest.approx(4.0)


def test_per_link_latency_overrides():
    model = PerLinkLatency(FixedLatency(1.0))
    model.set_link("client", "app", FixedLatency(10.0))
    rng = Simulator().rng("x")
    assert model.sample(rng, "client", "app") == 10.0
    assert model.sample(rng, "app", "db") == 1.0


def test_invalid_latency_parameters_rejected():
    with pytest.raises(ValueError):
        FixedLatency(-1.0)
    with pytest.raises(ValueError):
        UniformLatency(5.0, 1.0)
    with pytest.raises(ValueError):
        ExponentialLatency(-1.0, 1.0)


# ---------------------------------------------------------------- matchers


def test_is_type_matcher():
    matcher = is_type("Vote", "Decide")
    assert matcher(Message("Vote"))
    assert matcher(Message("Decide"))
    assert not matcher(Message("Prepare"))
    assert not matcher("not a message")


def test_is_type_with_matcher():
    matcher = is_type_with("Vote", j=3)
    assert matcher(Message("Vote", payload={"j": 3}))
    assert not matcher(Message("Vote", payload={"j": 4}))
    assert not matcher(Message("Decide", payload={"j": 3}))


def test_any_of_and_from_senders_matchers():
    matcher = any_of(is_type("A"), is_type("B"))
    assert matcher(Message("A")) and matcher(Message("B"))
    assert not matcher(Message("C"))
    sender_matcher = from_senders(["s1"], is_type("A"))
    good = Message("A")
    good.sender = "s1"
    bad = Message("A")
    bad.sender = "s2"
    assert sender_matcher(good)
    assert not sender_matcher(bad)


def test_message_payload_access():
    message = Message("Vote", payload={"j": 1, "vote": "yes"})
    assert message["j"] == 1
    assert message.get("vote") == "yes"
    assert message.get("missing", "default") == "default"


def test_partial_heal_frees_named_processes_and_keeps_the_rest_split():
    sim = Simulator()
    network, procs = build(sim, ["a", "b", "c", "d"])
    network.partition(["a"], ["b", "c"])  # implicit third group: {d}
    network.heal_partition("a")
    procs["a"].send("b", Message("Ping"))   # healed: talks to everyone
    procs["b"].send("a", Message("Ping"))   # symmetrically
    procs["b"].send("d", Message("Ping"))   # survivors stay split from d
    sim.run()
    assert network.stats.delivered == 2
    assert network.stats.dropped_partition == 1


def test_partial_heal_collapsing_to_one_group_heals_fully():
    sim = Simulator()
    network, procs = build(sim, ["a", "b", "c"])
    network.partition(["a"], ["b"])  # implicit third group: {c}
    network.heal_partition("a", "c")
    # Only {b} would remain: one group cannot split anything.
    for source, destination in [("a", "b"), ("b", "c"), ("c", "a")]:
        procs[source].send(destination, Message("Ping"))
    sim.run()
    assert network.stats.delivered == 3
    assert network.stats.dropped_partition == 0


def test_partition_partial_heal_repartition_sequence_stays_consistent():
    # The PR-8 regression: a partial heal used to leave stale group state
    # behind that a later partition() composed badly with.
    sim = Simulator()
    network, procs = build(sim, ["a", "b", "c", "d"])
    network.partition(["a", "b"], ["c", "d"])
    network.heal_partition("b")
    procs["b"].send("c", Message("Ping"))   # healed process reaches everyone
    sim.run()
    assert network.stats.delivered == 1
    network.partition(["a", "c"], ["b", "d"])  # a fresh, different layout
    procs["a"].send("c", Message("Ping"))   # same group now
    procs["a"].send("b", Message("Ping"))   # cross-group again
    procs["b"].send("d", Message("Ping"))   # same group now
    sim.run()
    assert network.stats.delivered == 3
    assert network.stats.dropped_partition == 1
    network.heal_partition()
    procs["a"].send("b", Message("Ping"))
    sim.run()
    assert network.stats.delivered == 4


def test_heal_rejects_unknown_process_names():
    sim = Simulator()
    network, procs = build(sim, ["a", "b"])
    network.partition(["a"])
    with pytest.raises(ValueError):
        network.heal_partition("ghost")
