"""Property-based tests for the ``faults=`` DSN grammar.

Any :class:`FaultSchedule` -- including partitions with multi-group layouts
-- must round-trip through its DSN text form, and unknown fault kinds must be
rejected at parse time, not mid-run.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.api.scenario import faults_from_text, faults_to_text
from repro.campaign import write_sidecar
from repro.failure.injection import FaultSchedule

PROCESSES = ["a1", "a2", "a3", "d1", "d2", "c1"]

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False)
durations = st.floats(min_value=0.001, max_value=1e5, allow_nan=False,
                      allow_infinity=False)
names = st.sampled_from(PROCESSES)


@st.composite
def partition_layouts(draw):
    """Disjoint, non-empty groups over a shuffled subset of the processes."""
    members = draw(st.permutations(PROCESSES))
    size = draw(st.integers(min_value=1, max_value=len(PROCESSES)))
    members = members[:size]
    group_count = draw(st.integers(min_value=1, max_value=size))
    cut_points = sorted(draw(st.sets(st.integers(min_value=1, max_value=size - 1),
                                     max_size=group_count - 1))) if size > 1 else []
    groups, start = [], 0
    for cut in cut_points + [size]:
        groups.append(list(members[start:cut]))
        start = cut
    return [g for g in groups if g]


@st.composite
def fault_schedules(draw):
    schedule = FaultSchedule()
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        kind = draw(st.sampled_from(
            ["crash", "recover", "crash_for", "partition", "heal",
             "false_suspicion"]))
        time = draw(times)
        if kind == "crash":
            schedule.crash(time, draw(names))
        elif kind == "recover":
            schedule.recover(time, draw(names))
        elif kind == "crash_for":
            schedule.crash_for(time, draw(names), downtime=draw(durations))
        elif kind == "partition":
            schedule.partition(time, *draw(partition_layouts()))
        elif kind == "heal":
            schedule.heal(time)
        else:
            observer, target = draw(st.permutations(PROCESSES))[:2]
            schedule.false_suspicion(time, observer, target,
                                     duration=draw(durations))
    return schedule


@settings(max_examples=80, deadline=None)
@given(fault_schedules())
def test_fault_schedules_round_trip_through_faults_text(schedule):
    specs = api.schedule_to_specs(schedule)
    text = faults_to_text(specs)
    assert faults_from_text(text) == specs
    rebuilt = FaultSchedule()
    for spec in specs:
        spec.add_to(rebuilt)
    assert rebuilt == schedule


@settings(max_examples=40, deadline=None)
@given(fault_schedules())
def test_fault_schedules_round_trip_through_a_full_dsn(schedule):
    scenario = api.Scenario(protocol="etx", num_app_servers=3,
                            num_db_servers=2,
                            faults=api.schedule_to_specs(schedule))
    parsed = api.Scenario.from_dsn(scenario.to_dsn())
    assert parsed == scenario
    assert parsed.fault_schedule() == schedule


@settings(max_examples=30, deadline=None)
@given(st.lists(partition_layouts(), min_size=1, max_size=3), times)
def test_multi_group_partition_layouts_round_trip(layouts, time):
    schedule = FaultSchedule()
    for offset, layout in enumerate(layouts):
        schedule.partition(time + offset, *layout)
    specs = api.schedule_to_specs(schedule)
    assert faults_from_text(faults_to_text(specs)) == specs
    assert all(spec.kind == "partition" for spec in specs)
    assert [list(map(list, spec.groups)) for spec in specs] == \
        [a.params["groups"] for a in schedule]


@pytest.mark.parametrize("token", [
    "explode@5:a1",                 # unknown kind
    "meteor@1:d1:7",                # unknown kind with args
    "crash@5",                      # missing target
    "crash_for@5:d1",               # missing downtime
    "crash_for@5:d1:zero",          # non-numeric downtime
    "partition@5",                  # missing layout
    "heal@5:a1",                    # heal takes no target
    "partition@5:a1|a1",            # overlapping groups
    "false_suspicion@5:a1:a1:10",   # observer == target
    "crash@-1:a1",                  # negative time
    "crash@soon:a1",                # non-numeric time
])
def test_malformed_fault_tokens_are_rejected_at_parse_time(token):
    with pytest.raises(api.ScenarioError):
        faults_from_text(token)


def test_unknown_kind_rejected_inside_a_faults_list():
    with pytest.raises(api.ScenarioError, match="explode"):
        faults_from_text("crash@5:a1,explode@9:a2")


def test_fault_and_faults_params_are_mutually_exclusive():
    with pytest.raises(api.ScenarioError, match="one form"):
        api.Scenario.from_dsn("etx://a3?fault=crash@5:a1&faults=crash@9:a2")


def test_long_schedules_serialise_as_one_faults_param():
    specs = faults_from_text(
        "crash@5:a1,crash_for@10:d1:20,partition@30:a2~d1,heal@60")
    scenario = api.Scenario(protocol="etx", num_app_servers=3, faults=specs)
    dsn = scenario.to_dsn()
    assert "faults=" in dsn and "fault=" not in dsn.replace("faults=", "")
    assert api.Scenario.from_dsn(dsn) == scenario


def test_fault_sidecar_round_trips(tmp_path):
    specs = faults_from_text(
        "crash@5:a1,partition@30:a2~d1|a3,heal@60,crash_for@80:d1:25")
    scenario = api.Scenario(protocol="etx", num_app_servers=3,
                            num_db_servers=1, faults=specs)
    path = str(tmp_path / "schedule.faults.json")
    dsn = write_sidecar(scenario, path)
    assert f"faults=@{path}" in dsn
    parsed = api.Scenario.from_dsn(dsn)
    assert parsed == scenario


def test_sidecar_paths_with_query_hostile_characters_round_trip(tmp_path):
    specs = faults_from_text("crash@5:a1,heal@60")
    scenario = api.Scenario(protocol="etx", num_app_servers=3, faults=specs)
    path = str(tmp_path / "run+v1 &2.faults.json")
    dsn = write_sidecar(scenario, path)
    assert api.Scenario.from_dsn(dsn) == scenario


def test_missing_or_malformed_sidecars_fail_cleanly(tmp_path):
    with pytest.raises(api.ScenarioError, match="cannot read"):
        api.Scenario.from_dsn(f"etx://a3?faults=@{tmp_path}/absent.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{\"faults\": \"not-a-list\"}")
    with pytest.raises(api.ScenarioError, match="list of fault"):
        api.Scenario.from_dsn(f"etx://a3?faults=@{bad}")


def test_from_action_rejects_kinds_without_a_dsn_form():
    from repro.api.scenario import FaultSpec
    from repro.failure.injection import FaultAction

    action = FaultAction(5.0, "crash", "a1")
    object.__setattr__(action, "kind", "quake")  # simulate a future kind
    with pytest.raises(ValueError, match="no DSN form"):
        FaultSpec.from_action(action)


def test_inapplicable_scalar_fields_are_rejected_not_dropped():
    from repro.api.scenario import FaultSpec

    with pytest.raises(api.ScenarioError, match="takes no downtime"):
        FaultSpec("crash", 100.0, "a1", downtime=500.0)  # meant crash_for
    with pytest.raises(api.ScenarioError, match="takes no observer"):
        FaultSpec("crash_for", 100.0, "d1", downtime=5.0, observer="a2")
    with pytest.raises(api.ScenarioError, match="takes no duration"):
        FaultSpec("heal", 100.0, duration=40.0)
