"""Tests for the single-decree consensus among application servers."""

import pytest

from repro.consensus.synod import ConsensusHost
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Simulator


def build_group(n=3, seed=0, fast_path_owner="a1", loss=0.0):
    """Create ``n`` application-server processes each hosting consensus."""
    sim = Simulator(seed=seed)
    network = Network(sim, loss_probability=loss)
    names = [f"a{i + 1}" for i in range(n)]
    hosts = {}
    for name in names:
        process = network.register(Process(sim, name))
        host = ConsensusHost(process, names, fast_path_owner=fast_path_owner)
        host.install()
        hosts[name] = host
    return sim, network, hosts


def decided_everywhere(hosts, instance):
    values = {name: host.decision(instance) for name, host in hosts.items()
              if host.process.up}
    return values


def test_single_proposer_fast_path_decides_own_value():
    sim, network, hosts = build_group()
    future = hosts["a1"].propose("x", "value-from-a1")
    assert sim.run_until(lambda: future.resolved, until=1_000.0)
    assert future.value == "value-from-a1"
    sim.run(until=200.0)
    values = decided_everywhere(hosts, "x")
    assert set(values.values()) == {"value-from-a1"}


def test_fast_path_takes_one_round_trip():
    sim, network, hosts = build_group()
    future = hosts["a1"].propose("x", 42)
    sim.run_until(lambda: future.resolved, until=1_000.0)
    # Decision at the proposer after accept (1 hop) + accepted (1 hop): one
    # round trip of the 1.75 ms default link latency.
    assert sim.now == pytest.approx(3.5, abs=0.2)


def test_non_owner_proposer_uses_prepare_phase_and_decides():
    sim, network, hosts = build_group()
    future = hosts["a2"].propose("y", "from-a2")
    assert sim.run_until(lambda: future.resolved, until=2_000.0)
    assert future.value == "from-a2"


def test_concurrent_proposals_agree_on_single_value():
    sim, network, hosts = build_group(seed=5)
    futures = {name: host.propose("j1", f"value-{name}") for name, host in hosts.items()}
    assert sim.run_until(lambda: all(f.resolved for f in futures.values()), until=5_000.0)
    decided = {f.value for f in futures.values()}
    assert len(decided) == 1
    assert decided.pop() in {f"value-{name}" for name in hosts}


def test_agreement_holds_across_many_seeds():
    for seed in range(12):
        sim, network, hosts = build_group(seed=seed)
        futures = {name: host.propose("k", f"v-{name}") for name, host in hosts.items()}
        assert sim.run_until(lambda: all(f.resolved for f in futures.values()),
                             until=10_000.0), f"no decision for seed {seed}"
        assert len({f.value for f in futures.values()}) == 1, f"disagreement for seed {seed}"


def test_decision_propagates_to_non_proposers():
    sim, network, hosts = build_group()
    hosts["a1"].propose("z", "decided-value")
    sim.run(until=500.0)
    for name, host in hosts.items():
        assert host.decision("z") == "decided-value", f"{name} did not learn the decision"


def test_proposing_after_decision_returns_decision():
    sim, network, hosts = build_group()
    hosts["a1"].propose("w", "first")
    sim.run(until=500.0)
    late = hosts["a3"].propose("w", "second")
    sim.run(until=600.0)
    assert late.resolved
    assert late.value == "first"


def test_decision_survives_minority_crash():
    sim, network, hosts = build_group()
    hosts["a3"].process.crash()
    future = hosts["a1"].propose("inst", "v")
    assert sim.run_until(lambda: future.resolved, until=5_000.0)
    assert future.value == "v"


def test_no_decision_without_majority():
    sim, network, hosts = build_group()
    hosts["a2"].process.crash()
    hosts["a3"].process.crash()
    future = hosts["a1"].propose("inst", "v")
    sim.run(until=2_000.0)
    assert not future.resolved


def test_value_written_by_crashed_primary_is_preserved_if_accepted_by_majority():
    # a1 decides (its accept reached a majority) then crashes before a2 proposes
    # a different value; a2 must learn a1's value, never overwrite it.
    sim, network, hosts = build_group()
    first = hosts["a1"].propose("inst", "primary-value")
    sim.run_until(lambda: first.resolved, until=1_000.0)
    hosts["a1"].process.crash()
    second = hosts["a2"].propose("inst", "cleaner-value")
    assert sim.run_until(lambda: second.resolved, until=5_000.0)
    assert second.value == "primary-value"


def test_fast_path_rejected_after_higher_ballot_promise():
    # a2 runs a full prepare/accept round first; a1's later ballot-0 fast path
    # must not overwrite the decided value.
    sim, network, hosts = build_group()
    second = hosts["a2"].propose("inst", "from-a2")
    sim.run_until(lambda: second.resolved, until=5_000.0)
    first = hosts["a1"].propose("inst", "from-a1")
    assert sim.run_until(lambda: first.resolved, until=5_000.0)
    assert first.value == "from-a2"


def test_consensus_over_lossy_network_with_reliable_retries():
    sim, network, hosts = build_group(seed=9, loss=0.2)
    futures = [hosts["a1"].propose("inst", "v1"), hosts["a2"].propose("inst", "v2")]
    assert sim.run_until(lambda: all(f.resolved for f in futures), until=50_000.0)
    assert len({f.value for f in futures}) == 1


def test_request_decision_lets_laggard_learn():
    sim, network, hosts = build_group()
    # a3 is partitioned away while the decision is made.
    network.partition(["a1", "a2"], ["a3"])
    future = hosts["a1"].propose("inst", "v")
    sim.run_until(lambda: future.resolved, until=5_000.0)
    assert hosts["a3"].decision("inst") is None
    network.heal_partition()
    hosts["a3"].request_decision("inst")
    sim.run(until=sim.now + 100.0)
    assert hosts["a3"].decision("inst") == "v"


def test_quorum_size():
    for n, expected in [(1, 1), (3, 2), (5, 3), (7, 4)]:
        sim, network, hosts = build_group(n=n)
        assert list(hosts.values())[0].quorum == expected


def test_host_must_be_member():
    sim = Simulator()
    network = Network(sim)
    process = network.register(Process(sim, "outsider"))
    with pytest.raises(ValueError):
        ConsensusHost(process, ["a1", "a2"])


def test_decided_instances_listing():
    sim, network, hosts = build_group()
    hosts["a1"].propose(("regA", 1), "a1")
    hosts["a1"].propose(("regD", 1), ("result", "commit"))
    sim.run(until=1_000.0)
    assert set(hosts["a2"].decided_instances()) == {("regA", 1), ("regD", 1)}
