"""Property-based end-to-end tests: the specification holds under random faults.

These are the heaviest tests in the suite: each example builds a complete
deployment, injects a randomly generated (but assumption-respecting) fault
schedule, runs one request to completion and checks every e-Transaction
property over the trace.
"""

from hypothesis import given, settings, strategies as st

from repro.core import DeploymentConfig, EtxDeployment, Request
from repro.core.deployment import REGISTER_CONSENSUS, REGISTER_LOCAL
from repro.failure.injection import RandomFaultPlan


def bank_logic(request):
    def logic(view):
        balance = view.read("balance", 0)
        view.write("balance", balance - request.params.get("amount", 0))
        return {"new_balance": balance - request.params.get("amount", 0)}

    return logic


def run_scenario(seed: int, register_mode: str, num_db_servers: int,
                 with_client_crash: bool) -> None:
    config = DeploymentConfig(
        num_app_servers=3,
        num_db_servers=num_db_servers,
        register_mode=register_mode,
        seed=seed,
        detection_delay=10.0,
        business_logic=bank_logic,
        initial_data={"balance": 100},
    )
    deployment = EtxDeployment(config)
    plan = RandomFaultPlan(
        app_servers=config.app_server_names,
        db_servers=config.db_server_names,
        client="c1" if with_client_crash else None,
        horizon=1_500.0,
        client_crash_probability=0.5 if with_client_crash else 0.0,
    )
    deployment.apply_faults(plan.generate(seed))
    issued = deployment.issue(Request("pay", {"amount": 30}))
    deployment.sim.run_until(lambda: issued.delivered, until=300_000.0)
    # Give in-flight terminations time to drain so T.2 can be judged fairly.
    deployment.run(until=deployment.sim.now + 20_000.0)

    client_crashed = deployment.trace.count("crash", "c1") > 0
    report = deployment.check_spec(check_termination=not client_crashed)
    assert report.ok, f"seed={seed}: {report.summary()}"
    if not client_crashed:
        assert issued.delivered, f"seed={seed}: request never delivered"
    # Exactly-once effect on the data: the balance is 70 after delivery, and
    # either 70 or 100 (at-most-once) if the client crashed mid-request.
    for db in deployment.db_servers.values():
        balance = db.committed_value("balance")
        if issued.delivered:
            assert balance == 70, f"seed={seed}: balance {balance} after a delivered request"
        else:
            assert balance in (70, 100), f"seed={seed}: balance {balance}"


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_spec_holds_under_random_faults_consensus_registers(seed):
    run_scenario(seed, REGISTER_CONSENSUS, num_db_servers=1, with_client_crash=False)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_spec_holds_under_random_faults_two_databases(seed):
    run_scenario(seed, REGISTER_CONSENSUS, num_db_servers=2, with_client_crash=False)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_spec_holds_under_random_faults_local_registers(seed):
    run_scenario(seed, REGISTER_LOCAL, num_db_servers=1, with_client_crash=False)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_at_most_once_when_client_may_crash(seed):
    run_scenario(seed, REGISTER_CONSENSUS, num_db_servers=1, with_client_crash=True)
