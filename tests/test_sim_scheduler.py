"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.errors import InvalidScheduling, SimulationLimitExceeded
from repro.sim.scheduler import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(9.0, lambda: fired.append("c"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == pytest.approx(9.0)


def test_same_time_events_fire_in_fifo_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(3.0, lambda label=label: fired.append(label))
    sim.run()
    assert fired == list("abcde")


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(InvalidScheduling):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(InvalidScheduling):
        sim.schedule_at(5.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    sim.run()
    assert fired == []


def test_cancel_returns_true_exactly_once():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    assert handle.cancel() is True
    assert handle.cancel() is False  # second cancel: documented no-op
    sim.run()


def test_cancel_after_fire_is_a_documented_noop():
    """Cancelling an event that already fired returns False, changes nothing.

    This is the contract a stale handle relies on: an ack racing the
    retransmit timer it is trying to stop may arrive after the timer fired,
    and the late ``cancel()`` must neither error nor perturb counters.
    """
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    sim.run()
    assert fired == ["x"]
    before = sim.pending_events
    assert handle.cancel() is False
    assert handle.cancel() is False
    assert not handle.cancelled  # it fired; it was never cancelled
    assert sim.pending_events == before


def test_cancel_inside_same_timestamp_batch():
    """A callback can cancel a later event in its own same-time batch."""
    sim = Simulator()
    fired = []

    def killer():
        fired.append("killer")
        assert victim.cancel() is True

    # Killer first, victim second: FIFO puts the killer earlier in the
    # same-time batch, so the victim is cancelled after the batch (early,
    # killer, victim, tail) was already drained and sorted.
    sim.schedule(4.0, lambda: fired.append("early"))
    sim.schedule(5.0, killer)
    victim = sim.schedule(5.0, lambda: fired.append("victim"))
    sim.schedule(5.0, lambda: fired.append("tail"))
    sim.run()
    assert fired == ["early", "killer", "tail"]


def test_pending_events_counts_live_events_only():
    sim = Simulator()
    handles = [sim.schedule(float(i % 7), lambda: None) for i in range(20)]
    assert sim.pending_events == 20
    for handle in handles[:5]:
        handle.cancel()
    assert sim.pending_events == 15
    sim.run()
    assert sim.pending_events == 0


def test_far_future_events_fire_and_cancel():
    """Events beyond the wheel span (far heap) fire in order; cancel works."""
    sim = Simulator()
    fired = []
    sim.schedule(100_000.0, lambda: fired.append("far"))
    doomed = [sim.schedule(50_000.0 + i, lambda: fired.append("doomed"))
              for i in range(8)]
    sim.schedule(1.0, lambda: fired.append("near"))
    for handle in doomed:
        assert handle.cancel() is True
    sim.run()
    assert fired == ["near", "far"]
    assert sim.now == pytest.approx(100_000.0)


def test_run_until_time_horizon_stops_clock_at_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("early"))
    sim.schedule(50.0, lambda: fired.append("late"))
    sim.run(until=10.0)
    assert fired == ["early"]
    assert sim.now == pytest.approx(10.0)
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_predicate():
    sim = Simulator()
    counter = {"n": 0}

    def tick():
        counter["n"] += 1
        sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    satisfied = sim.run_until(lambda: counter["n"] >= 5, until=100.0)
    assert satisfied
    assert counter["n"] == 5


def test_run_until_predicate_not_satisfied_within_horizon():
    sim = Simulator()
    satisfied = sim.run_until(lambda: False, until=10.0)
    assert not satisfied


def test_event_callbacks_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == pytest.approx(2.0)


def test_max_events_guard_detects_livelock():
    sim = Simulator()

    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationLimitExceeded):
        sim.run(max_events=1000)


def test_rng_streams_are_deterministic_and_independent():
    sim_a = Simulator(seed=7)
    sim_b = Simulator(seed=7)
    draws_a = [sim_a.rng("net").random() for _ in range(5)]
    draws_b = [sim_b.rng("net").random() for _ in range(5)]
    assert draws_a == draws_b
    # A different stream does not replay the same sequence.
    other = [sim_a.rng("fd").random() for _ in range(5)]
    assert other != draws_a


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(5.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [pytest.approx(5.0)]


def test_stream_seed_is_hash_randomisation_free():
    import zlib

    from repro.sim.scheduler import stream_seed

    # The derivation must not involve str.__hash__ (salted by
    # PYTHONHASHSEED); CRC-32 of "<seed>\x00<stream>" is the contract.
    assert stream_seed(7, "net") == zlib.crc32(b"7\x00net") & 0xFFFFFFFF
    assert stream_seed(7, "net") != stream_seed(7, "fd")
    assert stream_seed(7, "net") != stream_seed(8, "net")


def test_rng_streams_identical_across_interpreter_invocations():
    """Regression: per-stream seeds used hash((seed, stream)), which is
    salted by PYTHONHASHSEED -- 'deterministic' runs differed between
    interpreter invocations.  Spawn subprocesses with different hash seeds
    and require identical draws."""
    import os
    import subprocess
    import sys

    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    code = ("from repro.sim.scheduler import Simulator; "
            "s = Simulator(seed=7); "
            "print([s.rng('net').random() for _ in range(3)], "
            "s.rng('load.arrivals').randint(0, 10**9))")
    outputs = set()
    for hash_seed in ("0", "1", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run([sys.executable, "-c", code], env=env,
                                   capture_output=True, text=True, timeout=60)
        assert completed.returncode == 0, completed.stderr
        outputs.add(completed.stdout)
    assert len(outputs) == 1, f"draws depend on PYTHONHASHSEED: {outputs}"
