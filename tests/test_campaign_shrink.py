"""Shrinker unit tests on synthetic oracles: minimality, idempotence,
determinism -- no simulator involved."""

from dataclasses import replace

from repro.campaign import FaultAtom, shrink_sequence
from repro.campaign.adversarial import ATOM_PARTITION
from repro.campaign.shrink import (
    atom_reducers,
    reduce_atom_duration,
    reduce_atom_time,
    reduce_partition_groups,
)


def subset_oracle(required):
    """Interesting iff every required item survives."""
    return lambda candidate: set(required) <= set(candidate)


def test_shrink_removes_everything_not_required():
    result = shrink_sequence(range(1, 9), subset_oracle({2, 5}))
    assert result.items == (2, 5)
    assert not result.exhausted


def test_shrink_result_is_one_minimal():
    items = list(range(12))
    oracle = subset_oracle({0, 3, 7, 11})
    result = shrink_sequence(items, oracle)
    for index in range(len(result.items)):
        candidate = result.items[:index] + result.items[index + 1:]
        assert not oracle(candidate), "a single item was still removable"


def test_shrink_is_idempotent():
    oracle = subset_oracle({"b", "e"})
    first = shrink_sequence(list("abcdefg"), oracle)
    second = shrink_sequence(first.items, oracle)
    assert second.items == first.items


def test_shrink_is_deterministic_across_repeated_runs():
    oracle = lambda candidate: sum(candidate) >= 10  # noqa: E731
    runs = [shrink_sequence([1, 9, 2, 8, 3, 7], oracle) for _ in range(3)]
    assert len({run.items for run in runs}) == 1
    assert len({run.checks for run in runs}) == 1


def test_shrink_respects_the_check_budget():
    calls = []

    def oracle(candidate):
        calls.append(candidate)
        return True

    result = shrink_sequence(range(40), oracle, max_checks=3)
    assert len(calls) == 3
    assert result.exhausted
    assert result.checks == 3
    # Every accepted transformation was verified, so the result is still
    # interesting -- just not minimal (40 -> 20 -> 10 -> 5 within budget).
    assert len(result.items) == 5


def test_shrink_with_reducers_simplifies_surviving_items():
    # Items are numbers; the oracle needs one item >= 100; the reducer rounds
    # down to the nearest hundred.
    def reducer(value):
        if value % 100:
            yield value - value % 100

    def oracle(candidate):
        return any(v >= 100 for v in candidate)

    result = shrink_sequence([37, 250, 14], oracle, reducers=(reducer,))
    assert result.items == (200,)


def test_shrink_reducer_idempotence_on_atoms():
    atoms = (FaultAtom("crash", 213.7731, "a1"),
             FaultAtom("crash_for", 467.21, "d1", duration=133.33))

    def oracle(candidate):
        return any(a.kind == "crash_for" for a in candidate)

    first = shrink_sequence(atoms, oracle, reducers=atom_reducers())
    second = shrink_sequence(first.items, oracle, reducers=atom_reducers())
    assert first.items == second.items
    (survivor,) = first.items
    assert survivor.kind == "crash_for"
    assert survivor.time == round(survivor.time, 0)  # time landed on a grid


def test_time_reducer_rounds_to_coarsest_grids():
    atom = FaultAtom("crash", 234.567, "a1")
    times = [variant.time for variant in reduce_atom_time(atom)]
    assert times == [200.0, 230.0, 235.0]


def test_duration_reducer_only_proposes_strictly_shorter():
    atom = FaultAtom("crash_for", 10.0, "d1", duration=50.0)
    for variant in reduce_atom_duration(atom):
        assert 0 < variant.duration < 50.0
    # A 1 ms duration is the floor: nothing shorter is proposed.
    floor = FaultAtom("crash_for", 10.0, "d1", duration=1.0)
    assert list(reduce_atom_duration(floor)) == []


def test_partition_group_reducer_merges_and_drops():
    atom = FaultAtom(ATOM_PARTITION, 5.0, duration=40.0,
                     groups=(("a1",), ("a2",), ("d1",)))
    variants = list(reduce_partition_groups(atom))
    assert replace(atom, groups=(("a1",), ("a2", "d1"))) in variants
    assert replace(atom, groups=(("a1",), ("a2",))) in variants
    single = FaultAtom(ATOM_PARTITION, 5.0, duration=40.0, groups=(("a1",),))
    assert list(reduce_partition_groups(single)) == []
