"""Online/post-hoc equivalence: SpecMonitor verdicts == check_run verdicts.

The online :class:`~repro.core.spec.SpecMonitor` (fed by the trace event bus)
must reproduce the post-hoc :func:`~repro.core.spec.check_run` verdict
byte-for-byte -- the same checked properties, the same violations, in the
same order -- across the random-fault-plan property corpus of all four
protocols.  The runs here keep ``full`` retention so the post-hoc reference
can be computed at all; the violating runs (the unreliable baseline under
database faults) are the interesting half of the corpus, because they
exercise the violation-reporting paths, not just the clean ones.
"""

from hypothesis import given, settings, strategies as st

from repro import api
from repro.core import DeploymentConfig, EtxDeployment, Request
from repro.core.deployment import REGISTER_CONSENSUS, REGISTER_LOCAL
from repro.core.spec import check_run
from repro.failure.injection import RandomFaultPlan
from repro.workload.generator import ClosedLoop


def assert_reports_identical(deployment, check_termination: bool, context: str) -> None:
    """The monitor's report must equal the post-hoc reference exactly."""
    online = deployment.spec_monitor.report(check_termination=check_termination)
    reference = check_run(deployment.trace, deployment.config.db_server_names,
                          deployment.config.client_names,
                          check_termination=check_termination)
    assert online.checked_properties == reference.checked_properties, context
    online_violations = [(v.property_name, v.description) for v in online.violations]
    reference_violations = [(v.property_name, v.description)
                            for v in reference.violations]
    assert online_violations == reference_violations, (
        f"{context}: online monitor and post-hoc checker disagree\n"
        f"online:   {online_violations}\npost-hoc: {reference_violations}")


# ------------------------------------------------------------------- etx


def run_etx_scenario(seed: int, register_mode: str, num_db_servers: int,
                     with_client_crash: bool) -> None:
    config = DeploymentConfig(
        num_app_servers=3,
        num_db_servers=num_db_servers,
        register_mode=register_mode,
        seed=seed,
        detection_delay=10.0,
        initial_data={"balance": 100},
    )
    deployment = EtxDeployment(config)
    plan = RandomFaultPlan(
        app_servers=config.app_server_names,
        db_servers=config.db_server_names,
        client="c1" if with_client_crash else None,
        horizon=1_500.0,
        client_crash_probability=0.5 if with_client_crash else 0.0,
    )
    deployment.apply_faults(plan.generate(seed))
    issued = deployment.issue(Request("pay", {"amount": 30}))
    deployment.sim.run_until(lambda: issued.delivered, until=300_000.0)
    deployment.run(until=deployment.sim.now + 20_000.0)
    client_crashed = deployment.trace.count("crash", "c1") > 0
    assert_reports_identical(deployment, check_termination=not client_crashed,
                             context=f"etx seed={seed}")
    # The other termination flag must agree too (a mid-run report is legal).
    assert_reports_identical(deployment, check_termination=client_crashed,
                             context=f"etx seed={seed} (flipped termination)")


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_etx_consensus_registers_verdicts_identical(seed):
    run_etx_scenario(seed, REGISTER_CONSENSUS, num_db_servers=1,
                     with_client_crash=False)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_etx_two_databases_verdicts_identical(seed):
    run_etx_scenario(seed, REGISTER_CONSENSUS, num_db_servers=2,
                     with_client_crash=False)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_etx_local_registers_verdicts_identical(seed):
    run_etx_scenario(seed, REGISTER_LOCAL, num_db_servers=1,
                     with_client_crash=False)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_etx_client_crash_verdicts_identical(seed):
    run_etx_scenario(seed, REGISTER_CONSENSUS, num_db_servers=1,
                     with_client_crash=True)


# --------------------------------------------------- sharded, all protocols


def _scenario(protocol: str, num_db_servers: int, seed: int) -> api.Scenario:
    return api.Scenario(protocol=protocol, num_db_servers=num_db_servers,
                        num_clients=2, seed=seed, workload="bank",
                        placement="hash", xshard=0.4)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_etx_mixed_shard_traffic_verdicts_identical(seed):
    scenario = _scenario("etx", 2, seed)
    system = api.build(scenario)
    plan = RandomFaultPlan(app_servers=scenario.app_server_names,
                           db_servers=scenario.db_server_names,
                           horizon=1_500.0)
    system.apply_faults(plan.generate(seed))
    ClosedLoop().run(system, 4)
    system.run(until=system.sim.now + 20_000.0)
    assert_reports_identical(system.deployment, check_termination=True,
                             context=f"etx sharded seed={seed}")


@given(seed=st.integers(min_value=0, max_value=10_000),
       protocol=st.sampled_from(["baseline", "2pc", "pb"]))
@settings(max_examples=15, deadline=None)
def test_baselines_under_db_faults_verdicts_identical(seed, protocol):
    """The half-committed cross-shard runs of the unreliable baseline are the
    violating part of the corpus: the monitor must report exactly the same
    A.1/V.2 (and any other) violations as the post-hoc checker."""
    scenario = _scenario(protocol, 2, seed)
    system = api.build(scenario)
    plan = RandomFaultPlan(app_servers=[],
                           db_servers=scenario.db_server_names,
                           horizon=1_000.0,
                           db_crash_probability=0.6)
    system.apply_faults(plan.generate(seed))
    ClosedLoop().run(system, 2)
    system.run(until=system.sim.now + 10_000.0)
    assert_reports_identical(system.deployment, check_termination=False,
                             context=f"{protocol} db-faults seed={seed}")


@given(seed=st.integers(min_value=0, max_value=10_000),
       protocol=st.sampled_from(["baseline", "2pc", "pb", "etx"]))
@settings(max_examples=8, deadline=None)
def test_failure_free_runs_verdicts_identical(seed, protocol):
    scenario = _scenario(protocol, 3, seed)
    system = api.build(scenario)
    ClosedLoop().run(system, 2)
    system.run(until=system.sim.now + 5_000.0)
    assert_reports_identical(system.deployment, check_termination=True,
                             context=f"{protocol} failure-free seed={seed}")


def test_monitor_report_is_repeatable_and_pure():
    """report() is a pure function of the accumulated state: asking twice
    (and with different termination flags in between) changes nothing."""
    system = api.build(_scenario("etx", 2, seed=7))
    ClosedLoop().run(system, 3)
    system.run(until=system.sim.now + 5_000.0)
    first = system.deployment.spec_monitor.report()
    system.deployment.spec_monitor.report(check_termination=False)
    second = system.deployment.spec_monitor.report()
    assert [(v.property_name, v.description) for v in first.violations] == \
        [(v.property_name, v.description) for v in second.violations]
    assert first.checked_properties == second.checked_properties
    assert_reports_identical(system.deployment, check_termination=True,
                             context="repeatability")
