"""Replay the committed counterexample corpus on every CI run.

``tests/corpus/`` holds the shrunk counterexamples the fault campaigns found
for the three comparison protocols (which *should* violate under the right
faults) and clean-pass certificates for the e-Transaction protocol.  Each
artifact records the exact violation strings its run must (re)produce;
replaying them pins the protocols' failure modes -- and etx's absence of one
-- as permanent, deterministic regression tests.
"""

import glob
import os

import pytest

from repro.campaign import Counterexample, replay

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
ARTIFACTS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def _artifact_id(path: str) -> str:
    return os.path.basename(path)


def test_corpus_is_present_and_covers_the_protocols():
    assert ARTIFACTS, "the committed corpus must not be empty"
    by_protocol: dict[str, set] = {}
    for path in ARTIFACTS:
        example = Counterexample.load(path)
        by_protocol.setdefault(example.scenario().protocol, set()).add(example.kind)
    # The three comparison protocols each have a violation on file; the
    # e-Transaction protocol has clean-pass certificates.
    assert "violation" in by_protocol.get("baseline", set())
    assert "violation" in by_protocol.get("2pc", set())
    assert "violation" in by_protocol.get("pb", set())
    assert "certificate" in by_protocol.get("etx", set())


@pytest.mark.parametrize("path", ARTIFACTS, ids=_artifact_id)
def test_corpus_artifact_replays_deterministically(path):
    result = replay(path)
    assert result.matches, result.summary()


@pytest.mark.parametrize("path", ARTIFACTS, ids=_artifact_id)
def test_corpus_violations_are_small_and_well_formed(path):
    example = Counterexample.load(path)
    scenario = example.scenario()
    if example.kind == "violation":
        # The shrinker's contract: a handful of fault actions at most.
        assert 1 <= len(scenario.fault_schedule()) <= 4
        assert example.violations
    else:
        assert not example.violations
    assert example.provenance.get("campaign_seed") is not None
