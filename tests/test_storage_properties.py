"""Property-based tests of the transactional store's durability invariants."""

from hypothesis import given, settings, strategies as st

from repro.storage.kvstore import TransactionalKVStore


# One operation = (kind, key, value) where kind selects write/prepare/commit/abort/crash.
operation_strategy = st.one_of(
    st.tuples(st.just("write"), st.sampled_from("abc"), st.integers(-100, 100)),
    st.tuples(st.just("prepare"), st.none(), st.none()),
    st.tuples(st.just("commit"), st.none(), st.none()),
    st.tuples(st.just("abort"), st.none(), st.none()),
    st.tuples(st.just("crash_recover"), st.none(), st.none()),
)


class ModelChecker:
    """Replays a transaction workload against the store and a trivial model."""

    def __init__(self):
        self.store = TransactionalKVStore("db", initial_data={"a": 0, "b": 0, "c": 0})
        self.model = {"a": 0, "b": 0, "c": 0}
        self.next_txn = 0
        self.current = None
        self.pending_writes = {}
        self.prepared = False

    def _open(self):
        if self.current is None:
            self.next_txn += 1
            self.current = f"t{self.next_txn}"
            self.store.begin(self.current)
            self.pending_writes = {}
            self.prepared = False

    def apply(self, op):
        kind, key, value = op
        if kind == "write":
            if self.prepared:
                return  # writes after prepare are not part of the model
            self._open()
            self.store.write(self.current, key, value)
            self.pending_writes[key] = value
        elif kind == "prepare":
            if self.current is not None and not self.prepared:
                vote, _ = self.store.prepare(self.current)
                assert vote == "yes"
                self.prepared = True
        elif kind == "commit":
            if self.current is not None and self.prepared:
                self.store.commit(self.current)
                self.model.update(self.pending_writes)
                self.current = None
        elif kind == "abort":
            if self.current is not None:
                self.store.abort(self.current)
                self.current = None
        elif kind == "crash_recover":
            self.store.crash()
            self.store.recover()
            if self.current is not None and not self.prepared:
                # Active transactions are lost in the crash.
                self.current = None
            elif self.current is not None and self.prepared:
                # In-doubt transaction survives; resolve it by aborting so the
                # model and store stay comparable.
                self.store.abort(self.current)
                self.current = None

    def check(self):
        snapshot = {k: self.store.get_committed(k) for k in ("a", "b", "c")}
        assert snapshot == self.model


@given(st.lists(operation_strategy, min_size=1, max_size=40))
@settings(max_examples=120, deadline=None)
def test_committed_state_matches_model_under_any_workload(operations):
    """Durability invariant: committed state == the model of committed writes only."""
    checker = ModelChecker()
    for op in operations:
        checker.apply(op)
        checker.check()


@given(st.lists(st.tuples(st.sampled_from("xyz"), st.integers(-50, 50)),
                min_size=1, max_size=20))
@settings(max_examples=80, deadline=None)
def test_prepared_transaction_survives_any_number_of_crashes(writes):
    """An in-doubt transaction and its locks survive repeated crash/recover cycles."""
    store = TransactionalKVStore("db")
    store.begin("t1")
    for key, value in writes:
        store.write("t1", key, value)
    store.prepare("t1")
    for _ in range(3):
        store.crash()
        in_doubt = store.recover()
        assert in_doubt == ["t1"]
    store.commit("t1")
    for key, value in dict(writes).items():
        assert store.get_committed(key) == value


@given(st.dictionaries(st.sampled_from("pqr"), st.integers(0, 9), min_size=1, max_size=3))
@settings(max_examples=60, deadline=None)
def test_aborted_writes_never_become_visible(write_set):
    """Atomicity: aborted transactions leave no trace in committed state."""
    store = TransactionalKVStore("db", initial_data={"p": -1, "q": -1, "r": -1})
    store.begin("t1")
    for key, value in write_set.items():
        store.write("t1", key, value)
    store.abort("t1")
    store.crash()
    store.recover()
    for key in "pqr":
        assert store.get_committed(key) == -1
