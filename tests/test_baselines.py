"""Tests for the comparison protocols (baseline, 2PC, primary-backup).

Besides checking that each baseline works in the failure-free case, these
tests reproduce the paper's *qualitative* claims about them:

* the unreliable baseline leaves the client hanging when the application
  server crashes (no termination T.1);
* 2PC blocks the databases (locks held, in-doubt transactions) when the
  coordinator crashes after the votes;
* primary-backup requires perfect failure detection -- a false suspicion can
  make the client deliver a result that no database committed (A.1 broken),
  which is exactly why the paper's protocol goes through wo-registers.
"""

import pytest

from repro.baselines import (
    BaselineConfig,
    BaselineDeployment,
    PrimaryBackupDeployment,
    TwoPCDeployment,
)
from repro.failure.detectors import EventuallyPerfectFailureDetector
from repro.failure.injection import FaultSchedule
from repro.workload.bank import BankWorkload

BANK = BankWorkload(num_accounts=2, initial_balance=100)


def config(**overrides):
    defaults = dict(num_db_servers=1, business_logic=BANK.business_logic,
                    initial_data=BANK.initial_data())
    defaults.update(overrides)
    return BaselineConfig(**defaults)


# ------------------------------------------------------------------- baseline


def test_baseline_commits_in_failure_free_run():
    deployment = BaselineDeployment(config())
    issued = deployment.run_request(BANK.debit(0, 10))
    assert issued.delivered
    assert issued.result.value["status"] == "ok"
    assert deployment.db_servers["d1"].committed_value("account:0") == 90


def test_baseline_latency_matches_paper_baseline_column():
    deployment = BaselineDeployment(config())
    issued = deployment.run_request(BANK.debit(0, 10))
    # Paper: 217.4 ms; the difference is pure client/server hop accounting.
    assert issued.latency == pytest.approx(217.4, rel=0.03)


def test_baseline_has_no_prepare_phase():
    deployment = BaselineDeployment(config())
    deployment.run_request(BANK.debit(0, 10))
    assert deployment.trace.count("msg_send", msg_type="Prepare") == 0
    assert deployment.trace.count("msg_send", msg_type="CommitOnePhase") == 1


def test_baseline_client_hangs_when_app_server_crashes():
    deployment = BaselineDeployment(config())
    deployment.apply_faults(FaultSchedule().crash(50.0, "a1"))
    issued = deployment.issue(BANK.debit(0, 10))
    deployment.run(until=100_000.0)
    assert not issued.delivered  # no T.1 without replication
    report = deployment.check_spec()
    assert report.violated("T.1")


def test_baseline_two_databases_commit_independently():
    deployment = BaselineDeployment(config(num_db_servers=2))
    issued = deployment.run_request(BANK.debit(0, 10))
    assert issued.delivered
    for db in deployment.db_servers.values():
        assert db.committed_value("account:0") == 90


# ------------------------------------------------------------------------ 2PC


def test_twopc_commits_and_is_slower_than_baseline():
    baseline = BaselineDeployment(config())
    twopc = TwoPCDeployment(config())
    baseline_latency = baseline.run_request(BANK.debit(0, 10)).latency
    twopc_latency = twopc.run_request(BANK.debit(0, 10)).latency
    assert twopc.db_servers["d1"].committed_value("account:0") == 90
    assert twopc_latency > baseline_latency
    overhead = (twopc_latency - baseline_latency) / baseline_latency
    assert 0.15 < overhead < 0.30  # paper: ~23 %


def test_twopc_forces_two_log_writes_per_transaction():
    deployment = TwoPCDeployment(config())
    deployment.run_request(BANK.debit(0, 10))
    coordinator = deployment.app_servers["a1"]
    assert coordinator.disk.stats.forced_writes == 2
    log_events = deployment.trace.select("tm_log", "a1")
    assert {event.get("which") for event in log_events} == {"start", "outcome"}


def test_twopc_runs_voting_phase():
    deployment = TwoPCDeployment(config())
    deployment.run_request(BANK.debit(0, 10))
    assert deployment.trace.count("msg_send", msg_type="Prepare") == 1
    assert deployment.trace.count("msg_send", msg_type="Vote") == 1


def test_twopc_blocks_databases_when_coordinator_crashes_after_votes():
    deployment = TwoPCDeployment(config())
    # The vote lands around t=230 ms (after the forced start log); crash the
    # coordinator right after it and never recover it.
    deployment.apply_faults(FaultSchedule().crash(235.0, "a1"))
    issued = deployment.issue(BANK.debit(0, 10))
    deployment.run(until=200_000.0)
    assert not issued.delivered
    db = deployment.db_servers["d1"]
    # The database is stuck in doubt with the account lock held: the blocking
    # behaviour the e-Transaction protocol's T.2 rules out.
    assert db.in_doubt() == [("c1", 1)]
    assert "account:0" in db.store.locks.locked_keys()


def test_twopc_log_latency_is_configurable():
    cheap = TwoPCDeployment(config(coordinator_log_latency=0.0))
    expensive = TwoPCDeployment(config(coordinator_log_latency=25.0))
    cheap_latency = cheap.run_request(BANK.debit(0, 10)).latency
    expensive_latency = expensive.run_request(BANK.debit(0, 10)).latency
    assert expensive_latency == pytest.approx(cheap_latency + 50.0, abs=1.0)


# -------------------------------------------------------------- primary-backup


def test_primary_backup_commits_in_failure_free_run():
    deployment = PrimaryBackupDeployment(config(num_app_servers=2))
    issued = deployment.run_request(BANK.debit(0, 10))
    assert issued.delivered
    assert deployment.db_servers["d1"].committed_value("account:0") == 90
    # The replication messages of Figure 7c were exchanged.
    assert deployment.trace.count("msg_send", msg_type="PBStart") == 1
    assert deployment.trace.count("msg_send", msg_type="PBOutcome") == 1


def test_primary_backup_failover_after_outcome_replication_commits():
    deployment = PrimaryBackupDeployment(config(num_app_servers=2))
    # The outcome replication lands around t=240 ms; crash the primary after it
    # so the backup finishes the commit and answers the client.
    deployment.apply_faults(FaultSchedule().crash(243.0, "a1"))
    issued = deployment.run_request(BANK.debit(0, 10), horizon=300_000.0)
    assert issued.delivered
    assert deployment.db_servers["d1"].committed_value("account:0") == 90
    assert deployment.trace.count("pb_takeover", "a2") >= 1


def test_primary_backup_failover_before_outcome_aborts():
    deployment = PrimaryBackupDeployment(config(num_app_servers=2))
    deployment.apply_faults(FaultSchedule().crash(50.0, "a1"))
    issued = deployment.issue(BANK.debit(0, 10))
    deployment.run(until=300_000.0)
    # The backup aborts the orphaned result; the client is told (an abort) but
    # has no committed result -- the balance is untouched.
    assert deployment.db_servers["d1"].committed_value("account:0") == 100
    assert not issued.delivered or issued.aborted_results


def test_primary_backup_false_suspicion_breaks_agreement():
    """The paper's warning: primary-backup needs perfect failure detection.

    A false suspicion of the live primary makes the backup abort the result at
    the database *after* the database already voted yes, while the primary --
    unaware -- collects the yes votes and reports the result as committed to
    the client.  The reported outcome and the database state disagree: the
    message-level counterpart of an A.1 violation.  (The end user here is only
    saved because the backup's abort notification happens to reach the client
    first; with the wo-registers of the e-Transaction protocol the conflicting
    decision cannot be produced in the first place.)
    """
    base = config(num_app_servers=2)
    deployment = PrimaryBackupDeployment(base, failure_detector_override=None)
    # Replace the perfect detector with an eventually-perfect one and inject a
    # false suspicion covering the window between the database's yes vote and
    # the primary's commit decision.
    unreliable_fd = EventuallyPerfectFailureDetector(deployment.network, detection_delay=5.0)
    deployment.backup.failure_detector = unreliable_fd
    unreliable_fd.inject_false_suspicion("a2", "a1", start=195.0, duration=20.0)
    issued = deployment.run_request(BANK.debit(0, 10), horizon=300_000.0)
    deployment.run(until=deployment.sim.now + 10_000.0)
    assert issued.delivered
    # The primary claimed commit for the first intermediate result...
    primary_commits = deployment.trace.select("as_result_sent", "a1", outcome="commit", j=1)
    assert primary_commits, "expected the primary to report the first result as committed"
    # ...but no database ever committed it (the backup's abort won the race).
    db_commits_j1 = [e for e in deployment.trace.select("db_decide", "d1", outcome="commit")
                     if e.get("j") == ("c1", 1)]
    assert db_commits_j1 == []
    assert deployment.trace.count("pb_takeover", "a2") >= 1


def test_primary_backup_requires_two_app_servers():
    with pytest.raises(ValueError):
        PrimaryBackupDeployment(config(num_app_servers=1))


# ----------------------------------------------------------------- validation


def test_baseline_config_validation():
    with pytest.raises(ValueError):
        BaselineConfig(num_app_servers=0)


def test_baseline_config_overrides_derive_a_new_config():
    deployment = BaselineDeployment(BaselineConfig(), num_db_servers=2)
    assert deployment.config.num_db_servers == 2
    assert len(deployment.db_servers) == 2
