"""Acceptance tests for the asyncio/TCP runtime backend.

The issue's bar: the *unmodified* protocol generators must complete a
multi-client closed-loop run over real localhost TCP sockets, the trace-bus
events of that run must drive the existing online :class:`SpecMonitor` to a
clean report, and an injected middle-tier crash must be survived with zero
safety violations -- all selected purely by ``runtime=asyncio`` in the DSN.

Wall-clock budget: ``pace`` rescales protocol timers, so one request
(dominated by the 187 virtual ms of SQL time) costs about
``187 * pace`` wall milliseconds; at ``pace=0.05`` the whole module runs in
a few wall seconds while virtual timers keep their paper-true ratios.
"""

from dataclasses import fields

import pytest

from repro import api
from repro.runtime.tcp import TcpTransport
from repro.workload.generator import RunStatistics

PACE = 0.05  # 20x faster than wall time; see module docstring
SETTLE = 400.0  # virtual ms of cleanup after the last delivery


def asyncio_dsn(base: str) -> str:
    separator = "&" if "?" in base else "?"
    return f"{base}{separator}runtime=asyncio&pace={PACE}"


# ------------------------------------------------------------- closed loop


def test_multi_client_etx_over_real_tcp():
    result = api.run_scenario(asyncio_dsn("etx://a3.d1.c2?seed=7"),
                              requests=2, settle=SETTLE)
    assert result.delivered == result.requested == 4
    # The same online monitor that checks simulated runs judged this one,
    # fed by the same trace bus -- and it saw a complete, clean execution.
    assert result.spec.ok, result.spec.summary()
    assert set(result.spec.checked_properties) >= {"A.1", "V.1", "S.1"}
    assert result.ok


def test_the_network_really_is_tcp():
    scenario = api.Scenario.from_dsn(asyncio_dsn("etx://a2.d1.c1"))
    system = api.build(scenario)
    try:
        assert isinstance(system.network, TcpTransport)
        assert system.sim.realtime
        issued = system.run_request(system.standard_request(), horizon=60_000.0)
        assert issued.delivered
        # Every hop crossed a socket: the transport counts frames it wrote,
        # and an etx request takes several protocol messages.
        assert system.stats.delivered >= 5
    finally:
        system.close()


def test_middle_tier_crash_survived_over_tcp():
    # Crash one application server mid-protocol and bring it back later: the
    # remaining replicas must finish the transaction (the paper's headline
    # fail-over), with the spec monitor confirming zero safety violations.
    result = api.run_scenario(
        asyncio_dsn("etx://a3.d1.c1?seed=3&fault=crash@40:a1&fault=recover@2000:a1"),
        requests=1, settle=SETTLE)
    assert result.delivered == result.requested == 1
    assert result.spec.ok, result.spec.summary()


def test_2pc_baseline_runs_under_asyncio_too():
    # The runtime seam is protocol-agnostic: the comparison baselines run
    # over TCP through the very same deployment scaffolding.
    result = api.run_scenario(asyncio_dsn("2pc://a1.d2.c1?seed=5"),
                              requests=1, settle=SETTLE)
    assert result.delivered == result.requested == 1
    assert result.spec.ok, result.spec.summary()


# ------------------------------------------------------------- stats parity


def test_run_statistics_schema_matches_the_simulator():
    # Reports from the two runtimes must stay interchangeable: same type,
    # same fields, same per-client/per-database breakdown keys -- so sweep
    # tables, soak reports and the CLI summary need no per-runtime code.
    sim = api.run_scenario("etx://a2.d1.c2?seed=11", requests=1)
    real = api.run_scenario(asyncio_dsn("etx://a2.d1.c2?seed=11"),
                            requests=1, settle=SETTLE)
    assert type(sim.statistics) is type(real.statistics) is RunStatistics
    schema = [f.name for f in fields(RunStatistics)]
    assert [f.name for f in fields(real.statistics)] == schema
    assert sim.statistics.by_client.keys() == real.statistics.by_client.keys()
    assert sim.statistics.by_database.keys() == real.statistics.by_database.keys()
    assert sim.delivered == real.delivered == 2
    for stats in (sim.statistics, real.statistics):
        assert stats.count == 2
        assert stats.elapsed > 0
        assert stats.mean_latency > 0
        assert all(leaf.count == 1 for leaf in stats.by_client.values())


# ------------------------------------------------------------ failure modes


def test_closing_is_idempotent_and_frees_the_port():
    scenario = api.Scenario.from_dsn(asyncio_dsn("etx://a1.d1.c1"))
    system = api.build(scenario)
    system.close()
    system.close()  # second close must be a no-op, not an error


def test_runs_on_the_same_loop_after_an_earlier_system_closed():
    # Two back-to-back asyncio systems in one OS process: each owns a
    # private event loop, so the second is unaffected by the first's close.
    for seed in (1, 2):
        result = api.run_scenario(asyncio_dsn(f"etx://a1.d1.c1?seed={seed}"),
                                  requests=1, settle=SETTLE)
        assert result.ok, result.spec.summary()


def test_hang_detection_budget_is_enforced():
    from repro.runtime.loop import AsyncioKernel
    from repro.sim.errors import SimulationLimitExceeded

    kernel = AsyncioKernel(seed=0, pace=1.0, max_wall=0.05)
    try:
        with pytest.raises(SimulationLimitExceeded, match="budget"):
            kernel.run_until(lambda: False, until=10_000_000.0)
    finally:
        kernel.close()
