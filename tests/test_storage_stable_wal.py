"""Tests for stable storage and the write-ahead log."""

import pytest

from repro.storage.stable import StableStorage
from repro.storage.wal import ABORT, COMMIT, PREPARE, LogRecord, WriteAheadLog


# ------------------------------------------------------------- stable storage


def test_put_get_roundtrip():
    storage = StableStorage("disk")
    storage.put("k", {"a": 1})
    assert storage.get("k") == {"a": 1}
    assert storage.contains("k")
    assert len(storage) == 1


def test_get_missing_returns_default():
    storage = StableStorage("disk")
    assert storage.get("missing") is None
    assert storage.get("missing", 7) == 7


def test_forced_write_costs_forced_latency():
    storage = StableStorage("disk", forced_write_latency=12.5, lazy_write_latency=0.5)
    forced_cost = storage.put("a", 1, forced=True)
    lazy_cost = storage.put("b", 2, forced=False)
    assert forced_cost == pytest.approx(12.5)
    assert lazy_cost == pytest.approx(0.5)
    assert storage.stats.forced_writes == 1
    assert storage.stats.lazy_writes == 1
    assert storage.stats.total_write_cost == pytest.approx(13.0)


def test_append_creates_and_extends_list():
    storage = StableStorage("disk")
    storage.append("log", "first", forced=False)
    storage.append("log", "second", forced=False)
    assert storage.get("log") == ["first", "second"]


def test_delete_and_keys_and_wipe():
    storage = StableStorage("disk")
    storage.put("a", 1)
    storage.put("b", 2)
    assert sorted(storage.keys()) == ["a", "b"]
    storage.delete("a")
    assert not storage.contains("a")
    storage.wipe()
    assert len(storage) == 0


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        StableStorage("disk", forced_write_latency=-1.0)


# -------------------------------------------------------------------- the WAL


def test_log_record_kind_validation():
    with pytest.raises(ValueError):
        LogRecord("explode", 1)


def test_wal_append_and_records_order():
    wal = WriteAheadLog(StableStorage("disk"))
    wal.append_prepare(1, {"x": 10})
    wal.append_commit(1)
    wal.append_abort(2)
    kinds = [r.kind for r in wal.records()]
    assert kinds == [PREPARE, COMMIT, ABORT]
    assert len(wal) == 3


def test_wal_prepare_is_forced_and_abort_is_lazy_by_default():
    storage = StableStorage("disk", forced_write_latency=10.0, lazy_write_latency=0.0)
    wal = WriteAheadLog(storage)
    prepare_cost = wal.append_prepare(1, {"x": 1})
    abort_cost = wal.append_abort(1)
    assert prepare_cost == pytest.approx(10.0)
    assert abort_cost == pytest.approx(0.0)
    assert storage.stats.forced_writes == 1
    assert storage.stats.lazy_writes == 1


def test_replay_applies_committed_transactions_in_order():
    wal = WriteAheadLog(StableStorage("disk"))
    wal.append_prepare(1, {"x": 1})
    wal.append_commit(1)
    wal.append_prepare(2, {"x": 2, "y": 5})
    wal.append_commit(2)
    result = wal.replay()
    assert result.committed_state == {"x": 2, "y": 5}
    assert result.committed_transactions == [1, 2]
    assert result.in_doubt == {}


def test_replay_keeps_prepared_undecided_transactions_in_doubt():
    wal = WriteAheadLog(StableStorage("disk"))
    wal.append_prepare(1, {"x": 1})
    wal.append_prepare(2, {"y": 2})
    wal.append_commit(1)
    result = wal.replay()
    assert result.committed_state == {"x": 1}
    assert result.in_doubt == {2: {"y": 2}}


def test_replay_discards_aborted_transactions():
    wal = WriteAheadLog(StableStorage("disk"))
    wal.append_prepare(1, {"x": 1})
    wal.append_abort(1)
    result = wal.replay()
    assert result.committed_state == {}
    assert result.in_doubt == {}
    assert result.aborted_transactions == [1]


def test_replay_one_phase_commit_record_carries_writes():
    wal = WriteAheadLog(StableStorage("disk"))
    wal.append_commit(7, {"z": 3})
    result = wal.replay()
    assert result.committed_state == {"z": 3}
    assert result.committed_transactions == [7]
