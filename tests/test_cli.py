"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_quickstart_command_runs_and_reports(capsys):
    status = main(["quickstart"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "delivered=True" in captured
    assert "all properties hold" in captured


def test_figure8_command_prints_table_and_shape(capsys):
    status = main(["figure8", "--requests", "1"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "cost of rel." in captured
    assert "shape holds" in captured and "True" in captured


def test_figure7_command(capsys):
    status = main(["figure7"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "baseline" in captured and "AR" in captured
    assert "structure matches" in captured


def test_figure7_command_with_diagrams(capsys):
    status = main(["figure7", "--diagrams"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "->" in captured  # sequence arrows rendered


def test_figure1_command(capsys):
    status = main(["figure1"])
    captured = capsys.readouterr().out
    assert status == 0
    for scenario in ("a:", "b:", "c:", "d:"):
        assert scenario in captured


def test_fault_sweep_command(capsys):
    status = main(["fault-sweep", "--runs", "3"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "3 runs" in captured


def test_seed_flag_is_accepted(capsys):
    status = main(["--seed", "7", "quickstart"])
    assert status == 0
