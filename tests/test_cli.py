"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_a_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_quickstart_command_runs_and_reports(capsys):
    status = main(["quickstart"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "delivered=True" in captured
    assert "all properties hold" in captured


def test_figure8_command_prints_table_and_shape(capsys):
    status = main(["figure8", "--requests", "1"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "cost of rel." in captured
    assert "shape holds" in captured and "True" in captured


def test_figure7_command(capsys):
    status = main(["figure7"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "baseline" in captured and "AR" in captured
    assert "structure matches" in captured


def test_figure7_command_with_diagrams(capsys):
    status = main(["figure7", "--diagrams"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "->" in captured  # sequence arrows rendered


def test_figure1_command(capsys):
    status = main(["figure1"])
    captured = capsys.readouterr().out
    assert status == 0
    for scenario in ("a:", "b:", "c:", "d:"):
        assert scenario in captured


def test_fault_sweep_command(capsys):
    status = main(["fault-sweep", "--runs", "3"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "3 runs" in captured


def test_seed_flag_is_accepted(capsys):
    status = main(["--seed", "7", "quickstart"])
    assert status == 0


@pytest.mark.parametrize("dsn", [
    "etx://a3.d1.c1?fd=heartbeat&seed=7",
    "2pc://?workload=bank&timing=paper",
    "pb://a2.d1?workload=bank",
    "baseline://a1.d1.c1",
])
def test_run_command_executes_any_scheme(dsn, capsys):
    status = main(["run", dsn])
    captured = capsys.readouterr().out
    assert status == 0
    assert "spec" in captured and "all properties hold" in captured
    assert "1/1 delivered" in captured


def test_run_command_accepts_multiple_requests(capsys):
    status = main(["run", "etx://a3.d1.c1", "--requests", "2"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "2/2 delivered" in captured


def test_run_command_rejects_unknown_schemes(capsys):
    status = main(["run", "gopher://a3"])
    captured = capsys.readouterr()
    assert status == 2
    assert "unknown scenario scheme" in captured.err


def test_run_command_applies_the_global_seed(capsys):
    status = main(["--seed", "5", "run", "etx://a3.d1.c1"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "seed 5" in captured


def test_run_command_seed_zero_overrides_the_dsn_seed(capsys):
    status = main(["--seed", "0", "run", "etx://a3.d1.c1?seed=7"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "seed 0" in captured


def test_run_command_open_loop_reports_throughput(capsys):
    status = main(["run", "etx://a3.d1.c2?rate=40&seed=7"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "2/2 delivered" in captured
    assert "throughput" in captured and "p95" in captured
    assert "open loop @ 40/s poisson" in captured


def test_sweep_command_runs_a_grid_serially(capsys):
    status = main(["sweep", "etx://d1", "--axis", "protocol=etx,2pc",
                   "--axis", "clients=1,2", "--serial"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "tput/s" in captured
    assert captured.count("etx://") == 2 and captured.count("2pc://") == 2
    assert "all ok: True" in captured


def test_sweep_command_rejects_unknown_axes(capsys):
    status = main(["sweep", "etx://d1", "--axis", "warp=1,2", "--serial"])
    captured = capsys.readouterr()
    assert status == 2
    assert "unknown sweep axis" in captured.err


def test_sweep_command_applies_the_global_seed(capsys):
    status = main(["--seed", "3", "sweep", "etx://d1", "--axis",
                   "clients=1", "--serial"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "seed=3" in captured


def test_campaign_command_finds_and_writes_artifacts(tmp_path, capsys):
    status = main(["campaign", "baseline://a1.d1.c1?workload=bank&timing=paper&seed=3",
                   "--budget", "8", "--population", "8", "--stop-after", "1",
                   "--shrink-checks", "20", "--horizon", "60000",
                   "--settle", "10000", "--out", str(tmp_path),
                   "--expect", "violation"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "counterexample(s), shrunk" in captured
    artifacts = list(tmp_path.glob("*.json"))
    assert artifacts, "campaign --out must write artifacts"
    replay_status = main(["replay", str(artifacts[0])])
    replayed = capsys.readouterr().out
    assert replay_status == 0
    assert "reproduced" in replayed


def test_campaign_command_expect_clean_gates_on_violations(capsys):
    status = main(["campaign", "etx://a3.d1.c1?workload=bank&timing=paper&seed=3&detect=10",
                   "--budget", "6", "--population", "6",
                   "--horizon", "60000", "--settle", "10000",
                   "--expect", "clean"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "none found" in captured


def test_replay_command_asserts_a_bare_dsn_is_clean(capsys):
    status = main(["replay", "etx://a3.d1.c1?workload=bank&seed=7",
                   "--horizon", "60000", "--settle", "5000"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "clean pass confirmed" in captured


def test_replay_command_rejects_missing_artifacts(capsys):
    status = main(["replay", "no/such/artifact.json"])
    captured = capsys.readouterr()
    assert status == 2
    assert "error:" in captured.err


def test_replay_command_routes_sidecar_dsns_to_the_scenario_path(tmp_path, capsys):
    """A DSN whose faults live in a @sidecar ends in .json but is not an
    artifact file; routing is by '://', not by suffix."""
    from repro import api
    from repro.campaign import write_sidecar

    scenario = api.Scenario.from_dsn(
        "etx://a3.d1.c1?workload=bank&seed=7&detect=10"
        "&faults=partition@250:c1,heal@300")
    dsn = write_sidecar(scenario, str(tmp_path / "x.faults.json"))
    assert dsn.endswith(".json")
    status = main(["replay", dsn, "--horizon", "60000", "--settle", "5000"])
    captured = capsys.readouterr().out
    assert status == 0
    assert "clean pass confirmed" in captured
