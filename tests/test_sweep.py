"""Tests for the declarative sweep subsystem and its parallel executor."""

import pytest

from repro import api
from repro.api.sweep import Sweep, default_workers, map_jobs, resolve_axis_field


# ------------------------------------------------------------------ expansion


def test_expand_takes_the_cartesian_product_in_order():
    sweep = Sweep.over("etx://d1", seed=[1, 2], clients=[1, 3])
    scenarios = sweep.expand()
    assert len(sweep) == len(scenarios) == 4
    assert [(s.seed, s.num_clients) for s in scenarios] == \
        [(1, 1), (1, 3), (2, 1), (2, 3)]


def test_axis_names_accept_dsn_spellings_and_field_names():
    assert resolve_axis_field("clients") == "num_clients"
    assert resolve_axis_field("fd") == "failure_detector"
    assert resolve_axis_field("num_db_servers") == "num_db_servers"
    assert resolve_axis_field("rate") == "rate"
    with pytest.raises(api.ScenarioError):
        resolve_axis_field("warp_factor")


def test_compound_axes_move_several_fields_together():
    sweep = Sweep.over("etx://d1", stack=[
        {"protocol": "baseline", "a": 1},
        {"protocol": "etx", "a": 3},
    ])
    scenarios = sweep.expand()
    assert [(s.protocol, s.num_app_servers) for s in scenarios] == \
        [("baseline", 1), ("etx", 3)]


def test_empty_axis_is_rejected():
    with pytest.raises(api.ScenarioError):
        Sweep.over("etx://d1", seed=[])


def test_with_axis_appends():
    sweep = Sweep.over("etx://d1", seed=[1]).with_axis("clients", [1, 2])
    assert len(sweep) == 2


def test_fault_axes_expand_fault_schedules():
    sweep = Sweep.over("etx://a3.d1", faults=[
        (),
        (api.FaultSpec("crash", 100.0, "a1"),),
    ])
    scenarios = sweep.expand()
    assert scenarios[0].faults == ()
    assert scenarios[1].faults[0].target == "a1"


# ------------------------------------------------------------------- executor


def test_default_workers_is_capped_and_positive():
    assert default_workers(0) == 1
    assert default_workers(1) == 1
    assert 1 <= default_workers(1_000) <= 1_000


def test_map_jobs_serial_preserves_order():
    assert map_jobs(_double, [1, 2, 3], workers=1) == [2, 4, 6]


def test_map_jobs_parallel_matches_serial():
    jobs = list(range(6))
    assert map_jobs(_double, jobs, workers=3) == map_jobs(_double, jobs, workers=1)


def _double(value):
    return value * 2


# ------------------------------------------------------------------ run_sweep


@pytest.fixture(scope="module")
def small_grid():
    return Sweep.over("etx://d1?workload=bank&timing=paper",
                      protocol=["etx", "2pc"], clients=[1, 2])


def test_run_sweep_serial_executes_the_grid(small_grid):
    result = api.run_sweep(small_grid, requests=1, workers=1)
    assert len(result) == 4
    assert result.ok
    for row, scenario in zip(result, small_grid.expand()):
        assert row.scenario == scenario
        assert row.delivered == row.requested == scenario.num_clients
        assert row.spec.ok


def test_run_sweep_parallel_is_byte_identical_to_serial(small_grid):
    serial = api.run_sweep(small_grid, requests=1, workers=1)
    parallel = api.run_sweep(small_grid, requests=1, workers=4)
    assert serial.to_table() == parallel.to_table()
    for row_s, row_p in zip(serial, parallel):
        assert row_s.dsn == row_p.dsn
        assert row_s.statistics.latencies == row_p.statistics.latencies
        assert row_s.statistics.attempts == row_p.statistics.attempts
        assert row_s.message_counts == row_p.message_counts
        assert row_s.breakdown.components == row_p.breakdown.components
        assert row_s.spec.ok == row_p.spec.ok


def test_run_sweep_accepts_an_explicit_scenario_list():
    scenarios = [api.Scenario(protocol="etx", seed=seed) for seed in (1, 2)]
    result = api.run_sweep(scenarios, requests=1, workers=1)
    assert [row.scenario.seed for row in result] == [1, 2]
    assert result.ok


def test_sweep_table_renders_one_row_per_grid_point(small_grid):
    result = api.run_sweep(small_grid, requests=1, workers=1)
    table = result.to_table()
    lines = table.splitlines()
    assert len(lines) == 1 + 4
    assert "tput/s" in lines[0] and "p95" in lines[0] and "spec" in lines[0]
    assert all(line.rstrip().endswith("ok") for line in lines[1:])


def test_faults_axis_accepts_fault_list_strings():
    """Whole fault schedules sweep as easily as numeric knobs."""
    sweep = api.Sweep.over(
        "etx://a3.d1.c1?workload=bank",
        faults=["crash@200:a1", "partition@200:a1,heal@260", ""])
    scenarios = sweep.expand()
    assert [len(s.faults) for s in scenarios] == [1, 2, 0]
    assert scenarios[0].faults[0].kind == "crash"
    assert scenarios[1].faults[0].kind == "partition"
    assert scenarios[1].faults[1].kind == "heal"


def test_faults_axis_semicolons_keep_a_schedule_in_one_value():
    """The CLI axis grammar splits values on commas; semicolons carry a
    whole multi-fault schedule as a single axis value."""
    sweep = api.Sweep.over(
        "etx://a3.d1.c1?workload=bank",
        faults=["crash@10:a1;recover@20:a1", "crash@5:a2"])
    scenarios = sweep.expand()
    assert [len(s.faults) for s in scenarios] == [2, 1]
    assert [f.kind for f in scenarios[0].faults] == ["crash", "recover"]
