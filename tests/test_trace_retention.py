"""Trace retention policies and the event bus.

``full``/``ring:N``/``off`` retention bound what the recorder *stores*;
everything that matters -- online spec checking, per-database statistics,
latency components -- streams off the bus and must keep working when the
stored trace is truncated or absent.
"""

import pytest

from repro import api
from repro.sim.scheduler import Simulator
from repro.sim.tracing import TraceRecorder, parse_retention
from repro.workload.generator import ClosedLoop

SHARDED = "etx://a3.d2.c2?seed=5&workload=bank&placement=hash&xshard=0.5"


# ----------------------------------------------------------------- recorder


def test_parse_retention_accepts_the_three_policies():
    assert parse_retention("full") == ("full", None)
    assert parse_retention("off") == ("off", None)
    assert parse_retention("ring:128") == ("ring", 128)
    for bad in ("ring:0", "ring:x", "some", "ring:"):
        with pytest.raises(ValueError):
            parse_retention(bad)


def test_ring_retention_keeps_only_the_suffix():
    trace = TraceRecorder(retention="ring:3")
    for n in range(10):
        trace.record("tick", n=n)
    assert len(trace) == 3
    assert [e.get("n") for e in trace] == [7, 8, 9]
    assert trace.retention == "ring:3"


def test_off_retention_stores_nothing_and_skips_event_construction():
    trace = TraceRecorder(retention="off")
    assert trace.record("tick", n=1) is None  # not even constructed
    assert len(trace) == 0
    assert not trace.wants("tick")


def test_subscribers_see_events_under_any_retention():
    for retention in ("full", "ring:2", "off"):
        trace = TraceRecorder(retention=retention)
        seen = []
        unsubscribe = trace.subscribe("tick", lambda e: seen.append(e.get("n")))
        for n in range(5):
            trace.record("tick", n=n)
            trace.record("other", n=n)  # not subscribed
        assert seen == [0, 1, 2, 3, 4], retention
        assert trace.wants("tick")
        unsubscribe()
        trace.record("tick", n=99)
        assert seen[-1] == 4  # unsubscribed callbacks stop firing


def test_wants_reflects_storage_and_subscription():
    trace = TraceRecorder(retention="off")
    assert not trace.wants("msg_send")
    unsubscribe = trace.subscribe("msg_send", lambda e: None)
    assert trace.wants("msg_send")
    unsubscribe()
    assert not trace.wants("msg_send")
    trace.set_retention("full")
    assert trace.wants("msg_send")  # stored now
    trace.enabled = False
    assert not trace.wants("msg_send")


def test_between_uses_the_time_order():
    sim = Simulator()
    for t in (1.0, 2.0, 5.0, 5.0, 9.0):
        sim.schedule(t, lambda: sim.trace.record("tick"))
    sim.run()
    assert len(sim.trace.between(2.0, 5.0)) == 3
    assert len(sim.trace.between(9.5, 10.0)) == 0
    assert len(sim.trace.between(0.0, 100.0)) == 5


def test_between_survives_out_of_order_extend():
    """extend() makes no ordering promise; between() must stay correct."""
    from repro.sim.tracing import TraceEvent

    trace = TraceRecorder()
    trace.extend([TraceEvent(5.0, "a", "p"), TraceEvent(1.0, "b", "p")])
    assert [e.category for e in trace.between(0.0, 2.0)] == ["b"]
    trace.clear()
    trace.extend([TraceEvent(1.0, "c", "p"), TraceEvent(2.0, "d", "p")])
    assert [e.category for e in trace.between(1.5, 2.5)] == ["d"]


# -------------------------------------------------------------- deployments


@pytest.mark.parametrize("retention", ["ring:400", "off"])
def test_spec_and_statistics_work_with_truncated_trace(retention):
    """A sharded multi-client run under bounded retention still gets the
    full online verdict, per-database statistics and latency breakdown."""
    result = api.run_scenario(f"{SHARDED}&trace={retention}", requests=3)
    assert result.delivered == 6
    assert result.spec.ok, result.spec.summary()
    assert result.spec.checked_properties  # the monitor really checked
    assert set(result.statistics.by_database) == {"d1", "d2"}
    assert sum(db.commits for db in result.statistics.by_database.values()) \
        >= result.delivered
    # The regA/regD component means stream off the bus, so the breakdown is
    # populated even though the events backing it were never stored.
    assert result.breakdown.component("log-start") > 0


def test_ring_retention_bounds_stored_events_mid_run():
    scenario = api.Scenario.from_dsn(f"{SHARDED}&trace=ring:250")
    system = api.build(scenario)
    ClosedLoop().run(system, 4)
    assert len(system.trace) <= 250
    assert system.check_spec().ok


def test_off_retention_stores_no_events_at_all():
    scenario = api.Scenario.from_dsn(f"{SHARDED}&trace=off")
    system = api.build(scenario)
    ClosedLoop().run(system, 4)
    assert len(system.trace) == 0
    assert system.check_spec().ok


def test_retention_does_not_change_the_verdict_or_the_numbers():
    """full vs ring vs off: same deliveries, same verdict, same statistics."""
    results = {}
    for retention in ("full", "ring:300", "off"):
        result = api.run_scenario(f"{SHARDED}&trace={retention}", requests=3)
        results[retention] = result
    baseline = results["full"]
    for retention, result in results.items():
        assert result.delivered == baseline.delivered, retention
        assert result.spec.summary() == baseline.spec.summary(), retention
        assert result.statistics.latencies == baseline.statistics.latencies, retention
        assert {name: (db.commits, db.aborts)
                for name, db in result.statistics.by_database.items()} == \
            {name: (db.commits, db.aborts)
             for name, db in baseline.statistics.by_database.items()}, retention
        assert result.breakdown.as_row() == baseline.breakdown.as_row(), retention


def test_bad_retention_policy_is_rejected_at_the_dsn_layer():
    with pytest.raises(api.ScenarioError):
        api.Scenario.from_dsn("etx://a3.d1.c1?trace=ring:0")
    with pytest.raises(api.ScenarioError):
        api.Scenario.from_dsn("etx://a3.d1.c1?trace=sometimes")


def test_trace_dsn_param_round_trips_and_sweeps():
    scenario = api.Scenario.from_dsn("etx://a3.d1.c1?trace=ring:1000")
    assert api.Scenario.from_dsn(scenario.to_dsn()) == scenario
    sweep = api.Sweep.over("etx://a3.d1.c1?workload=bank",
                           trace=["full", "ring:500", "off"])
    dsns = [s.to_dsn() for s in sweep.expand()]
    assert len(dsns) == 3
    assert any("trace=ring:500" in dsn for dsn in dsns)
