"""Admission control: bounded mailboxes shed loudly, never silently.

Unit level: a :class:`Process` with ``mailbox_limit`` set refuses buffered
messages past the bound, counts them, and records an ``overload`` trace
event for each refusal.  Deployment level: an e-Transaction scenario with a
small ``mailbox=`` bound under open-loop pressure sheds at the application
tier, surfaces the counters in ``RunStatistics.saturation`` -- and still
delivers every request spec-clean, because the protocol's retry machinery
absorbs the loss like any other dropped message.
"""

from repro import api
from repro.api.runner import load_generator_for
from repro.core.types import reset_request_counter
from repro.net.message import Message
from repro.sim.process import Process
from repro.sim.scheduler import Simulator

SHED_DSN = "etx://a1.d2.c8?rate=500&seed=3&workload=bank&mailbox=2"


def test_process_sheds_buffered_messages_past_the_bound():
    sim = Simulator()
    process = Process(sim, "p")
    process.mailbox_limit = 2
    for _ in range(3):
        process.deliver(Message("Ping"))
    assert process.mailbox_size == 2
    assert process.shed_messages == 1
    assert process.mailbox_peak == 2
    overloads = sim.trace.select("overload", process="p")
    assert len(overloads) == 1
    assert overloads[0].data == {"msg_type": "Ping", "backlog": 2}


def test_process_unbounded_by_default():
    sim = Simulator()
    process = Process(sim, "p")
    for _ in range(50):
        process.deliver(Message("Ping"))
    assert process.mailbox_size == 50
    assert process.shed_messages == 0
    assert sim.trace.count("overload") == 0


def test_shed_messages_resume_waiting_threads_unaffected():
    # The bound applies to *buffered* backlog only: a message that resumes a
    # blocked receive never occupies the mailbox and is never shed.
    sim = Simulator()
    process = Process(sim, "p")
    process.mailbox_limit = 1
    seen = []

    def protocol():
        while True:
            message = yield process.receive()
            seen.append(message.msg_type)

    process.spawn(protocol())
    sim.run()
    for _ in range(3):
        process.deliver(Message("Ping"))
        sim.run()
    assert seen == ["Ping", "Ping", "Ping"]
    assert process.shed_messages == 0


def test_mailbox_bound_sheds_under_load_but_stays_spec_clean():
    reset_request_counter()
    scenario = api.Scenario.from_dsn(SHED_DSN)
    system = api.build(scenario)
    generator = load_generator_for(scenario)
    stats = generator.run(system, 10)
    system.run(until=system.sim.now + 20000)

    # The statistics schema carries the admission counters on every run.
    assert set(stats.saturation) == {"shed_messages", "mailbox_peak"}

    # This scenario is tuned to actually overflow the bound: sheds happened,
    # and every one of them is a traced overload event, never silent.
    saturation = system.deployment.saturation_stats()
    assert saturation["shed_messages"] > 0
    assert saturation["mailbox_peak"] == 2
    overloads = system.trace.select("overload")
    assert len(overloads) == saturation["shed_messages"]
    assert all(e.data["backlog"] == 2 for e in overloads)

    # Shedding is invisible to correctness: retries resend, everything
    # delivers, the specification holds.
    assert system.trace.count("client_deliver") == 80
    report = system.check_spec(check_termination=True)
    assert report.ok, "\n".join(str(v) for v in report.violations)


def test_unbounded_scenario_reports_zeroed_saturation():
    reset_request_counter()
    scenario = api.Scenario.from_dsn("etx://a1.d1.c2?rate=20&seed=3")
    system = api.build(scenario)
    generator = load_generator_for(scenario)
    stats = generator.run(system, 3)
    assert stats.saturation == {"shed_messages": 0, "mailbox_peak": 0}
