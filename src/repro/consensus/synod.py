"""Single-decree quorum consensus among the application servers.

Each application server hosts a :class:`ConsensusHost`.  A host plays three
roles for every consensus *instance* (one instance per wo-register cell):

* **acceptor** -- answers prepare/accept requests under the classic quorum
  rules (never accept below a promise, report previously accepted values),
* **proposer** -- drives an instance to a decision when the local server calls
  :meth:`ConsensusHost.propose`,
* **learner** -- records decisions and resolves the futures returned to
  proposers; decisions are disseminated with a ``decide`` broadcast and served
  to late askers.

Fast path.  The paper's analytic evaluation assumes that "in a nice run, it
takes only a round trip message for the first primary to write into the
register" (Appendix 3).  We reproduce that with a reserved ballot 0 that only
the instance's *fast-path owner* (the default primary application server) may
use: it skips the prepare phase and sends ``accept`` directly.  Safety is
preserved because ballot 0 belongs to exactly one proposer, and any acceptor
that has promised a higher ballot rejects it.

Liveness.  Competing proposers (several servers cleaning the same result after
a suspicion) retry with strictly increasing ballots and randomised backoff;
with a majority of application servers up, some proposal eventually goes
uncontested and decides.  This matches the paper's assumption set: a majority
of correct application servers and finitely many false suspicions.

Acceptor promises and learned decisions are kept in the host object across
crashes (conceptually on stable storage); in-flight proposer attempts are
volatile and die with the process, as in the paper's crash-stop model for the
middle tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.consensus.interfaces import ConsensusProtocol, InstanceId
from repro.net.message import Message, is_type
from repro.sim.process import Process
from repro.sim.scheduler import ScheduledEvent
from repro.sim.waits import SimFuture

Ballot = tuple[int, int]
"""(round number, proposer index); compared lexicographically."""

_NO_BALLOT: Ballot = (-1, -1)


@dataclass(slots=True)
class AcceptorState:
    """Durable acceptor-side state of one instance."""

    promised: Ballot = _NO_BALLOT
    accepted_ballot: Optional[Ballot] = None
    accepted_value: Any = None


@dataclass(slots=True)
class _ProposalAttempt:
    """Volatile proposer-side state of one in-flight attempt."""

    instance: InstanceId
    value: Any
    ballot: Ballot
    phase: str = "prepare"  # "prepare" | "accept"
    promises: dict[str, tuple[Optional[Ballot], Any]] = field(default_factory=dict)
    accepted_from: set[str] = field(default_factory=set)
    chosen_value: Any = None
    retry_timer: Optional[ScheduledEvent] = None
    attempt_number: int = 0
    highest_rejection: int = 0


class ConsensusHost(ConsensusProtocol):
    """Multi-instance consensus endpoint hosted on one application server.

    Parameters
    ----------
    process:
        The hosting application-server process.
    members:
        Names of *all* application servers (the acceptor group).
    fast_path_owner:
        The server allowed to use the reserved ballot 0 (the default primary);
        ``None`` disables the fast path entirely.
    retry_backoff:
        Base backoff (virtual time) between proposal attempts; the actual
        delay is randomised and grows linearly with the attempt number.
    attempt_timeout:
        Time after which an attempt that gathered no quorum is abandoned and
        retried with a higher ballot.
    """

    MSG_TYPE = "Consensus"

    def __init__(self, process: Process, members: list[str],
                 fast_path_owner: Optional[str] = None,
                 retry_backoff: float = 8.0, attempt_timeout: float = 40.0):
        if process.name not in members:
            raise ValueError(f"host {process.name!r} must be one of the members {members!r}")
        self.process = process
        self.members = list(members)
        self.fast_path_owner = fast_path_owner
        self.retry_backoff = retry_backoff
        self.attempt_timeout = attempt_timeout
        self._index = self.members.index(process.name)
        self._rng = process.rng(f"consensus:{process.name}")
        # Durable (survives crashes -- conceptually stable storage).
        self._acceptors: dict[InstanceId, AcceptorState] = {}
        self._decisions: dict[InstanceId, Any] = {}
        # Volatile.
        self._attempts: dict[InstanceId, _ProposalAttempt] = {}
        self._futures: dict[InstanceId, SimFuture] = {}
        self._attempt_counters: dict[InstanceId, int] = {}

    # ------------------------------------------------------------------ setup

    def install(self) -> None:
        """Spawn the message-dispatcher thread (call from ``on_start``)."""
        self.process.spawn(self._dispatcher(), name="consensus-dispatcher")

    def on_crash(self) -> None:
        """Drop volatile proposer state (call from the process's crash hook)."""
        for attempt in self._attempts.values():
            if attempt.retry_timer is not None:
                attempt.retry_timer.cancel()
        self._attempts.clear()
        self._futures.clear()

    # ------------------------------------------------------------ public API

    @property
    def quorum(self) -> int:
        """Majority size of the acceptor group."""
        return len(self.members) // 2 + 1

    def propose(self, instance: InstanceId, value: Any) -> SimFuture:
        if instance in self._decisions:
            # Already decided: hand back a pre-resolved future without
            # parking it in ``_futures`` (``_learn`` already drained the
            # instance's entry, and re-adding one would retain it forever).
            future = self._futures.pop(instance, SimFuture())
            future.resolve(self._decisions[instance])
            return future
        future = self._futures.get(instance)
        if future is None:
            future = SimFuture()
            self._futures[instance] = future
        if instance not in self._attempts:
            self._start_attempt(instance, value)
        return future

    def decision(self, instance: InstanceId) -> Optional[Any]:
        return self._decisions.get(instance)

    def decided_instances(self) -> list[InstanceId]:
        return list(self._decisions)

    def request_decision(self, instance: InstanceId) -> None:
        """Ask the other members whether the instance is already decided.

        Used by learners that may have missed the ``decide`` broadcast (for
        example after a recovery).  Harmless if nobody knows.
        """
        if instance in self._decisions:
            return
        self._broadcast({"instance": instance, "kind": "query"})

    # -------------------------------------------------------------- proposer

    def _start_attempt(self, instance: InstanceId, value: Any) -> None:
        counter = self._attempt_counters.get(instance, 0)
        use_fast_path = (counter == 0 and self.fast_path_owner == self.process.name)
        if use_fast_path:
            ballot: Ballot = (0, self._index)
        else:
            counter = max(counter, 0) + 1
            ballot = (counter, self._index)
        self._attempt_counters[instance] = max(counter, 1) if not use_fast_path else 1
        attempt = _ProposalAttempt(instance=instance, value=value, ballot=ballot,
                                   attempt_number=counter)
        self._attempts[instance] = attempt
        self.process.trace.record("consensus_propose", self.process.name,
                                  instance=_printable(instance), ballot=ballot,
                                  fast_path=use_fast_path)
        if use_fast_path:
            attempt.phase = "accept"
            attempt.chosen_value = value
            self._broadcast({"instance": instance, "kind": "accept",
                             "ballot": ballot, "value": value})
        else:
            attempt.phase = "prepare"
            self._broadcast({"instance": instance, "kind": "prepare", "ballot": ballot})
        self._arm_attempt_timeout(attempt)

    def _arm_attempt_timeout(self, attempt: _ProposalAttempt) -> None:
        instance = attempt.instance

        def timeout() -> None:
            if not self.process.up:
                return
            current = self._attempts.get(instance)
            if current is not attempt or instance in self._decisions:
                return
            self._retry(instance, attempt)

        attempt.retry_timer = self.process.sim.schedule(
            self.attempt_timeout, timeout, name=f"consensus-timeout:{self.process.name}"
        )

    def _retry(self, instance: InstanceId, failed: _ProposalAttempt) -> None:
        if failed.retry_timer is not None:
            failed.retry_timer.cancel()
        if instance in self._decisions or not self.process.up:
            return
        # Choose a ballot above both our own counter and any rejection we saw.
        counter = max(self._attempt_counters.get(instance, 0), failed.highest_rejection) + 1
        self._attempt_counters[instance] = counter
        delay = self._rng.uniform(0.5, 1.5) * self.retry_backoff * max(1, failed.attempt_number)

        def launch() -> None:
            if not self.process.up or instance in self._decisions:
                return
            if self._attempts.get(instance) is not failed:
                return
            ballot = (counter, self._index)
            attempt = _ProposalAttempt(instance=instance, value=failed.value, ballot=ballot,
                                       attempt_number=counter)
            self._attempts[instance] = attempt
            attempt.phase = "prepare"
            self.process.trace.record("consensus_retry", self.process.name,
                                      instance=_printable(instance), ballot=ballot)
            self._broadcast({"instance": instance, "kind": "prepare", "ballot": ballot})
            self._arm_attempt_timeout(attempt)

        self.process.sim.schedule(delay, launch, name=f"consensus-retry:{self.process.name}")

    # ------------------------------------------------------------ dispatcher

    def _dispatcher(self):
        while True:
            message = yield self.process.receive(is_type(self.MSG_TYPE))
            self._handle(message)

    def _handle(self, message: Message) -> None:
        if not self.process.up:
            return
        payload = message._payload
        kind = payload["kind"]
        instance = payload["instance"]
        sender = message.sender
        if kind == "prepare":
            self._on_prepare(instance, sender, tuple(payload["ballot"]))
        elif kind == "accept":
            self._on_accept(instance, sender, tuple(payload["ballot"]), payload["value"])
        elif kind == "promise":
            self._on_promise(instance, sender, payload)
        elif kind == "accepted":
            self._on_accepted(instance, sender, tuple(payload["ballot"]))
        elif kind in ("nack_prepare", "nack_accept"):
            self._on_nack(instance, tuple(payload["ballot"]), tuple(payload["promised"]))
        elif kind == "decide":
            self._learn(instance, payload["value"])
        elif kind == "query":
            if instance in self._decisions:
                self._send(sender, {"instance": instance, "kind": "decide",
                                    "value": self._decisions[instance]})

    # --------------------------------------------------------------- acceptor

    def _acceptor(self, instance: InstanceId) -> AcceptorState:
        state = self._acceptors.get(instance)
        if state is None:
            state = AcceptorState()
            self._acceptors[instance] = state
        return state

    def _on_prepare(self, instance: InstanceId, sender: str, ballot: Ballot) -> None:
        if instance in self._decisions:
            self._send(sender, {"instance": instance, "kind": "decide",
                                "value": self._decisions[instance]})
            return
        state = self._acceptor(instance)
        if ballot > state.promised:
            state.promised = ballot
            self._send(sender, {
                "instance": instance, "kind": "promise", "ballot": ballot,
                "accepted_ballot": state.accepted_ballot,
                "accepted_value": state.accepted_value,
            })
        else:
            self._send(sender, {"instance": instance, "kind": "nack_prepare",
                                "ballot": ballot, "promised": state.promised})

    def _on_accept(self, instance: InstanceId, sender: str, ballot: Ballot, value: Any) -> None:
        if instance in self._decisions:
            self._send(sender, {"instance": instance, "kind": "decide",
                                "value": self._decisions[instance]})
            return
        state = self._acceptor(instance)
        if ballot >= state.promised:
            state.promised = ballot
            state.accepted_ballot = ballot
            state.accepted_value = value
            self._send(sender, {"instance": instance, "kind": "accepted", "ballot": ballot})
        else:
            self._send(sender, {"instance": instance, "kind": "nack_accept",
                                "ballot": ballot, "promised": state.promised})

    # ----------------------------------------------------- proposer responses

    def _current_attempt(self, instance: InstanceId, ballot: Ballot) -> Optional[_ProposalAttempt]:
        attempt = self._attempts.get(instance)
        if attempt is None or attempt.ballot != ballot:
            return None
        return attempt

    def _on_promise(self, instance: InstanceId, sender: str, payload: dict) -> None:
        ballot = tuple(payload["ballot"])
        attempt = self._current_attempt(instance, ballot)
        if attempt is None or attempt.phase != "prepare":
            return
        accepted_ballot = payload.get("accepted_ballot")
        accepted_ballot = tuple(accepted_ballot) if accepted_ballot is not None else None
        attempt.promises[sender] = (accepted_ballot, payload.get("accepted_value"))
        if len(attempt.promises) < self.quorum:
            return
        # Quorum of promises: adopt the value accepted at the highest ballot, if any.
        best_ballot: Optional[Ballot] = None
        chosen = attempt.value
        for prior_ballot, prior_value in attempt.promises.values():
            if prior_ballot is not None and (best_ballot is None or prior_ballot > best_ballot):
                best_ballot = prior_ballot
                chosen = prior_value
        attempt.phase = "accept"
        attempt.chosen_value = chosen
        attempt.accepted_from.clear()
        self._broadcast({"instance": instance, "kind": "accept",
                         "ballot": attempt.ballot, "value": chosen})

    def _on_accepted(self, instance: InstanceId, sender: str, ballot: Ballot) -> None:
        attempt = self._current_attempt(instance, ballot)
        if attempt is None or attempt.phase != "accept":
            return
        attempt.accepted_from.add(sender)
        if len(attempt.accepted_from) < self.quorum:
            return
        self._broadcast({"instance": instance, "kind": "decide", "value": attempt.chosen_value})
        self._learn(instance, attempt.chosen_value)

    def _on_nack(self, instance: InstanceId, ballot: Ballot, promised: Ballot) -> None:
        attempt = self._current_attempt(instance, ballot)
        if attempt is None:
            return
        attempt.highest_rejection = max(attempt.highest_rejection, promised[0])
        self._retry(instance, attempt)

    # ---------------------------------------------------------------- learner

    def _learn(self, instance: InstanceId, value: Any) -> None:
        if instance not in self._decisions:
            self._decisions[instance] = value
            self.process.trace.record("consensus_decide", self.process.name,
                                      instance=_printable(instance), value=_printable(value))
        attempt = self._attempts.pop(instance, None)
        if attempt is not None and attempt.retry_timer is not None:
            attempt.retry_timer.cancel()
        future = self._futures.pop(instance, None)
        if future is not None:
            future.resolve(self._decisions[instance])
        # The decision is the only durable fact a decided instance still
        # needs: every acceptor/proposer path checks ``_decisions`` before
        # touching this state, so keeping it would only grow the host by a
        # few objects per instance for the rest of the run.
        self._acceptors.pop(instance, None)
        self._attempt_counters.pop(instance, None)

    # -------------------------------------------------------------- messaging

    def _send(self, destination: str, payload: dict) -> None:
        # Takes ownership of ``payload``: every call site passes a freshly
        # built dict, so there is nothing to defensively copy.
        self.process.send(destination, Message(self.MSG_TYPE, payload=payload))

    def _broadcast(self, payload: dict) -> None:
        # One template message, copy-on-write siblings per member: the
        # payload dict is shared (nobody mutates consensus payloads) instead
        # of duplicated per destination.
        template = Message(self.MSG_TYPE, payload=payload)
        send = self.process.send
        for member in self.members:
            send(member, template.copy())


def _printable(value: Any) -> Any:
    """Best-effort compact representation for the trace."""
    try:
        return value if isinstance(value, (int, float, str, bool, tuple)) else repr(value)
    except Exception:  # pragma: no cover - defensive
        return "<unprintable>"
