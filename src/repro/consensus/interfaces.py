"""Abstract interfaces of the consensus layer.

The paper builds its wo-registers on "a consensus protocol executed among the
application servers (e.g., [4])".  We expose consensus behind a small
interface so the wo-register layer does not care which protocol provides it;
the shipped implementation is a single-decree quorum protocol
(:mod:`repro.consensus.synod`) with a one-round-trip fast path for the default
primary, matching the paper's analytic claim that "in a nice run, it takes
only a round trip message for the first primary to write into the register".
"""

from __future__ import annotations

from typing import Any, Hashable, Optional

from repro.sim.waits import SimFuture

InstanceId = Hashable
"""Identifier of one consensus instance (one wo-register cell)."""


class ConsensusProtocol:
    """A multi-instance consensus service hosted on one application server."""

    def propose(self, instance: InstanceId, value: Any) -> SimFuture:
        """Propose ``value`` for ``instance``.

        Returns a future that resolves to the *decided* value, which is either
        ``value`` or a value proposed by another process.  Proposing again for
        a decided instance resolves immediately with the decision.
        """
        raise NotImplementedError

    def decision(self, instance: InstanceId) -> Optional[Any]:
        """The locally-known decision for ``instance``, or ``None``."""
        raise NotImplementedError

    def decided_instances(self) -> list[InstanceId]:
        """Instances whose decision this host already knows."""
        raise NotImplementedError
