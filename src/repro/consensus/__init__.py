"""Consensus among application servers (substrate for write-once registers)."""

from repro.consensus.interfaces import ConsensusProtocol, InstanceId
from repro.consensus.synod import AcceptorState, Ballot, ConsensusHost

__all__ = [
    "ConsensusProtocol",
    "ConsensusHost",
    "AcceptorState",
    "Ballot",
    "InstanceId",
]
