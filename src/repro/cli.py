"""Command-line interface for the reproduction harnesses.

Usage (any of)::

    python -m repro run "etx://a3.d1.c1?fd=heartbeat&seed=7"
    python -m repro run "etx://a3.d1.c8?rate=50&arrival=poisson&seed=7"
    python -m repro run "2pc://?workload=bank&timing=paper" --requests 3
    python -m repro run "etx://a3.d1.c2?runtime=asyncio&pace=0.2" --settle 500
    python -m repro serve "etx://a3.d1.c1?runtime=asyncio&port=7400" --only a1,a2
    python -m repro sweep "etx://d1?workload=bank" \
        --axis protocol=etx,2pc,pb --axis clients=1,4,8 --workers 4
    python -m repro figure8 --requests 5
    python -m repro figure7
    python -m repro figure1
    python -m repro ablations
    python -m repro fault-sweep --runs 20
    python -m repro soak --requests 100000
    python -m repro kernelbench --out benchmarks/out/kernel.json
    python -m repro kernelbench --alloc-only --out benchmarks/out/alloc.json
    python -m repro run "etx://a3.d1.c4?rate=40&workload=bank" --profile
    python -m repro quickstart

``run`` executes any scenario DSN (scheme = protocol: ``etx``, ``2pc``,
``pb``, ``baseline``) through the unified scenario API; ``sweep`` expands
``--axis`` grids around a base DSN and fans the grid out over worker
processes; the other sub-commands run the corresponding experiment harness
and print the regenerated table(s) to stdout.  Exit status is non-zero if the
result does not have the paper's shape (useful in CI).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import api, campaign
from repro.core import Request
from repro.experiments import (fault_sweep, figure1, figure7, figure8,
                               reshard, scaleout, soak)
from repro.experiments.ablations import asynchrony_sweep, log_cost_sweep, scaling_sweep


def _profiled(profile_arg, label: str, call):
    """Run ``call()`` under cProfile when ``--profile`` was given.

    ``profile_arg`` is ``None`` (profiling off), an empty string (write to
    the default ``benchmarks/out/<label>.pstats``), or an explicit path.
    The stats file loads with :mod:`pstats`; the top of the cumulative
    profile is printed so a quick look needs no second tool.
    """
    if profile_arg is None:
        return call()
    import cProfile
    import io
    import os
    import pstats

    path = profile_arg or os.path.join("benchmarks", "out", f"{label}.pstats")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return call()
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(20)
        print(stream.getvalue().rstrip())
        print(f"PROFILE pstats written to {path} "
              f"(inspect with: python -m pstats {path})")


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        scenario = api.Scenario.from_dsn(args.dsn)
        if args.seed is not None:
            scenario = scenario.with_(seed=_seed(args))
        if args.jobs is not None:
            scenario = scenario.with_(jobs=args.jobs)
        if args.sim_workers is not None:
            scenario = scenario.with_(workers=args.sim_workers)
        run_kwargs: dict = {}
        if args.settle is not None:
            run_kwargs["settle"] = args.settle
        if args.only:
            run_kwargs["runtime"] = _restrict_runtime(scenario, args.only)
        result = _profiled(
            args.profile, "run",
            lambda: api.run_scenario(scenario, requests=args.requests,
                                     **run_kwargs))
    except api.ScenarioError as error:
        # Bad DSNs, protocol constraints, unknown workloads: user input,
        # reported cleanly.  Anything else is a genuine bug and tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.summary())
    return 0 if result.ok else 1


def _parse_only(text: str, scenario: "api.Scenario") -> tuple[str, ...]:
    """Validate a ``--only a1,a2`` process-name list against the scenario."""
    names = tuple(name.strip() for name in text.split(",") if name.strip())
    if not names:
        raise api.ScenarioError("--only needs at least one process name")
    known = scenario.process_names
    unknown = [name for name in names if name not in known]
    if unknown:
        raise api.ScenarioError(
            f"--only names not in this scenario: {', '.join(unknown)} "
            f"(processes: {', '.join(known)})")
    return names


def _restrict_runtime(scenario: "api.Scenario", only: str):
    """The scenario's runtime spec narrowed to locally hosted processes."""
    from dataclasses import replace

    from repro.runtime.base import RUNTIME_ASYNCIO

    spec = scenario.runtime_spec
    if spec.kind != RUNTIME_ASYNCIO:
        raise api.ScenarioError(
            "--only needs runtime=asyncio in the DSN: a simulated run always "
            "hosts every process in one OS process")
    if spec.port == 0:
        raise api.ScenarioError(
            "--only needs an explicit port=N in the DSN so every OS process "
            "computes the same endpoint map (port=0 picks ephemeral ports)")
    return replace(spec, only=_parse_only(only, scenario))


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        scenario = api.Scenario.from_dsn(args.dsn)
        if args.seed is not None:
            scenario = scenario.with_(seed=_seed(args))
        runtime = _restrict_runtime(scenario, args.only)
        system = api.build(scenario, runtime=runtime)
    except api.ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    kernel = system.sim
    kernel.max_wall = None  # a server process has no per-run wall budget
    try:
        system.run(until=None)  # bind the local listeners before printing
        for name, host, port in system.network.endpoints.table():
            marker = "*" if name in runtime.only else " "
            print(f"{marker} {name:<6} {host}:{port}")
        print(f"serving {', '.join(runtime.only)}"
              + (f" for {args.run_for:g}s" if args.run_for else " (ctrl-c to stop)"),
              flush=True)
        horizon = (kernel.now + args.run_for * 1000.0 / runtime.pace
                   if args.run_for else None)
        while True:
            target = kernel.now + 60_000.0
            if horizon is not None and target >= horizon:
                system.run(until=horizon)
                break
            system.run(until=target)
    except KeyboardInterrupt:
        print("\ninterrupted; shutting down", file=sys.stderr)
    finally:
        system.close()
    return 0


def _seed(args: argparse.Namespace) -> int:
    return args.seed if args.seed is not None else 0


def _parse_axis(text: str) -> tuple[str, list]:
    """Parse one ``--axis name=v1,v2,...`` argument."""
    name, separator, tail = text.partition("=")
    name = name.strip()
    if not separator or not name or not tail:
        raise api.ScenarioError(
            f"bad axis {text!r} (expected name=value[,value...])")
    return name, [_coerce(value) for value in tail.split(",")]


def _coerce(text: str):
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        base = api.Scenario.from_dsn(args.dsn)
        if args.seed is not None:
            base = base.with_(seed=_seed(args))
        axes: dict = {}
        for axis in args.axis or []:
            name, values = _parse_axis(axis)
            if name in axes:
                raise api.ScenarioError(
                    f"axis {name!r} given twice; list all its values in one "
                    f"--axis {name}=v1,v2,...")
            axes[name] = values
        sweep = api.Sweep.over(base, **axes)
        workers = 1 if args.serial else args.workers
        result = api.run_sweep(sweep, requests=args.requests, workers=workers)
    except api.ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.to_table())
    print(f"\n{len(result)} scenario(s), "
          f"{sum(row.delivered for row in result)} requests delivered, "
          f"all ok: {result.ok}")
    return 0 if result.ok else 1


def _cmd_quickstart(args: argparse.Namespace) -> int:
    scenario = api.Scenario(protocol="etx", num_app_servers=args.app_servers,
                            num_db_servers=args.db_servers, seed=_seed(args))
    system = api.build(scenario)
    issued = system.run_request(Request("quickstart", {"n": 1}))
    report = system.check_spec()
    print(f"delivered={issued.delivered} latency={issued.latency:.1f} ms "
          f"attempts={issued.attempts}")
    print(report.summary())
    return 0 if issued.delivered and report.ok else 1


def _cmd_figure8(args: argparse.Namespace) -> int:
    report = figure8.run(requests_per_protocol=args.requests, seed=_seed(args),
                         num_app_servers=args.app_servers)
    print(report.to_table())
    print()
    print(report.compare_with_paper())
    shape = report.shape_holds()
    print(f"\nshape holds (baseline < AR < 2PC, overheads near 16%/23%): {shape}")
    return 0 if shape else 1


def _cmd_figure7(args: argparse.Namespace) -> int:
    report = figure7.run(seed=_seed(args))
    print(report.to_table())
    print()
    print("client latencies (ms):",
          {protocol: round(latency, 1) for protocol, latency in report.latencies.items()})
    if args.diagrams:
        print()
        print(report.sequence_diagrams())
    ok = report.expected_structure_holds()
    print(f"\nstructure matches the paper's diagrams: {ok}")
    return 0 if ok else 1


def _cmd_figure1(args: argparse.Namespace) -> int:
    report = figure1.run(seed=_seed(args))
    print(report.to_text())
    ok = report.all_spec_ok()
    print(f"\nall scenarios satisfy the e-Transaction specification: {ok}")
    return 0 if ok else 1


def _cmd_ablations(args: argparse.Namespace) -> int:
    print("== E5: asynchrony of the replication scheme ==")
    for point in asynchrony_sweep(seed=_seed(args)):
        print(f"  {point.label:<40} claimers={point.distinct_claimers} "
              f"aborted={point.aborted_results} safe={point.spec_ok}")
    print("\n== E7: forced-log cost sweep (AR vs 2PC) ==")
    for point in log_cost_sweep(seed=_seed(args), requests=1):
        winner = "AR" if point.ar_wins else "2PC"
        print(f"  log={point.forced_write_latency:5.1f} ms   AR={point.ar_total:6.1f}   "
              f"2PC={point.twopc_total:6.1f}   winner={winner}")
    print("\n== E8: replication-degree scaling ==")
    for point in scaling_sweep(seed=_seed(args), requests=1):
        print(f"  n={point.num_app_servers}   latency={point.mean_latency:6.1f} ms   "
              f"messages={point.total_messages}")
    return 0


def _cmd_scaleout(args: argparse.Namespace) -> int:
    report = scaleout.run(
        db_counts=tuple(args.db_counts),
        xshard_fractions=tuple(args.xshard),
        rate=args.rate, clients=args.clients, requests=args.requests,
        seed=_seed(args), workers=args.workers)
    print(f"scale-out: offered load {report.rate:g}/s over {report.clients} "
          f"client(s), {report.requests_per_client} request(s)/client")
    print()
    print(report.to_table())
    speedups = report.speedup(0.0)
    if speedups:
        print()
        print("speed-up vs d=1 at xshard=0: "
              + "   ".join(f"d={d} {s:.2f}x" for d, s in sorted(speedups.items())))
    return 0 if report.ok else 1


def _cmd_soak(args: argparse.Namespace) -> int:
    try:
        dsn = args.dsn if args.dsn is not None else soak.DEFAULT_SOAK_DSN
        scenario = api.Scenario.from_dsn(dsn)
        if args.seed is not None:
            scenario = scenario.with_(seed=_seed(args))
        if args.jobs is not None:
            scenario = scenario.with_(jobs=args.jobs)
        if args.sim_workers is not None:
            scenario = scenario.with_(workers=args.sim_workers)
        report = _profiled(
            args.profile, "soak",
            lambda: soak.run(scenario, requests=args.requests,
                             checkpoints=args.checkpoints))
    except (api.ScenarioError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
        print(f"BENCH json written to {args.json}")
    return 0 if report.ok else 1


def _cmd_reshard(args: argparse.Namespace) -> int:
    try:
        dsn = args.dsn if args.dsn is not None else reshard.DEFAULT_RESHARD_DSN
        scenario = api.Scenario.from_dsn(dsn)
        if args.seed is not None:
            scenario = scenario.with_(seed=_seed(args))
        report = reshard.run(scenario, requests=args.requests,
                             window_ms=args.window)
        if args.campaign_runs > 0:
            report.campaign = reshard.run_campaign(
                scenario, runs=args.campaign_runs, seed=args.campaign_seed,
                workers=args.workers)
    except (api.ScenarioError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    if args.json:
        import json
        import os

        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
        print(f"BENCH json written to {args.json}")
    return 0 if report.ok else 1


def _artifact_name(example: campaign.Counterexample, index: int) -> str:
    scenario = example.scenario()
    if example.kind == "certificate":
        return f"{scenario.protocol}-certificate-{index + 1}.json"
    signature = example.provenance.get("signature") or ["violation"]
    slug = "-".join(p.lower().replace(".", "") for p in signature)
    return f"{scenario.protocol}-{slug}.json"


def _cmd_campaign(args: argparse.Namespace) -> int:
    try:
        scenario = api.Scenario.from_dsn(args.dsn)
        if args.seed is not None:
            scenario = scenario.with_(seed=_seed(args))
        budget = campaign.CampaignBudget(
            max_runs=args.budget, population=args.population,
            stop_after=args.stop_after, shrink_checks=args.shrink_checks,
            horizon=args.horizon, settle=args.settle)
        report = campaign.run_campaign(scenario, budget=budget,
                                       seed=args.campaign_seed,
                                       workers=args.workers)
    except (api.ScenarioError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    if args.out:
        import os

        try:
            os.makedirs(args.out, exist_ok=True)
            written = []
            for index, example in enumerate(report.counterexamples
                                            + report.certificates):
                path = os.path.join(args.out, _artifact_name(example, index))
                written.append(example.save(path))
        except OSError as error:
            # The search results are already printed above; the write
            # failure must not traceback over them.
            print(f"error: cannot write artifacts: {error}", file=sys.stderr)
            return 2
        print(f"\n{len(written)} artifact(s) written to {args.out}")
    if args.expect == "violation":
        return 0 if report.counterexamples else 1
    if args.expect == "clean":
        return 0 if report.clean else 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        if "://" in args.source:
            # A scenario DSN (possibly referencing a faults=@sidecar): treat
            # it as a certificate claim -- the run must be spec-clean.
            example = campaign.Counterexample(
                dsn=args.source, kind="certificate",
                requests=args.requests, horizon=args.horizon,
                settle=args.settle)
            result = campaign.replay(example)
        else:
            result = campaign.replay(args.source)
    except (api.ScenarioError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.summary())
    return 0 if result.matches else 1


def _cmd_kernelbench(args: argparse.Namespace) -> int:
    from repro.sim import bench

    if args.alloc_only:
        payload = {}
    else:
        payload = bench.run_kernel_bench(ops=args.ops, repeats=args.repeats)
        print(bench.format_report(payload))
    if args.parallel:
        parallel = bench.run_parallel_bench(requests=args.parallel_requests)
        payload["parallel"] = parallel
        print(bench.format_parallel_report(parallel))
    if args.alloc or args.alloc_only:
        alloc = bench.run_alloc_bench()
        payload["alloc"] = alloc
        print(bench.format_alloc_report(alloc))
    if args.out:
        import json
        import os

        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"BENCH json written to {args.out}")
    return 0


def _cmd_fault_sweep(args: argparse.Namespace) -> int:
    result = fault_sweep.run(num_runs=args.runs, seed=_seed(args),
                             allow_client_crash=args.client_crashes)
    print(result.summary())
    for violation in result.violations:
        print(" ", violation)
    return 0 if result.all_safe else 1


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harnesses for 'Implementing e-Transactions with "
                    "Asynchronous Replication' (DSN 2000)")
    parser.add_argument("--seed", type=int, default=None,
                        help="simulation seed (for `run`, overrides the DSN's seed)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run any scenario DSN "
                                     "(e.g. etx://a3.d1.c1?fd=heartbeat&seed=7)")
    run.add_argument("dsn", help="scenario DSN; schemes: "
                                 + ", ".join(api.known_schemes()))
    run.add_argument("--requests", type=int, default=1,
                     help="requests to issue per client (default 1)")
    run.add_argument("--settle", type=float, default=None,
                     help="virtual ms of cleanup time after the last delivery "
                          "(default 5000; lower it for paced asyncio runs)")
    run.add_argument("--only", default=None, metavar="NAME[,NAME...]",
                     help="host only these processes locally (distributed "
                          "runtime=asyncio runs; peers must be served "
                          "elsewhere with `repro serve`)")
    run.add_argument("--jobs", type=int, default=None,
                     help="shard the simulation over N server shards "
                          "(overrides the DSN's jobs=; traces stay "
                          "byte-identical to the serial run)")
    run.add_argument("--workers", dest="sim_workers", type=int, default=None,
                     help="execute the shards on N forked worker processes "
                          "(overrides the DSN's workers=; requires --jobs)")
    run.add_argument("--profile", nargs="?", const="", default=None,
                     metavar="PATH",
                     help="run under cProfile; write pstats to PATH (default "
                          "benchmarks/out/run.pstats) and print the top of "
                          "the cumulative profile")
    run.set_defaults(func=_cmd_run)

    serve = sub.add_parser(
        "serve", help="host a subset of a runtime=asyncio scenario's processes "
                      "over TCP (one OS process per subset)")
    serve.add_argument("dsn", help="scenario DSN with runtime=asyncio and an "
                                   "explicit port=N")
    serve.add_argument("--only", required=True, metavar="NAME[,NAME...]",
                       help="process names this OS process hosts, e.g. a1,a2")
    serve.add_argument("--for", dest="run_for", type=float, default=None,
                       metavar="SECONDS",
                       help="serve for this many wall seconds, then exit "
                            "(default: until interrupted)")
    serve.set_defaults(func=_cmd_serve)

    sweep = sub.add_parser(
        "sweep", help="expand --axis grids around a base DSN and run them "
                      "on a worker-process pool")
    sweep.add_argument("dsn", help="base scenario DSN the axes are applied to")
    sweep.add_argument("--axis", action="append", metavar="NAME=V1,V2,...",
                       help="one sweep axis (repeatable), e.g. "
                            "protocol=etx,2pc,pb or clients=1,4,8")
    sweep.add_argument("--requests", type=int, default=1,
                       help="requests per client and scenario (default 1)")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: one per scenario, "
                            "capped at the core count)")
    sweep.add_argument("--serial", action="store_true",
                       help="run in-process, single worker (same results)")
    sweep.set_defaults(func=_cmd_sweep)

    quickstart = sub.add_parser("quickstart", help="run one e-Transaction and check the spec")
    quickstart.add_argument("--app-servers", type=int, default=3)
    quickstart.add_argument("--db-servers", type=int, default=1)
    quickstart.set_defaults(func=_cmd_quickstart)

    fig8 = sub.add_parser("figure8", help="latency table (baseline / AR / 2PC)")
    fig8.add_argument("--requests", type=int, default=5,
                      help="closed-loop transactions per protocol")
    fig8.add_argument("--app-servers", type=int, default=3)
    fig8.set_defaults(func=_cmd_figure8)

    fig7 = sub.add_parser("figure7", help="communication steps of the four protocols")
    fig7.add_argument("--diagrams", action="store_true",
                      help="also print the message-sequence listings")
    fig7.set_defaults(func=_cmd_figure7)

    fig1 = sub.add_parser("figure1", help="the four e-Transaction executions")
    fig1.set_defaults(func=_cmd_figure1)

    ablations = sub.add_parser("ablations", help="asynchrony, log-cost and scaling sweeps")
    ablations.set_defaults(func=_cmd_ablations)

    scale = sub.add_parser(
        "scaleout", help="throughput vs database-tier size at fixed offered "
                         "load (partitioned placement)")
    scale.add_argument("--db-counts", type=int, nargs="+", default=[1, 2, 4, 8],
                       help="database-tier sizes to measure (default 1 2 4 8)")
    scale.add_argument("--xshard", type=float, nargs="+", default=[0.0, 0.25],
                       help="cross-shard fractions, one curve each")
    scale.add_argument("--rate", type=float, default=16.0,
                       help="offered load in requests/s of virtual time")
    scale.add_argument("--clients", type=int, default=12)
    scale.add_argument("--requests", type=int, default=4,
                       help="arrivals per client and grid point")
    scale.add_argument("--workers", type=int, default=1,
                       help="worker processes for the grid")
    scale.set_defaults(func=_cmd_scaleout)

    soak_cmd = sub.add_parser(
        "soak", help="sustained open-loop run, spec-checked online, with "
                     "bounded observability memory (trace=ring:N/off)")
    soak_cmd.add_argument("dsn", nargs="?", default=None,
                          help="open-loop scenario DSN (default: the standard "
                               "sharded soak deployment)")
    soak_cmd.add_argument("--requests", type=int, default=100_000,
                          help="total offered requests (default 100000)")
    soak_cmd.add_argument("--checkpoints", type=int, default=20,
                          help="observability samples taken during the run")
    soak_cmd.add_argument("--json", default=None, metavar="PATH",
                          help="also write the machine-readable report here")
    soak_cmd.add_argument("--jobs", type=int, default=None,
                          help="shard the simulation over N server shards "
                               "(overrides the DSN's jobs=)")
    soak_cmd.add_argument("--workers", dest="sim_workers", type=int,
                          default=None,
                          help="execute the shards on N forked worker "
                               "processes (overrides the DSN's workers=)")
    soak_cmd.add_argument("--profile", nargs="?", const="", default=None,
                          metavar="PATH",
                          help="run under cProfile; write pstats to PATH "
                               "(default benchmarks/out/soak.pstats) and "
                               "print the top of the cumulative profile")
    soak_cmd.set_defaults(func=_cmd_soak)

    reshard_cmd = sub.add_parser(
        "reshard", help="grow the data tier online under open-loop load, "
                        "then aim a fault campaign at the migration window")
    reshard_cmd.add_argument("dsn", nargs="?", default=None,
                             help="open-loop scenario DSN with a "
                                  "reshard@T:dX->dY fault (default: the "
                                  "standard d4->d8 growth)")
    reshard_cmd.add_argument("--requests", type=int, default=15,
                             help="arrivals per client (default 15)")
    reshard_cmd.add_argument("--window", type=float, default=2_000.0,
                             help="throughput window width in virtual ms "
                                  "(default 2000)")
    reshard_cmd.add_argument("--campaign-runs", type=int, default=0,
                             help="fault schedules to aim at the migration "
                                  "window (default 0: skip the campaign)")
    reshard_cmd.add_argument("--campaign-seed", type=int, default=0,
                             help="master seed of the schedule search")
    reshard_cmd.add_argument("--workers", type=int, default=1,
                             help="worker processes for the campaign")
    reshard_cmd.add_argument("--json", default=None, metavar="PATH",
                             help="also write the machine-readable report here")
    reshard_cmd.set_defaults(func=_cmd_reshard)

    kbench = sub.add_parser(
        "kernelbench", help="event-queue microbenchmarks: timer-wheel kernel "
                            "vs the frozen heap kernel")
    kbench.add_argument("--ops", type=int, default=200_000,
                        help="scheduler operations per scenario (default 200000)")
    kbench.add_argument("--repeats", type=int, default=3,
                        help="measurements per scenario, best kept (default 3)")
    kbench.add_argument("--out", default=None, metavar="PATH",
                        help="also write the machine-readable BENCH json here")
    kbench.add_argument("--parallel", action="store_true",
                        help="also time the 8-shard soak shape serial vs "
                             "sharded vs forked workers")
    kbench.add_argument("--parallel-requests", type=int, default=2000,
                        help="requests for the --parallel scenario "
                             "(default 2000)")
    kbench.add_argument("--alloc", action="store_true",
                        help="also measure allocated-blocks-per-event on the "
                             "traffic and soak shapes (sys.getallocatedblocks "
                             "deltas, gc disabled)")
    kbench.add_argument("--alloc-only", action="store_true",
                        help="measure only the allocation benchmark (skip "
                             "the scheduler microbenchmarks)")
    kbench.set_defaults(func=_cmd_kernelbench)

    sweep = sub.add_parser("fault-sweep", help="random fault schedules, spec-checked")
    sweep.add_argument("--runs", type=int, default=10)
    sweep.add_argument("--client-crashes", action="store_true",
                       help="let the client crash too (at-most-once runs)")
    sweep.set_defaults(func=_cmd_fault_sweep)

    camp = sub.add_parser(
        "campaign", help="adversarial fault-space search: window-targeted "
                         "schedules, spec-checked, counterexamples shrunk")
    camp.add_argument("dsn", help="base scenario DSN (its faults are ignored; "
                                  "the campaign generates its own)")
    camp.add_argument("--budget", type=int, default=200,
                      help="max search evaluations (default 200)")
    camp.add_argument("--population", type=int, default=12,
                      help="schedules per generation (default 12)")
    camp.add_argument("--stop-after", type=int, default=2,
                      help="distinct violation signatures before the search "
                           "stops early (default 2)")
    camp.add_argument("--shrink-checks", type=int, default=60,
                      help="oracle re-runs allowed per counterexample shrink")
    camp.add_argument("--horizon", type=float, default=120_000.0,
                      help="virtual-ms horizon per request (default 120000)")
    camp.add_argument("--settle", type=float, default=20_000.0,
                      help="virtual ms of cleanup time after the last delivery")
    camp.add_argument("--workers", type=int, default=1,
                      help="worker processes for each generation (default 1)")
    camp.add_argument("--campaign-seed", type=int, default=0,
                      help="master seed of the schedule search (default 0)")
    camp.add_argument("--out", default=None, metavar="DIR",
                      help="write counterexample/certificate artifacts here")
    camp.add_argument("--expect", choices=["violation", "clean"], default=None,
                      help="exit non-zero unless the campaign found a "
                           "violation / stayed clean (for CI)")
    camp.set_defaults(func=_cmd_campaign)

    rep = sub.add_parser(
        "replay", help="re-run a saved campaign artifact (or assert a DSN "
                       "runs spec-clean) deterministically")
    rep.add_argument("source", help="a .json artifact path, or a scenario DSN "
                                    "to assert clean")
    rep.add_argument("--requests", type=int, default=1,
                     help="requests per client (bare-DSN replays only; an "
                          "artifact replays with its recorded parameters)")
    rep.add_argument("--horizon", type=float, default=120_000.0,
                     help="virtual-ms horizon per request (bare-DSN replays "
                          "only)")
    rep.add_argument("--settle", type=float, default=20_000.0,
                     help="virtual ms of post-delivery cleanup time "
                          "(bare-DSN replays only)")
    rep.set_defaults(func=_cmd_replay)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
