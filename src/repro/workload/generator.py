"""Request generators and a closed-loop driver.

The paper measures a closed loop: one client issuing identical transactions
back to back and recording the response time of each.  :class:`ClosedLoopDriver`
reproduces that pattern against any deployment exposing ``issue``/``sim``; the
request stream comes from a workload's ``random_request`` or from an explicit
list.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.core.types import Request


@dataclass
class RequestStream:
    """A reproducible stream of requests drawn from a workload."""

    factory: Callable[[random.Random], Request]
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def take(self, count: int) -> list[Request]:
        """The next ``count`` requests of the stream."""
        return [self.factory(self._rng) for _ in range(count)]

    def __iter__(self):
        while True:
            yield self.factory(self._rng)


@dataclass
class RunStatistics:
    """Latency statistics of a closed-loop run."""

    latencies: list[float] = field(default_factory=list)
    attempts: list[int] = field(default_factory=list)
    undelivered: int = 0

    @property
    def count(self) -> int:
        """Number of delivered requests."""
        return len(self.latencies)

    @property
    def mean_latency(self) -> float:
        """Mean client-observed latency."""
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def max_latency(self) -> float:
        """Worst client-observed latency."""
        return max(self.latencies) if self.latencies else 0.0

    @property
    def mean_attempts(self) -> float:
        """Mean number of intermediate results per request."""
        return sum(self.attempts) / len(self.attempts) if self.attempts else 0.0

    def percentile(self, fraction: float) -> float:
        """Latency percentile (``fraction`` in [0, 1])."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
        return ordered[index]


class ClosedLoopDriver:
    """Issue requests one at a time through a deployment and collect statistics."""

    def __init__(self, deployment: Any, horizon_per_request: float = 1_000_000.0):
        self.deployment = deployment
        self.horizon_per_request = horizon_per_request

    def run(self, requests: Sequence[Request], client: Optional[str] = None) -> RunStatistics:
        """Issue ``requests`` sequentially, waiting for each to deliver."""
        stats = RunStatistics()
        for request in requests:
            issued = self.deployment.issue(request, client) if client is not None \
                else self.deployment.issue(request)
            delivered = self.deployment.sim.run_until(
                lambda: issued.delivered,
                until=self.deployment.sim.now + self.horizon_per_request,
            )
            if delivered and issued.latency is not None:
                stats.latencies.append(issued.latency)
                stats.attempts.append(issued.attempts)
            else:
                stats.undelivered += 1
        return stats
