"""Load generators: request streams, traffic shapes and run statistics.

The paper measures a closed loop -- one client issuing identical transactions
back to back -- and that is the :class:`ClosedLoop` generator with one client.
The traffic engine generalises it to every client of a deployment at once:

* :class:`ClosedLoop` drives *every* client concurrently in virtual time; each
  client issues its next request as soon as the previous one delivered (plus
  an optional think time).  Offered load adapts to the system's speed.
* :class:`OpenLoop` injects requests at a target arrival rate (Poisson or
  uniform arrivals) independent of completions, round-robined over the
  clients.  Offered load is fixed; queueing shows up as response time.

Both shapes return a :class:`RunStatistics` with throughput, interpolated
percentiles and per-client breakdowns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

from repro.core.types import ABORT, COMMIT, Request
from repro.metrics.percentiles import percentile as _interpolated_percentile

ARRIVAL_POISSON = "poisson"
ARRIVAL_UNIFORM = "uniform"

ARRIVAL_PROCESSES = (ARRIVAL_POISSON, ARRIVAL_UNIFORM)


@dataclass
class RequestStream:
    """A reproducible stream of requests drawn from a workload."""

    factory: Callable[[random.Random], Request]
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def take(self, count: int) -> list[Request]:
        """The next ``count`` requests of the stream."""
        return [self.factory(self._rng) for _ in range(count)]

    def __iter__(self):
        while True:
            yield self.factory(self._rng)


@dataclass
class DatabaseStatistics:
    """Per-database (shard) outcome counters of one run.

    ``commits``/``aborts`` count ``Decide`` outcomes applied at the database;
    ``in_doubt`` is the number of transactions still prepared-but-undecided
    when the measurement ended.  On a partitioned tier these make shard
    imbalance visible without reading traces.
    """

    commits: int = 0
    aborts: int = 0
    in_doubt: int = 0


@dataclass
class RunStatistics:
    """Latency and throughput statistics of one load-generation run.

    ``latencies`` are client-observed response times in virtual milliseconds
    (for an open loop they include the time a request queued at its client);
    ``service_latencies`` exclude that queueing -- they are what the protocol
    itself cost, the right input for latency-component breakdowns.  For a
    closed loop the two coincide.  ``elapsed`` is the virtual time the
    measurement covered; ``by_client`` holds one leaf :class:`RunStatistics`
    per driven client.
    """

    latencies: list[float] = field(default_factory=list)
    service_latencies: list[float] = field(default_factory=list)
    attempts: list[int] = field(default_factory=list)
    undelivered: int = 0
    aborted_results: int = 0
    elapsed: float = 0.0
    by_client: dict[str, "RunStatistics"] = field(default_factory=dict)
    by_database: dict[str, DatabaseStatistics] = field(default_factory=dict)
    #: Round-engine counters: ``jobs``, ``workers``, ``rounds``,
    #: ``stalled_windows``, per-shard ``events`` and a load-``balance``
    #: ratio.  A serial run emits the same keys zeroed (``jobs == 0``), so
    #: downstream consumers (soak reports, dashboards) see one schema on
    #: both paths.  ``None`` only on hand-built instances.
    parallel: Optional[dict[str, Any]] = None
    #: Admission-control counters of the application tier: ``shed_messages``
    #: (messages refused at a full mailbox) and ``mailbox_peak`` (highest
    #: backlog any one server reached).  Zeros when no bound is configured
    #: or the deployment has no admission control.
    saturation: dict[str, int] = field(default_factory=dict)

    @property
    def count(self) -> int:
        """Number of delivered requests."""
        return len(self.latencies)

    @property
    def mean_latency(self) -> float:
        """Mean client-observed latency."""
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def max_latency(self) -> float:
        """Worst client-observed latency."""
        return max(self.latencies) if self.latencies else 0.0

    @property
    def mean_service_latency(self) -> float:
        """Mean protocol-only latency (no client-side queueing)."""
        if not self.service_latencies:
            return self.mean_latency
        return sum(self.service_latencies) / len(self.service_latencies)

    @property
    def mean_attempts(self) -> float:
        """Mean number of intermediate results per request."""
        return sum(self.attempts) / len(self.attempts) if self.attempts else 0.0

    @property
    def throughput(self) -> float:
        """Delivered requests per *second* of virtual time."""
        if self.elapsed <= 0.0:
            return 0.0
        return self.count / (self.elapsed / 1000.0)

    def percentile(self, fraction: float) -> float:
        """Linear-interpolation latency percentile (``fraction`` in [0, 1])."""
        return _interpolated_percentile(self.latencies, fraction)

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        """95th-percentile latency."""
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        """99th-percentile latency."""
        return self.percentile(0.99)

    def merge(self, client: str, other: "RunStatistics") -> None:
        """Fold one client's leaf statistics into this aggregate."""
        self.latencies.extend(other.latencies)
        self.service_latencies.extend(other.service_latencies)
        self.attempts.extend(other.attempts)
        self.undelivered += other.undelivered
        self.aborted_results += other.aborted_results
        self.by_client[client] = other


class LoadGenerator:
    """Base class of the traffic shapes.

    A generator drives a deployment (anything exposing ``sim``, ``clients``
    and ``issue``, i.e. :class:`~repro.api.drivers.RunningSystem` or a raw
    deployment) and collects a :class:`RunStatistics`.

    Parameters
    ----------
    clients:
        Which clients to drive: ``None`` for every client of the deployment,
        an ``int`` for the first N, or an explicit sequence of names.
    horizon_per_request:
        Virtual-time budget per planned request; the run stops at
        ``start + horizon_per_request * total_requests`` even if some
        requests never delivered.
    max_events:
        Simulator-callback budget of the run (the livelock guard); soak runs
        with hundreds of thousands of requests need more than the default.
    """

    def __init__(self, clients: Union[None, int, Sequence[str]] = None,
                 horizon_per_request: float = 1_000_000.0,
                 max_events: int = 5_000_000):
        self.clients = clients
        self.horizon_per_request = horizon_per_request
        self.max_events = max_events

    # ------------------------------------------------------------------ plan

    def _client_names(self, deployment: Any) -> list[str]:
        names = list(deployment.clients)
        if self.clients is None:
            return names
        if isinstance(self.clients, int):
            if not 1 <= self.clients <= len(names):
                raise ValueError(f"deployment has {len(names)} client(s), "
                                 f"cannot drive {self.clients}")
            return names[:self.clients]
        unknown = [name for name in self.clients if name not in deployment.clients]
        if unknown:
            raise ValueError(f"unknown client(s) {unknown} "
                             f"(deployment has {names})")
        return list(self.clients)

    def _plan(self, deployment: Any, requests: Union[int, Sequence[Request]],
              request_factory: Optional[Callable[[], Request]] = None
              ) -> dict[str, list[Request]]:
        """Assign concrete requests to clients.

        An ``int`` means that many requests *per client*, created by
        ``request_factory`` (default: the deployment's ``standard_request``).
        An explicit sequence is dealt round-robin over the driven clients.
        """
        names = self._client_names(deployment)
        if isinstance(requests, int):
            if requests < 0:
                raise ValueError(f"negative request count: {requests}")
            factory = request_factory
            if factory is None:
                factory = getattr(deployment, "standard_request", None)
            if factory is None and requests > 0:
                raise ValueError("an int request count needs a request_factory "
                                 "(or a deployment with standard_request)")
            return {name: [factory() for _ in range(requests)] for name in names}
        plan: dict[str, list[Request]] = {name: [] for name in names}
        for index, request in enumerate(requests):
            plan[names[index % len(names)]].append(request)
        return plan

    # ------------------------------------------------------------------- run

    def run(self, deployment: Any, requests: Union[int, Sequence[Request]],
            request_factory: Optional[Callable[[], Request]] = None) -> RunStatistics:
        """Drive ``deployment`` with this traffic shape and collect statistics."""
        raise NotImplementedError

    def _collect(self, deployment: Any, start: float,
                 issued_by_client: dict[str, list[Any]],
                 planned_by_client: dict[str, int]) -> RunStatistics:
        """Aggregate per-client and overall statistics after the run."""
        stats = RunStatistics(elapsed=deployment.sim.now - start)
        for client, issued_list in issued_by_client.items():
            leaf = RunStatistics(elapsed=stats.elapsed)
            for issued in issued_list:
                leaf.aborted_results += len(issued.aborted_results)
                latency = self._latency_of(issued)
                if issued.delivered and latency is not None:
                    leaf.latencies.append(latency)
                    if issued.latency is not None:
                        leaf.service_latencies.append(issued.latency)
                    leaf.attempts.append(issued.attempts)
                else:
                    leaf.undelivered += 1
            # Planned requests that were never issued (e.g. the client
            # crashed mid-run) still count as undelivered offered load.
            leaf.undelivered += planned_by_client[client] - len(issued_list)
            stats.merge(client, leaf)
        self._collect_databases(deployment, stats)
        inner = getattr(deployment, "deployment", deployment)
        probe = getattr(inner, "parallel_stats", None)
        if callable(probe):
            stats.parallel = probe()
        else:
            # Schema parity with the jobs= path: a serial run emits the same
            # keys, zeroed, so soak.json consumers never KeyError on them.
            stats.parallel = {"jobs": 0, "workers": 0, "rounds": 0,
                              "stalled_windows": 0, "events": {},
                              "balance": 1.0}
        saturation = getattr(inner, "saturation_stats", None)
        stats.saturation = (saturation() if callable(saturation)
                            else {"shed_messages": 0, "mailbox_peak": 0})
        return stats

    @staticmethod
    def _collect_databases(deployment: Any, stats: RunStatistics) -> None:
        """Fill the per-database commit/abort/in-doubt counters from the run.

        Counts distinct *transactions*, not ``Decide`` applications: a lost
        acknowledgement or a database recovery makes the protocol re-send the
        same decision, and each re-application records another ``db_decide``
        event.  A transaction that was first refused (abort) and later, after
        re-execution, committed counts once, as a commit.

        Deployments that attached a
        :class:`~repro.metrics.stream.DatabaseOutcomeStream` at build time
        (all the built-in ones do) are read from that streaming accumulator;
        otherwise the counters fall back to scanning the stored trace, which
        requires ``full`` retention.
        """
        db_servers = getattr(deployment, "db_servers", None)
        if not db_servers:
            return
        outcomes = getattr(deployment, "db_outcomes", None)
        if outcomes is not None:
            for name, server in db_servers.items():
                stats.by_database[name] = DatabaseStatistics(
                    commits=outcomes.commits(name),
                    aborts=outcomes.aborts(name),
                    in_doubt=len(server.in_doubt()))
            return
        trace = getattr(deployment, "trace", None)
        if trace is None:
            return
        for name, server in db_servers.items():
            committed = {e.get("j") for e in trace.select("db_decide", name,
                                                          outcome=COMMIT)}
            aborted = {e.get("j") for e in trace.select("db_decide", name,
                                                        outcome=ABORT)}
            stats.by_database[name] = DatabaseStatistics(
                commits=len(committed),
                aborts=len(aborted - committed),
                in_doubt=len(server.in_doubt()))

    def _latency_of(self, issued: Any) -> Optional[float]:
        """Which latency a delivered request contributes (shape-specific)."""
        return issued.latency


class ClosedLoop(LoadGenerator):
    """Every driven client issues its next request when the previous delivered.

    ``think_time`` inserts a virtual-time pause between a delivery and the
    next issue (the classic interactive-user model); ``0`` reproduces the
    paper's back-to-back measurement loop.
    """

    def __init__(self, clients: Union[None, int, Sequence[str]] = None,
                 think_time: float = 0.0,
                 horizon_per_request: float = 1_000_000.0,
                 max_events: int = 5_000_000):
        super().__init__(clients=clients, horizon_per_request=horizon_per_request,
                         max_events=max_events)
        if think_time < 0:
            raise ValueError(f"negative think time: {think_time}")
        self.think_time = think_time

    def run(self, deployment: Any, requests: Union[int, Sequence[Request]],
            request_factory: Optional[Callable[[], Request]] = None) -> RunStatistics:
        sim = deployment.sim
        plan = self._plan(deployment, requests, request_factory)
        queues = {name: list(reqs) for name, reqs in plan.items()}
        planned = {name: len(reqs) for name, reqs in plan.items()}
        total = sum(planned.values())
        issued_by_client: dict[str, list[Any]] = {name: [] for name in plan}
        done = [0]
        start = sim.now

        def issue_next(client: str) -> None:
            queue = queues[client]
            if not queue:
                return
            if not deployment.clients[client].up:
                # Lost offered load (the client crashed): account it as
                # "done" so the run terminates; _collect reports it as
                # undelivered because the requests were never issued.
                done[0] += len(queue)
                queue.clear()
                return
            request = queue.pop(0)
            issued = deployment.issue(request, client)
            issued_by_client[client].append(issued)

            def on_delivered(_result: Any) -> None:
                done[0] += 1
                if self.think_time > 0:
                    sim.schedule(self.think_time, lambda: issue_next(client),
                                 name=f"{client}:think")
                else:
                    issue_next(client)

            issued.future.on_resolve(on_delivered)

        for client in plan:
            issue_next(client)
        if total:
            sim.run_until(lambda: done[0] >= total,
                          until=start + self.horizon_per_request * total,
                          max_events=self.max_events)
        return self._collect(deployment, start, issued_by_client, planned)


class OpenLoop(LoadGenerator):
    """Inject requests at a fixed arrival rate, independent of completions.

    Parameters
    ----------
    rate:
        Target arrival rate in requests per *second* of virtual time.
    arrival:
        ``"poisson"`` (exponential inter-arrivals) or ``"uniform"``
        (evenly spaced).  Arrival draws come from the simulator's
        deterministic ``load.arrivals`` stream, so a given deployment seed
        always produces the same arrival process.
    drain:
        Whether to keep running (up to the horizon) after the last arrival so
        in-flight requests can finish; ``False`` cuts the measurement at the
        last arrival.

    Arrivals are assigned to the driven clients round-robin.  A client
    processes its requests one at a time, so when arrivals outpace service
    the surplus queues at the client and the measured response time
    (arrival to delivery, :attr:`IssuedRequest.sojourn`) grows -- exactly the
    open-loop behaviour a closed loop cannot show.
    """

    def __init__(self, rate: float, arrival: str = ARRIVAL_POISSON,
                 clients: Union[None, int, Sequence[str]] = None,
                 drain: bool = True,
                 horizon_per_request: float = 1_000_000.0,
                 max_events: int = 5_000_000):
        super().__init__(clients=clients, horizon_per_request=horizon_per_request,
                         max_events=max_events)
        if rate <= 0:
            raise ValueError(f"open-loop rate must be positive, got {rate}")
        if arrival not in ARRIVAL_PROCESSES:
            raise ValueError(f"unknown arrival process {arrival!r}; "
                             f"expected one of {ARRIVAL_PROCESSES}")
        self.rate = rate
        self.arrival = arrival
        self.drain = drain

    def _interarrivals(self, rng: random.Random, count: int) -> list[float]:
        mean = 1000.0 / self.rate  # virtual milliseconds between arrivals
        if self.arrival == ARRIVAL_UNIFORM:
            return [mean] * count
        return [rng.expovariate(1.0 / mean) for _ in range(count)]

    def run(self, deployment: Any, requests: Union[int, Sequence[Request]],
            request_factory: Optional[Callable[[], Request]] = None) -> RunStatistics:
        sim = deployment.sim
        plan = self._plan(deployment, requests, request_factory)
        planned = {name: len(reqs) for name, reqs in plan.items()}
        total = sum(planned.values())
        issued_by_client: dict[str, list[Any]] = {name: [] for name in plan}
        done = [0]
        start = sim.now

        # One global arrival process, dealt over the clients round-robin in
        # a fixed order so the schedule is deterministic.
        arrivals: list[tuple[str, Request]] = []
        for index in range(max(planned.values(), default=0)):
            for client, queue in plan.items():
                if index < len(queue):
                    arrivals.append((client, queue[index]))
        rng = sim.rng("load.arrivals")
        clock = 0.0

        def inject(client: str, request: Request) -> None:
            if not deployment.clients[client].up:
                # Lost offered load (the client is down): count it as done
                # so the run terminates; _collect reports it as undelivered.
                done[0] += 1
                return
            issued = deployment.issue(request, client)
            issued_by_client[client].append(issued)
            issued.future.on_resolve(lambda _result: done.__setitem__(0, done[0] + 1))

        for delay, (client, request) in zip(self._interarrivals(rng, total), arrivals):
            clock += delay
            sim.schedule(clock, lambda c=client, r=request: inject(c, r),
                         name=f"{client}:arrival")
        if total:
            deadline = (start + self.horizon_per_request * total) if self.drain \
                else start + clock
            sim.run_until(lambda: done[0] >= total, until=deadline,
                          max_events=self.max_events)
        return self._collect(deployment, start, issued_by_client, planned)

    def _latency_of(self, issued: Any) -> Optional[float]:
        # Open-loop response time includes the queueing delay at the client.
        return issued.sojourn
