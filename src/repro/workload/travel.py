"""Travel-booking workload (the paper's motivating example).

"In the case of a travel application for instance, the request typically
indicates a travel destination, the travel dates, together with some
information about hotel category, the size of a car to rent, etc.  A
corresponding result typically contains information about a flight
reservation, a hotel name and address, the name of a car company."

The workload keeps seat/room/car inventories in the database and books one of
each per request.  When some leg is sold out, the business logic returns a
``sold_out`` result -- the paper's user-level abort, which is a *regular*
result value (the user is told about the problem) rather than a protocol
failure.

Sharding.  With ``shard_tags=True`` every key of a destination carries that
destination as its placement hash tag (``flight:{PAR}:seats``), so all of a
city's inventory is colocated on one shard and a single-city booking is a
single-shard transaction; the booking counter becomes per-city for the same
reason.  :meth:`TravelWorkload.sharded_requests` mixes single-city bookings
with two-city *tours* (flight at each city) at a tunable cross-shard
fraction.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Callable

from repro.core.sharding import Sharding
from repro.core.types import Request

BOOK_TRIP = "book_trip"
BOOK_TOUR = "book_tour"


class TravelWorkload:
    """Flights, hotels and rental cars with finite inventory."""

    def __init__(self, destinations: tuple[str, ...] = ("PAR", "NYC", "TYO"),
                 seats_per_flight: int = 5, rooms_per_hotel: int = 5,
                 cars_per_city: int = 5, shard_tags: bool = False):
        if not destinations:
            raise ValueError("need at least one destination")
        self.destinations = tuple(destinations)
        self.seats_per_flight = seats_per_flight
        self.rooms_per_hotel = rooms_per_hotel
        self.cars_per_city = cars_per_city
        self.shard_tags = shard_tags

    # ------------------------------------------------------------------- keys

    def _tag(self, city: str) -> str:
        return f"{{{city}}}" if self.shard_tags else city

    def seats_key(self, city: str) -> str:
        """Inventory key of the flight seats to ``city``."""
        return f"flight:{self._tag(city)}:seats"

    def rooms_key(self, city: str) -> str:
        """Inventory key of the hotel rooms in ``city``."""
        return f"hotel:{self._tag(city)}:rooms"

    def cars_key(self, city: str) -> str:
        """Inventory key of the rental cars in ``city``."""
        return f"car:{self._tag(city)}:available"

    def bookings_key(self, city: str) -> str:
        """Key of the booking counter (per city when sharded, else global)."""
        return f"bookings:{self._tag(city)}:count" if self.shard_tags else "bookings:count"

    def city_keys(self, city: str) -> list[str]:
        """Every key a single-city booking may touch."""
        return [self.seats_key(city), self.rooms_key(city), self.cars_key(city),
                self.bookings_key(city)]

    # ------------------------------------------------------------------- data

    def initial_data(self) -> dict[str, Any]:
        """Initial inventory: seats, rooms and cars per destination."""
        data: dict[str, Any] = {}
        for city in self.destinations:
            data[self.seats_key(city)] = self.seats_per_flight
            data[self.rooms_key(city)] = self.rooms_per_hotel
            data[self.cars_key(city)] = self.cars_per_city
            data[self.bookings_key(city)] = 0
        return data

    # --------------------------------------------------------------- requests

    def book(self, destination: str, traveller: str = "guest",
             need_car: bool = True, participants: tuple[str, ...] = ()) -> Request:
        """A request booking flight + hotel (+ optional car) to ``destination``."""
        if destination not in self.destinations:
            raise ValueError(f"unknown destination {destination!r}")
        return Request(BOOK_TRIP, {"destination": destination, "traveller": traveller,
                                   "need_car": need_car}, participants=participants)

    def tour(self, cities: tuple[str, ...], traveller: str = "guest",
             participants: tuple[str, ...] = ()) -> Request:
        """A request booking one flight leg in each of ``cities`` atomically.

        This is the workload's cross-shard transaction: with sharded keys and
        cities on different shards, every leg's shard takes part in one
        atomic commit.
        """
        for city in cities:
            if city not in self.destinations:
                raise ValueError(f"unknown destination {city!r}")
        if len(cities) < 2:
            raise ValueError("a tour needs at least two cities")
        return Request(BOOK_TOUR, {"cities": tuple(cities), "traveller": traveller},
                       participants=participants)

    def random_request(self, rng: random.Random) -> Request:
        """A booking to a random destination for a random traveller."""
        destination = rng.choice(self.destinations)
        traveller = f"traveller-{rng.randint(1, 999)}"
        return self.book(destination, traveller, need_car=rng.random() < 0.7)

    def sharded_requests(self, sharding: Sharding, cross_shard_fraction: float = 0.0,
                         seed: int = 0) -> Callable[[], Request]:
        """A deterministic factory mixing single-city bookings and tours.

        With probability ``cross_shard_fraction`` (and at least two shards
        holding destinations) the next request is a two-city tour across
        shards; otherwise a single-city booking.  Every request carries the
        participant set of the keys it touches.
        """
        if not 0.0 <= cross_shard_fraction <= 1.0:
            raise ValueError("cross_shard_fraction must be within [0, 1]")
        by_shard: dict[str, list[str]] = {}
        for city in self.destinations:
            owner = sharding.owner(self.seats_key(city))
            by_shard.setdefault(owner if owner is not None else "*", []).append(city)
        populated = [cities for cities in by_shard.values() if cities]
        rng = random.Random(zlib.crc32(f"{seed}\x00travel-shard-mix".encode("utf-8")))
        counter = [0]

        def next_request() -> Request:
            counter[0] += 1
            traveller = f"traveller-{counter[0]}"
            cross = (cross_shard_fraction > 0 and len(populated) >= 2
                     and rng.random() < cross_shard_fraction)
            if cross:
                first, second = rng.sample(range(len(populated)), 2)
                cities = (rng.choice(populated[first]), rng.choice(populated[second]))
                keys = [key for city in cities for key in
                        (self.seats_key(city), self.bookings_key(city))]
                return self.tour(cities, traveller,
                                 participants=sharding.participants(keys))
            city = rng.choice(populated[rng.randrange(len(populated))])
            return self.book(city, traveller, need_car=rng.random() < 0.7,
                             participants=sharding.participants(self.city_keys(city)))

        return next_request

    # --------------------------------------------------------- business logic

    def business_logic(self, request: Request) -> Callable[[Any], Any]:
        """Reserve inventory atomically for a booking or a tour."""
        if request.operation == BOOK_TRIP:
            return self._book_logic(request)
        if request.operation == BOOK_TOUR:
            return self._tour_logic(request)
        raise ValueError(f"unknown travel operation {request.operation!r}")

    def _book_logic(self, request: Request) -> Callable[[Any], Any]:
        destination = request.params["destination"]
        traveller = request.params["traveller"]
        need_car = request.params.get("need_car", False)

        def logic(view: Any) -> Any:
            seats = view.read(self.seats_key(destination), 0)
            rooms = view.read(self.rooms_key(destination), 0)
            cars = view.read(self.cars_key(destination), 0)
            if seats <= 0 or rooms <= 0 or (need_car and cars <= 0):
                # User-level abort: a regular result value (the paper's model).
                return {"status": "sold_out", "destination": destination,
                        "seats": seats, "rooms": rooms, "cars": cars}
            view.write(self.seats_key(destination), seats - 1)
            view.write(self.rooms_key(destination), rooms - 1)
            if need_car:
                view.write(self.cars_key(destination), cars - 1)
            booking_number = view.read(self.bookings_key(destination), 0) + 1
            view.write(self.bookings_key(destination), booking_number)
            return {
                "status": "confirmed",
                "booking_number": booking_number,
                "traveller": traveller,
                "flight": f"FL-{destination}-{booking_number:04d}",
                "hotel": f"Hotel {destination} Central",
                "car": f"Car-{destination}-{booking_number:04d}" if need_car else None,
            }

        return logic

    def _tour_logic(self, request: Request) -> Callable[[Any], Any]:
        cities = tuple(request.params["cities"])
        traveller = request.params["traveller"]

        def logic(view: Any) -> Any:
            # Each participant books only the legs it owns; on an
            # unpartitioned store every leg is booked in one transaction.
            # Sold-out is a per-leg user-level result: a leg on another shard
            # may still book (the result value shows which legs confirmed) --
            # run tours against ample inventory when that matters.
            legs = []
            for city in cities:
                if not view.owns(self.seats_key(city)):
                    continue
                seats = view.read(self.seats_key(city), 0)
                if seats <= 0:
                    return {"status": "sold_out", "destination": city, "seats": seats}
                view.write(self.seats_key(city), seats - 1)
                number = view.read(self.bookings_key(city), 0) + 1
                view.write(self.bookings_key(city), number)
                legs.append(f"FL-{city}-{number:04d}")
            return {"status": "confirmed", "traveller": traveller, "legs": legs}

        return logic

    # ------------------------------------------------------------- invariants

    def bookings_made(self, committed: dict[str, Any]) -> int:
        """Number of confirmed bookings in a committed snapshot."""
        if not self.shard_tags:
            return committed.get("bookings:count", 0)
        return sum(committed.get(self.bookings_key(city), 0)
                   for city in self.destinations)

    def seats_left(self, committed: dict[str, Any], destination: str) -> int:
        """Remaining seats to ``destination``."""
        return committed.get(self.seats_key(destination), 0)
