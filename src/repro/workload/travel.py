"""Travel-booking workload (the paper's motivating example).

"In the case of a travel application for instance, the request typically
indicates a travel destination, the travel dates, together with some
information about hotel category, the size of a car to rent, etc.  A
corresponding result typically contains information about a flight
reservation, a hotel name and address, the name of a car company."

The workload keeps seat/room/car inventories in the database and books one of
each per request.  When some leg is sold out, the business logic returns a
``sold_out`` result -- the paper's user-level abort, which is a *regular*
result value (the user is told about the problem) rather than a protocol
failure.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.core.types import Request

BOOK_TRIP = "book_trip"


class TravelWorkload:
    """Flights, hotels and rental cars with finite inventory."""

    def __init__(self, destinations: tuple[str, ...] = ("PAR", "NYC", "TYO"),
                 seats_per_flight: int = 5, rooms_per_hotel: int = 5,
                 cars_per_city: int = 5):
        if not destinations:
            raise ValueError("need at least one destination")
        self.destinations = tuple(destinations)
        self.seats_per_flight = seats_per_flight
        self.rooms_per_hotel = rooms_per_hotel
        self.cars_per_city = cars_per_city

    # ------------------------------------------------------------------- data

    def initial_data(self) -> dict[str, Any]:
        """Initial inventory: seats, rooms and cars per destination."""
        data: dict[str, Any] = {}
        for city in self.destinations:
            data[f"flight:{city}:seats"] = self.seats_per_flight
            data[f"hotel:{city}:rooms"] = self.rooms_per_hotel
            data[f"car:{city}:available"] = self.cars_per_city
            data["bookings:count"] = 0
        return data

    # --------------------------------------------------------------- requests

    def book(self, destination: str, traveller: str = "guest",
             need_car: bool = True) -> Request:
        """A request booking flight + hotel (+ optional car) to ``destination``."""
        if destination not in self.destinations:
            raise ValueError(f"unknown destination {destination!r}")
        return Request(BOOK_TRIP, {"destination": destination, "traveller": traveller,
                                   "need_car": need_car})

    def random_request(self, rng: random.Random) -> Request:
        """A booking to a random destination for a random traveller."""
        destination = rng.choice(self.destinations)
        traveller = f"traveller-{rng.randint(1, 999)}"
        return self.book(destination, traveller, need_car=rng.random() < 0.7)

    # --------------------------------------------------------- business logic

    def business_logic(self, request: Request) -> Callable[[Any], Any]:
        """Reserve one seat, one room and (optionally) one car atomically."""
        if request.operation != BOOK_TRIP:
            raise ValueError(f"unknown travel operation {request.operation!r}")
        destination = request.params["destination"]
        traveller = request.params["traveller"]
        need_car = request.params.get("need_car", False)

        def logic(view: Any) -> Any:
            seats = view.read(f"flight:{destination}:seats", 0)
            rooms = view.read(f"hotel:{destination}:rooms", 0)
            cars = view.read(f"car:{destination}:available", 0)
            if seats <= 0 or rooms <= 0 or (need_car and cars <= 0):
                # User-level abort: a regular result value (the paper's model).
                return {"status": "sold_out", "destination": destination,
                        "seats": seats, "rooms": rooms, "cars": cars}
            view.write(f"flight:{destination}:seats", seats - 1)
            view.write(f"hotel:{destination}:rooms", rooms - 1)
            if need_car:
                view.write(f"car:{destination}:available", cars - 1)
            booking_number = view.read("bookings:count", 0) + 1
            view.write("bookings:count", booking_number)
            return {
                "status": "confirmed",
                "booking_number": booking_number,
                "traveller": traveller,
                "flight": f"FL-{destination}-{booking_number:04d}",
                "hotel": f"Hotel {destination} Central",
                "car": f"Car-{destination}-{booking_number:04d}" if need_car else None,
            }

        return logic

    # ------------------------------------------------------------- invariants

    def bookings_made(self, committed: dict[str, Any]) -> int:
        """Number of confirmed bookings in a committed snapshot."""
        return committed.get("bookings:count", 0)

    def seats_left(self, committed: dict[str, Any], destination: str) -> int:
        """Remaining seats to ``destination``."""
        return committed.get(f"flight:{destination}:seats", 0)
