"""Bank-account workload (the workload measured in the paper's Appendix 3).

"The application server executes some SQL statements to update a bank account
on a single database, and ends the transaction."  We model a small bank: a set
of accounts with balances, and requests that debit, credit or transfer between
accounts.  The business logic runs inside the database transaction via the
:class:`~repro.storage.xa.TransactionView` handle.

Sharding.  With ``shard_tags=True`` the account keys carry a placement hash
tag (``account:{7}``) so a partitioned deployment can spread the accounts over
its database servers, and :meth:`BankWorkload.sharded_requests` builds a
request stream with a tunable **cross-shard fraction**: each request either
stays on one shard (a debit, credit or same-shard transfer) or transfers
between accounts on two different shards.  Every generated request carries its
participant set, and the business logic applies only the locally-owned half of
a transfer on each participant (guarded by ``view.owns``).
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Callable

from repro.core.sharding import Sharding
from repro.core.types import Request

DEBIT = "bank_debit"
CREDIT = "bank_credit"
TRANSFER = "bank_transfer"


class BankWorkload:
    """Accounts, request generation and business logic for the bank scenario.

    Parameters
    ----------
    num_accounts:
        Number of accounts (``account:0`` ... ``account:N-1``).
    initial_balance:
        Starting balance of every account.
    allow_overdraft:
        When ``False``, a debit that would make the balance negative returns an
        ``insufficient_funds`` result instead of applying the update -- a
        user-level abort in the paper's sense (a regular result value).
        Cross-shard transfers need ``True``: the funds check is a single-shard
        predicate, and no shard can see another shard's balance.
    shard_tags:
        Emit account keys with a placement hash tag (``account:{i}``), the
        form partitioned deployments route on.  Off by default so existing
        single-database key spaces are unchanged.
    """

    def __init__(self, num_accounts: int = 10, initial_balance: int = 1_000,
                 allow_overdraft: bool = False, shard_tags: bool = False):
        if num_accounts < 1:
            raise ValueError("need at least one account")
        self.num_accounts = num_accounts
        self.initial_balance = initial_balance
        self.allow_overdraft = allow_overdraft
        self.shard_tags = shard_tags

    # ------------------------------------------------------------------- data

    def account_key(self, index: int) -> str:
        """Storage key of account ``index``."""
        return f"account:{{{index}}}" if self.shard_tags else f"account:{index}"

    def initial_data(self) -> dict[str, Any]:
        """Initial committed database contents."""
        return {self.account_key(i): self.initial_balance for i in range(self.num_accounts)}

    # --------------------------------------------------------------- requests

    def debit(self, account: int, amount: int,
              participants: tuple[str, ...] = ()) -> Request:
        """A request debiting ``amount`` from ``account``."""
        return Request(DEBIT, {"account": account, "amount": amount},
                       participants=participants,
                       keys=(self.account_key(account),))

    def credit(self, account: int, amount: int,
               participants: tuple[str, ...] = ()) -> Request:
        """A request crediting ``amount`` to ``account``."""
        return Request(CREDIT, {"account": account, "amount": amount},
                       participants=participants,
                       keys=(self.account_key(account),))

    def transfer(self, source: int, destination: int, amount: int,
                 participants: tuple[str, ...] = ()) -> Request:
        """A request transferring ``amount`` between two accounts."""
        return Request(TRANSFER, {"source": source, "destination": destination,
                                  "amount": amount}, participants=participants,
                       keys=(self.account_key(source),
                             self.account_key(destination)))

    def random_request(self, rng: random.Random) -> Request:
        """A random debit/credit/transfer with small amounts."""
        kind = rng.choice([DEBIT, CREDIT, TRANSFER])
        amount = rng.randint(1, 50)
        if kind == TRANSFER and self.num_accounts >= 2:
            source, destination = rng.sample(range(self.num_accounts), 2)
            return self.transfer(source, destination, amount)
        account = rng.randrange(self.num_accounts)
        return self.debit(account, amount) if kind == DEBIT else self.credit(account, amount)

    def sharded_requests(self, sharding: Sharding, cross_shard_fraction: float = 0.0,
                         seed: int = 0) -> Callable[[], Request]:
        """A deterministic factory of shard-aware requests.

        Each call returns the next request of the stream: with probability
        ``cross_shard_fraction`` a transfer between accounts owned by two
        different shards (when the placement yields at least two non-empty
        shards), otherwise a debit, credit or same-shard transfer on a single
        shard.  Every request carries the participant set of the keys it
        touches.
        """
        if not 0.0 <= cross_shard_fraction <= 1.0:
            raise ValueError("cross_shard_fraction must be within [0, 1]")
        if cross_shard_fraction > 0 and not self.allow_overdraft \
                and sharding.partitioned and len(sharding.shards) > 1:
            # The insufficient-funds check is a single-shard predicate: the
            # destination shard cannot see the source balance, so an
            # overdraft-checking workload would credit the destination while
            # the source refuses -- creating money.  Refuse loudly instead.
            raise ValueError("cross-shard transfers need allow_overdraft=True "
                             "(the funds check cannot span shards)")
        by_shard: dict[str, list[int]] = {}
        for index in range(self.num_accounts):
            owner = sharding.owner(self.account_key(index))
            by_shard.setdefault(owner if owner is not None else "*", []).append(index)
        populated = [indices for indices in by_shard.values() if indices]
        rng = random.Random(zlib.crc32(f"{seed}\x00bank-shard-mix".encode("utf-8")))

        def participants_for(*indices: int) -> tuple[str, ...]:
            return sharding.participants(self.account_key(i) for i in indices)

        def next_request() -> Request:
            amount = rng.randint(1, 50)
            cross = (cross_shard_fraction > 0 and len(populated) >= 2
                     and rng.random() < cross_shard_fraction)
            if cross:
                first, second = rng.sample(range(len(populated)), 2)
                source = rng.choice(populated[first])
                destination = rng.choice(populated[second])
                return self.transfer(source, destination, amount,
                                     participants=participants_for(source, destination))
            group = populated[rng.randrange(len(populated))]
            kind = rng.choice([DEBIT, CREDIT, TRANSFER])
            if kind == TRANSFER and len(group) >= 2:
                source, destination = rng.sample(group, 2)
                return self.transfer(source, destination, amount,
                                     participants=participants_for(source, destination))
            account = rng.choice(group)
            participants = participants_for(account)
            if kind == DEBIT:
                return self.debit(account, amount, participants=participants)
            return self.credit(account, amount, participants=participants)

        return next_request

    # --------------------------------------------------------- business logic

    def business_logic(self, request: Request) -> Callable[[Any], Any]:
        """The function executed inside the database transaction."""
        if request.operation == DEBIT:
            return self._debit_logic(request)
        if request.operation == CREDIT:
            return self._credit_logic(request)
        if request.operation == TRANSFER:
            return self._transfer_logic(request)
        raise ValueError(f"unknown bank operation {request.operation!r}")

    def _debit_logic(self, request: Request) -> Callable[[Any], Any]:
        key = self.account_key(request.params["account"])
        amount = request.params["amount"]

        def logic(view: Any) -> Any:
            balance = view.read(key, 0)
            if not self.allow_overdraft and balance < amount:
                return {"status": "insufficient_funds", "balance": balance}
            view.write(key, balance - amount)
            return {"status": "ok", "account": key, "balance": balance - amount}

        return logic

    def _credit_logic(self, request: Request) -> Callable[[Any], Any]:
        key = self.account_key(request.params["account"])
        amount = request.params["amount"]

        def logic(view: Any) -> Any:
            balance = view.read(key, 0)
            view.write(key, balance + amount)
            return {"status": "ok", "account": key, "balance": balance + amount}

        return logic

    def _transfer_logic(self, request: Request) -> Callable[[Any], Any]:
        source = self.account_key(request.params["source"])
        destination = self.account_key(request.params["destination"])
        amount = request.params["amount"]

        def logic(view: Any) -> Any:
            # Each participant applies only its locally-owned half; on an
            # unpartitioned store both halves run, reproducing the classic
            # single-database transfer.  The insufficient-funds guard is
            # meaningful only when this shard owns the source -- which is why
            # cross-shard transfers require allow_overdraft (enforced by
            # sharded_requests): a destination-only half cannot check funds.
            result: dict[str, Any] = {"status": "ok", "from": source, "to": destination}
            if view.owns(source):
                source_balance = view.read(source, 0)
                if not self.allow_overdraft and source_balance < amount:
                    return {"status": "insufficient_funds", "balance": source_balance}
                view.write(source, source_balance - amount)
                result["source_balance"] = source_balance - amount
            if view.owns(destination):
                destination_balance = view.read(destination, 0)
                view.write(destination, destination_balance + amount)
                result["destination_balance"] = destination_balance + amount
            return result

        return logic

    # ------------------------------------------------------------- invariants

    def total_money(self, committed: dict[str, Any]) -> int:
        """Sum of all balances in a committed snapshot (conservation check)."""
        return sum(committed.get(self.account_key(i), 0) for i in range(self.num_accounts))
