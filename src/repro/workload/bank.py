"""Bank-account workload (the workload measured in the paper's Appendix 3).

"The application server executes some SQL statements to update a bank account
on a single database, and ends the transaction."  We model a small bank: a set
of accounts with balances, and requests that debit, credit or transfer between
accounts.  The business logic runs inside the database transaction via the
:class:`~repro.storage.xa.TransactionView` handle.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.core.types import Request

DEBIT = "bank_debit"
CREDIT = "bank_credit"
TRANSFER = "bank_transfer"


class BankWorkload:
    """Accounts, request generation and business logic for the bank scenario.

    Parameters
    ----------
    num_accounts:
        Number of accounts (``account:0`` ... ``account:N-1``).
    initial_balance:
        Starting balance of every account.
    allow_overdraft:
        When ``False``, a debit that would make the balance negative returns an
        ``insufficient_funds`` result instead of applying the update -- a
        user-level abort in the paper's sense (a regular result value).
    """

    def __init__(self, num_accounts: int = 10, initial_balance: int = 1_000,
                 allow_overdraft: bool = False):
        if num_accounts < 1:
            raise ValueError("need at least one account")
        self.num_accounts = num_accounts
        self.initial_balance = initial_balance
        self.allow_overdraft = allow_overdraft

    # ------------------------------------------------------------------- data

    def account_key(self, index: int) -> str:
        """Storage key of account ``index``."""
        return f"account:{index}"

    def initial_data(self) -> dict[str, Any]:
        """Initial committed database contents."""
        return {self.account_key(i): self.initial_balance for i in range(self.num_accounts)}

    # --------------------------------------------------------------- requests

    def debit(self, account: int, amount: int) -> Request:
        """A request debiting ``amount`` from ``account``."""
        return Request(DEBIT, {"account": account, "amount": amount})

    def credit(self, account: int, amount: int) -> Request:
        """A request crediting ``amount`` to ``account``."""
        return Request(CREDIT, {"account": account, "amount": amount})

    def transfer(self, source: int, destination: int, amount: int) -> Request:
        """A request transferring ``amount`` between two accounts."""
        return Request(TRANSFER, {"source": source, "destination": destination,
                                  "amount": amount})

    def random_request(self, rng: random.Random) -> Request:
        """A random debit/credit/transfer with small amounts."""
        kind = rng.choice([DEBIT, CREDIT, TRANSFER])
        amount = rng.randint(1, 50)
        if kind == TRANSFER and self.num_accounts >= 2:
            source, destination = rng.sample(range(self.num_accounts), 2)
            return self.transfer(source, destination, amount)
        account = rng.randrange(self.num_accounts)
        return self.debit(account, amount) if kind == DEBIT else self.credit(account, amount)

    # --------------------------------------------------------- business logic

    def business_logic(self, request: Request) -> Callable[[Any], Any]:
        """The function executed inside the database transaction."""
        if request.operation == DEBIT:
            return self._debit_logic(request)
        if request.operation == CREDIT:
            return self._credit_logic(request)
        if request.operation == TRANSFER:
            return self._transfer_logic(request)
        raise ValueError(f"unknown bank operation {request.operation!r}")

    def _debit_logic(self, request: Request) -> Callable[[Any], Any]:
        key = self.account_key(request.params["account"])
        amount = request.params["amount"]

        def logic(view: Any) -> Any:
            balance = view.read(key, 0)
            if not self.allow_overdraft and balance < amount:
                return {"status": "insufficient_funds", "balance": balance}
            view.write(key, balance - amount)
            return {"status": "ok", "account": key, "balance": balance - amount}

        return logic

    def _credit_logic(self, request: Request) -> Callable[[Any], Any]:
        key = self.account_key(request.params["account"])
        amount = request.params["amount"]

        def logic(view: Any) -> Any:
            balance = view.read(key, 0)
            view.write(key, balance + amount)
            return {"status": "ok", "account": key, "balance": balance + amount}

        return logic

    def _transfer_logic(self, request: Request) -> Callable[[Any], Any]:
        source = self.account_key(request.params["source"])
        destination = self.account_key(request.params["destination"])
        amount = request.params["amount"]

        def logic(view: Any) -> Any:
            source_balance = view.read(source, 0)
            if not self.allow_overdraft and source_balance < amount:
                return {"status": "insufficient_funds", "balance": source_balance}
            destination_balance = view.read(destination, 0)
            view.write(source, source_balance - amount)
            view.write(destination, destination_balance + amount)
            return {"status": "ok", "from": source, "to": destination,
                    "amounts": (source_balance - amount, destination_balance + amount)}

        return logic

    # ------------------------------------------------------------- invariants

    def total_money(self, committed: dict[str, Any]) -> int:
        """Sum of all balances in a committed snapshot (conservation check)."""
        return sum(committed.get(self.account_key(i), 0) for i in range(self.num_accounts))
