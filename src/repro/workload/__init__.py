"""Workloads and traffic shapes: what to run and how hard to push it."""

from repro.workload.bank import BankWorkload
from repro.workload.generator import (
    ClosedLoop,
    LoadGenerator,
    OpenLoop,
    RequestStream,
    RunStatistics,
)
from repro.workload.travel import TravelWorkload

__all__ = [
    "BankWorkload",
    "TravelWorkload",
    "RequestStream",
    "RunStatistics",
    "LoadGenerator",
    "ClosedLoop",
    "OpenLoop",
]
