"""Workloads: the bank-account update measured in the paper and the travel example."""

from repro.workload.bank import BankWorkload
from repro.workload.generator import ClosedLoopDriver, RequestStream, RunStatistics
from repro.workload.travel import TravelWorkload

__all__ = [
    "BankWorkload",
    "TravelWorkload",
    "RequestStream",
    "RunStatistics",
    "ClosedLoopDriver",
]
