"""Shared scaffolding for the comparison protocols.

The three baselines (unreliable baseline, presumed-nothing 2PC, primary-backup
replication) reuse the same three-tier skeleton as the e-Transaction
deployment: one or more clients (the protocol-agnostic client of Figure 2),
a set of application servers provided by the concrete baseline, and the
database servers of :mod:`repro.core.dataserver`.  Only the middle tier
changes between protocols, which is exactly the point of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from repro.core import messages as msg
from repro.core.client import Client, IssuedRequest
from repro.core.dataserver import DatabaseServer
from repro.core.sharding import (
    KNOWN_PLACEMENTS,
    PLACEMENT_REPLICATE,
    Sharding,
    merge_participant_values,
    request_participants,
    validate_participants,
)
from repro.core.spec import SpecMonitor, SpecReport
from repro.core.timing import DatabaseTiming, ProtocolTiming
from repro.core.types import VOTE_YES, Decision, Request
from repro.failure.detectors import PerfectFailureDetector
from repro.failure.injection import FaultSchedule
from repro.metrics.latency import LatencyComponentStream
from repro.metrics.stream import DatabaseOutcomeStream
from repro.net.latency import PerLinkLatency, three_tier_latency
from repro.net.message import Message
from repro.runtime.base import RuntimeSpec, create_kernel, create_network
from repro.sim.process import Process
from repro.sim.tracing import parse_retention

COMMIT_ONE_PHASE = "CommitOnePhase"
ACK_COMMIT = "AckCommit"


class RequestDeduplication:
    """At-most-once guard for the serial application-server loops.

    A client that waits longer than its back-off re-broadcasts the *same*
    result identifier -- routine once many clients queue at one server.  A
    transaction manager that re-executed the duplicate would re-run a
    committed transaction (and crash the database's prepare).  The mixin
    remembers completed decisions and replays them for duplicates.  The
    memory is volatile: a crash forgets it, so a retry that races a server
    crash still double-executes on the unreliable baseline -- exactly the
    at-most-once violation the paper's comparison is about.
    """

    def _init_dedup(self) -> None:
        self._completed_decisions: dict[Any, Decision] = {}

    def _record_decision(self, key: Any, decision: Any) -> None:
        """Remember the decision sent to the client for ``key``."""
        self._completed_decisions[key] = decision

    def _replay_duplicate(self, key: Any) -> bool:
        """Resend the recorded decision if ``key`` already completed."""
        decision = self._completed_decisions.get(key)
        if decision is None:
            return False
        client, j = key
        self.trace.record("as_result_resent", self.name, client=client, j=j,
                          outcome=decision.outcome)
        self.send(client, msg.result_message(j, decision))
        return True

    def on_crash(self) -> None:
        self._completed_decisions.clear()


class ParticipantRouting:
    """Shared participant-set routing for the comparison middle tiers.

    The three baselines fan Execute/Prepare/Decide out to exactly the same
    participant set as the e-Transaction application server
    (:attr:`repro.core.types.Request.participants`, empty = every database),
    so partitioned-tier comparisons between the four protocols stay
    apples-to-apples.  Mix into a :class:`~repro.sim.process.Process` with a
    ``db_server_names`` attribute.
    """

    def participants_of(self, request: Request) -> list[str]:
        """The database servers taking part in this request's transaction."""
        return request_participants(request, self.db_server_names)

    @staticmethod
    def merge_values(values: dict[str, Any], participants: list[str]) -> Any:
        """One business value out of the per-participant answers."""
        return merge_participant_values(values, participants)


class OnePhaseDatabaseServer(DatabaseServer):
    """A database server that additionally accepts one-phase commits.

    The unreliable baseline of Figure 7(a) skips the voting phase entirely and
    simply asks the database to commit -- the XA one-phase-commit optimisation.
    """

    def on_start(self, recovery: bool) -> None:
        super().on_start(recovery)
        self.spawn(self._serve_one_phase_commit(), name="db-commit-1p")

    def _serve_one_phase_commit(self):
        from repro.net.message import is_type

        while True:
            message = yield self.receive(is_type(COMMIT_ONE_PHASE))
            key = message["j"]
            try:
                io_cost = self.resource.commit_one_phase(key)
                outcome = "commit"
            except Exception:
                io_cost = 0.0
                outcome = "abort"
            if io_cost > 0:
                yield self.sleep(self.timing.commit_cpu + io_cost + self.timing.end)
            if outcome == "commit":
                # A one-phase commit fuses the vote and the decision: record
                # the implicit yes-vote so the spec checker sees a database
                # never commits a result it did not (implicitly) vote for.
                self.trace.record("db_vote", self.name, j=key, vote=VOTE_YES,
                                  one_phase=True)
            self.trace.record("db_decide", self.name, j=key, outcome=outcome,
                              requested="commit", one_phase=True)
            self.send(message.sender, Message(ACK_COMMIT, payload={"j": key}))


@dataclass
class BaselineConfig:
    """Deployment knobs shared by the comparison protocols."""

    num_app_servers: int = 1
    num_db_servers: int = 1
    num_clients: int = 1
    seed: int = 0
    loss_probability: float = 0.0
    client_app_latency: float = 2.5
    app_app_latency: float = 2.25
    app_db_latency: float = 0.5
    db_timing: DatabaseTiming = field(default_factory=DatabaseTiming)
    protocol_timing: ProtocolTiming = field(default_factory=ProtocolTiming)
    coordinator_log_latency: float = 12.5
    initial_data: dict[str, Any] = field(default_factory=dict)
    business_logic: Callable[[Request], Callable[[Any], Any]] = None  # type: ignore[assignment]
    placement: str = PLACEMENT_REPLICATE
    trace_retention: str = "full"
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)

    def __post_init__(self) -> None:
        if self.business_logic is None:
            from repro.core.deployment import default_business_logic

            self.business_logic = default_business_logic
        if self.num_app_servers < 1 or self.num_db_servers < 1 or self.num_clients < 1:
            raise ValueError("a deployment needs at least one process per tier")
        if self.placement not in KNOWN_PLACEMENTS:
            raise ValueError(f"unknown placement {self.placement!r}; known: "
                             f"{', '.join(KNOWN_PLACEMENTS)}")
        parse_retention(self.trace_retention)  # fail fast on bad policies

    @property
    def sharding(self) -> Sharding:
        """Key-placement map of the database tier under this config."""
        return Sharding(tuple(self.db_server_names), self.placement)

    @property
    def client_names(self) -> list[str]:
        return [f"c{i + 1}" for i in range(self.num_clients)]

    @property
    def app_server_names(self) -> list[str]:
        return [f"a{i + 1}" for i in range(self.num_app_servers)]

    @property
    def db_server_names(self) -> list[str]:
        return [f"d{i + 1}" for i in range(self.num_db_servers)]


class BaseThreeTierDeployment:
    """Common deployment machinery; subclasses provide the middle tier."""

    db_server_class: type[DatabaseServer] = DatabaseServer

    def __init__(self, config: Optional[BaselineConfig] = None, **overrides: Any):
        if config is None:
            config = BaselineConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.config = config
        self.sharding = config.sharding
        self.sim = create_kernel(config.runtime, seed=config.seed)
        self.sim.trace.set_retention(config.trace_retention)
        # Streaming observers subscribe before any process runs, so they see
        # the complete event stream regardless of the retention policy.
        self.spec_monitor = SpecMonitor.attach(
            self.sim.trace, config.db_server_names, config.client_names)
        self.db_outcomes = DatabaseOutcomeStream(
            self.sim.trace, config.db_server_names)
        self.latency_components = LatencyComponentStream(self.sim.trace)
        self.network = create_network(
            config.runtime, self.sim, latency=self._build_latency(),
            loss_probability=config.loss_probability,
            process_names=(config.app_server_names + config.db_server_names
                           + config.client_names))
        self.failure_detector = PerfectFailureDetector(self.network)
        self.db_servers: dict[str, DatabaseServer] = {}
        self.app_servers: dict[str, Process] = {}
        self.clients: dict[str, Client] = {}
        self._build_db_servers()
        self._build_app_servers()
        self._build_clients()
        self._start_all()

    # ------------------------------------------------------------------- build

    def _build_latency(self) -> PerLinkLatency:
        config = self.config
        return three_tier_latency(config.client_names, config.app_server_names,
                                  config.db_server_names,
                                  client_app_latency=config.client_app_latency,
                                  app_app_latency=config.app_app_latency,
                                  app_db_latency=config.app_db_latency)

    def _build_db_servers(self) -> None:
        for name in self.config.db_server_names:
            server = self.db_server_class(
                self.sim, name, self.config.app_server_names,
                business_logic=self.config.business_logic,
                timing=self.config.db_timing,
                initial_data=self.sharding.shard_data(name, self.config.initial_data),
                owns_key=self.sharding.owner_predicate(name))
            self.network.register(server)
            self.db_servers[name] = server

    def _build_app_servers(self) -> None:
        raise NotImplementedError

    def _build_clients(self) -> None:
        for name in self.config.client_names:
            client = Client(self.sim, name, self.config.app_server_names,
                            timing=self.config.protocol_timing,
                            default_primary=self.config.app_server_names[0])
            self.network.register(client)
            self.clients[name] = client

    def _start_all(self) -> None:
        # Only locally hosted processes spawn threads; in a distributed
        # asyncio run the rest are TCP peers served by another OS process.
        for group in (self.db_servers, self.app_servers, self.clients):
            for process in group.values():
                if self.network.hosts(process.name):
                    process.start()

    # --------------------------------------------------------------- execution

    @property
    def client(self) -> Client:
        """The first (often only) client."""
        return self.clients[self.config.client_names[0]]

    @property
    def trace(self):
        """The shared trace recorder of this run."""
        return self.sim.trace

    def apply_faults(self, schedule: FaultSchedule) -> None:
        """Schedule a fault-injection plan against this deployment."""
        if self.config.runtime.distributed:
            schedule = schedule.restricted_to(set(self.config.runtime.only))
        schedule.apply(self.sim, self.network)

    def close(self) -> None:
        """Release runtime resources (TCP sockets, event loop); idempotent."""
        self.network.close()
        self.sim.close()

    def issue(self, request: Request, client: Optional[str] = None) -> IssuedRequest:
        """Issue a request from the named (or first) client."""
        validate_participants(request, self.config.db_server_names)
        target = self.clients[client] if client is not None else self.client
        return target.issue(request)

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation."""
        return self.sim.run(until=until)

    def run_request(self, request: Request, client: Optional[str] = None,
                    horizon: float = 1_000_000.0) -> IssuedRequest:
        """Issue ``request`` and run until delivery (or the horizon)."""
        issued = self.issue(request, client)
        self.sim.run_until(lambda: issued.delivered, until=horizon)
        return issued

    def check_spec(self, check_termination: bool = True) -> SpecReport:
        """Check the e-Transaction properties of the run so far.

        The baselines are *not expected* to satisfy all of them under faults --
        that is the paper's argument; the checker quantifies which ones break
        and when.  Answered by the online :class:`~repro.core.spec.SpecMonitor`
        (byte-identical to the post-hoc :func:`~repro.core.spec.check_run`).

        A distributed run sees only its local slice of the trace, so it
        returns an explicitly empty verdict rather than phantom violations
        (see :meth:`repro.core.deployment.EtxDeployment.check_spec`).
        """
        if self.config.runtime.distributed:
            return SpecReport(checked_properties=[])
        return self.spec_monitor.report(check_termination=check_termination)
