"""Primary-backup replication of the transaction-processing state (Figure 7c).

This is the comparator the authors adapted in [18]: the primary application
server replicates the request (a *start* notification) and later the outcome
to a single backup with explicit messages, then commits at the databases and
answers the client.  If the primary crashes, the backup -- relying on a
**perfect** failure detector -- finishes the commitment of results whose
outcome it knows and aborts the rest, then answers the client.

The paper's warning is reproduced verbatim by the tests: "a false suspicion
might lead to an inconsistency".  If the backup wrongly suspects a live
primary, it may abort a result at the databases while the primary goes on to
report it as committed to the client -- violating agreement property A.1.
The asynchronous-replication protocol avoids exactly this by funnelling every
decision through the write-once registers.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.baselines.common import (
    BaseThreeTierDeployment,
    ParticipantRouting,
    RequestDeduplication,
)
from repro.core import messages as msg
from repro.core.types import ABORT, COMMIT, Decision, Request, Result, VOTE_YES
from repro.failure.detectors import FailureDetector
from repro.net.message import Message, is_type, is_type_with
from repro.sim.process import Process

PB_START = "PBStart"
PB_START_ACK = "PBStartAck"
PB_OUTCOME = "PBOutcome"
PB_OUTCOME_ACK = "PBOutcomeAck"


class PrimaryServer(RequestDeduplication, ParticipantRouting, Process):
    """The primary application server of the primary-backup scheme."""

    def __init__(self, sim, name: str, backup_name: str, db_server_names: list[str]):
        super().__init__(sim, name)
        self.backup_name = backup_name
        self.db_server_names = list(db_server_names)
        self._init_dedup()

    def on_start(self, recovery: bool) -> None:
        self.spawn(self._serve(), name="pb-primary")

    def _serve(self):
        while True:
            message = yield self.receive(is_type(msg.REQUEST))
            client = message.sender
            j = message["j"]
            request: Request = message["request"]
            key = (client, j)
            if self._replay_duplicate(key):
                continue
            participants = self.participants_of(request)
            self.trace.record("as_request", self.name, client=client, j=j,
                              request_id=request.request_id)
            # Replicate the request to the backup before doing any work.
            self.send(self.backup_name, Message(PB_START, payload={
                "j": key, "request": request, "client": client}))
            yield self.receive(is_type_with(PB_START_ACK, j=key))
            value = yield from self._execute(key, request, participants)
            result = Result(value=value, request_id=request.request_id, computed_by=self.name)
            self.trace.record("as_compute", self.name, client=client, j=j,
                              request_id=request.request_id, result=repr(value),
                              participants=list(participants))
            outcome = yield from self._prepare(key, participants)
            # Replicate the outcome (and the result) to the backup.
            self.send(self.backup_name, Message(PB_OUTCOME, payload={
                "j": key, "outcome": outcome, "result": result, "client": client}))
            yield self.receive(is_type_with(PB_OUTCOME_ACK, j=key))
            yield from self._decide(key, outcome, participants)
            decision = Decision(result=result if outcome == COMMIT else None, outcome=outcome)
            self._record_decision(key, decision)
            self.trace.record("as_result_sent", self.name, client=client, j=j, outcome=outcome)
            self.send(client, msg.result_message(j, decision))

    def _execute(self, key, request: Request, participants):
        values = {}
        for db_name in participants:
            self.send(db_name, msg.execute_message(key, request))
        pending = set(participants)
        while pending:
            reply = yield self.receive(is_type_with(msg.EXECUTE_RESULT, j=key))
            if reply.sender in pending:
                values[reply.sender] = reply["value"]
                pending.discard(reply.sender)
        return self.merge_values(values, participants)

    def _prepare(self, key, participants):
        votes = {}
        for db_name in participants:
            self.send(db_name, msg.prepare_message(key, tuple(participants)))
        pending = set(participants)
        while pending:
            reply = yield self.receive(is_type_with(msg.VOTE, j=key))
            if reply.sender in pending:
                votes[reply.sender] = reply["vote"]
                pending.discard(reply.sender)
        outcome = COMMIT if all(v == VOTE_YES for v in votes.values()) else ABORT
        self.trace.record("as_prepare", self.name, client=key[0], j=key[1], outcome=outcome,
                          votes=dict(votes))
        return outcome

    def _decide(self, key, outcome, participants):
        for db_name in participants:
            self.send(db_name, msg.decide_message(key, outcome, tuple(participants)))
        pending = set(participants)
        while pending:
            reply = yield self.receive(is_type_with(msg.ACK_DECIDE, j=key))
            if reply.sender in pending:
                pending.discard(reply.sender)
        self.trace.record("as_terminate", self.name, client=key[0], j=key[1], outcome=outcome)


class BackupServer(Process):
    """The backup: mirrors the primary's state and takes over on suspicion."""

    def __init__(self, sim, name: str, primary_name: str, db_server_names: list[str],
                 failure_detector: Optional[FailureDetector] = None,
                 check_interval: float = 25.0):
        super().__init__(sim, name)
        self.primary_name = primary_name
        self.db_server_names = list(db_server_names)
        self.failure_detector = failure_detector
        self.check_interval = check_interval
        # (client, j) -> {"request":, "client":, "outcome":, "result":}
        self._state: dict[Any, dict[str, Any]] = {}
        self._taken_over: set[Any] = set()

    def on_start(self, recovery: bool) -> None:
        self.spawn(self._mirror(), name="pb-backup-mirror")
        self.spawn(self._monitor(), name="pb-backup-monitor")

    def _mirror(self):
        while True:
            message = yield self.receive(is_type(PB_START, PB_OUTCOME))
            key = message["j"]
            if message.msg_type == PB_START:
                self._state[key] = {"request": message["request"],
                                    "client": message["client"]}
                self.send(message.sender, Message(PB_START_ACK, payload={"j": key}))
            else:
                entry = self._state.setdefault(key, {"client": message["client"]})
                entry["outcome"] = message["outcome"]
                entry["result"] = message["result"]
                self.send(message.sender, Message(PB_OUTCOME_ACK, payload={"j": key}))

    def _monitor(self):
        while True:
            yield self.sleep(self.check_interval)
            if self.failure_detector is None:
                continue
            if not self.failure_detector.suspect(self.name, self.primary_name):
                continue
            for key, entry in list(self._state.items()):
                if key in self._taken_over:
                    continue
                self._taken_over.add(key)
                yield from self._take_over(key, entry)

    def _take_over(self, key, entry):
        """Finish (or abort) a result on behalf of the suspected primary."""
        outcome = entry.get("outcome", ABORT)
        result = entry.get("result")
        client = entry["client"]
        # Route the decision to the same participant set the primary used;
        # the request was replicated in the PB_START message.  An entry with
        # no request (outcome replicated without a start) falls back to every
        # database, which is safe: a database that never voted refuses a
        # commit and merely installs an abort tombstone.
        request = entry.get("request")
        if request is not None and request.participants:
            participants = [name for name in self.db_server_names
                            if name in request.participants]
        else:
            participants = list(self.db_server_names)
        self.trace.record("pb_takeover", self.name, client=client, j=key[1], outcome=outcome)
        for db_name in participants:
            self.send(db_name, msg.decide_message(key, outcome, tuple(participants)))
        pending = set(participants)
        while pending:
            reply = yield self.receive(is_type_with(msg.ACK_DECIDE, j=key))
            if reply.sender in pending:
                pending.discard(reply.sender)
        decision = Decision(result=result if outcome == COMMIT else None, outcome=outcome)
        self.trace.record("as_result_sent", self.name, client=client, j=key[1], outcome=outcome)
        self.send(client, msg.result_message(key[1], decision))


class PrimaryBackupDeployment(BaseThreeTierDeployment):
    """Three-tier deployment running the primary-backup comparator.

    The first application server is the primary, the second is the backup.
    ``failure_detector_override`` lets experiments replace the (correct)
    perfect failure detector with an unreliable one to reproduce the paper's
    inconsistency warning.
    """

    def __init__(self, config=None, failure_detector_override=None, **overrides):
        if config is None and "num_app_servers" not in overrides:
            overrides["num_app_servers"] = 2
        self._fd_override = failure_detector_override
        super().__init__(config, **overrides)

    def _build_app_servers(self) -> None:
        names = self.config.app_server_names
        if len(names) < 2:
            raise ValueError("primary-backup needs at least two application servers")
        primary_name, backup_name = names[0], names[1]
        primary = PrimaryServer(self.sim, primary_name, backup_name,
                                self.config.db_server_names)
        self.network.register(primary)
        self.app_servers[primary_name] = primary
        backup = BackupServer(self.sim, backup_name, primary_name,
                              self.config.db_server_names,
                              failure_detector=None)
        self.network.register(backup)
        self.app_servers[backup_name] = backup
        self._backup = backup

    def _start_all(self) -> None:
        # The perfect failure detector needs the network fully populated; give
        # the backup its detector (or the experiment's override) before starting.
        self._backup.failure_detector = (self._fd_override if self._fd_override is not None
                                         else self.failure_detector)
        super()._start_all()

    @property
    def primary(self) -> PrimaryServer:
        """The primary application server."""
        return self.app_servers[self.config.app_server_names[0]]  # type: ignore[return-value]

    @property
    def backup(self) -> BackupServer:
        """The backup application server."""
        return self._backup
