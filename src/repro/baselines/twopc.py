"""Presumed-nothing two-phase commit (the paper's Figure 7b).

The application server plays transaction manager: it force-writes a *start*
record to its local disk before sending prepare messages, collects votes,
force-writes the *outcome* record, then sends the decision and finally answers
the client.  This gives at-most-once semantics, but

* the two forced log writes cost ~25 ms (the 2PC column of Figure 8), and
* the protocol is *blocking*: if the coordinator crashes after the databases
  voted yes, they stay in doubt -- locks held -- until it comes back, and the
  client never learns the outcome.
"""

from __future__ import annotations

from repro.baselines.common import (
    BaseThreeTierDeployment,
    ParticipantRouting,
    RequestDeduplication,
)
from repro.core import messages as msg
from repro.core.types import ABORT, COMMIT, Decision, Request, Result, VOTE_YES
from repro.net.message import is_type, is_type_with
from repro.sim.process import Process
from repro.storage.stable import StableStorage
from repro.storage.wal import WriteAheadLog


class TwoPCCoordinator(RequestDeduplication, ParticipantRouting, Process):
    """Application server acting as a classic 2PC transaction manager."""

    def __init__(self, sim, name: str, db_server_names: list[str],
                 log_latency: float = 12.5):
        super().__init__(sim, name)
        self.db_server_names = list(db_server_names)
        self.disk = StableStorage(f"{name}.tmlog", forced_write_latency=log_latency)
        self.log = WriteAheadLog(self.disk)
        self._init_dedup()

    def on_start(self, recovery: bool) -> None:
        self.spawn(self._serve(), name="twopc-serve")

    def _serve(self):
        while True:
            message = yield self.receive(is_type(msg.REQUEST))
            client = message.sender
            j = message["j"]
            request: Request = message["request"]
            key = (client, j)
            if self._replay_duplicate(key):
                continue
            participants = self.participants_of(request)
            self.trace.record("as_request", self.name, client=client, j=j,
                              request_id=request.request_id)
            # Presumed nothing: force a start record before doing anything.
            cost = self.log.append_prepare(key, {"request": request.request_id}, forced=True)
            yield self.sleep(cost)
            self.trace.record("tm_log", self.name, which="start", j=j, client=client,
                              duration=cost)
            value = yield from self._execute(key, request, participants)
            result = Result(value=value, request_id=request.request_id, computed_by=self.name)
            self.trace.record("as_compute", self.name, client=client, j=j,
                              request_id=request.request_id, result=repr(value),
                              participants=list(participants))
            outcome = yield from self._prepare(key, participants)
            # Force the outcome record before telling anyone.
            cost = self.log.append_commit(key, forced=True) if outcome == COMMIT \
                else self.log.append_abort(key, forced=True)
            yield self.sleep(cost)
            self.trace.record("tm_log", self.name, which="outcome", j=j, client=client,
                              duration=cost)
            yield from self._decide(key, outcome, participants)
            decision = Decision(result=result if outcome == COMMIT else None, outcome=outcome)
            self._record_decision(key, decision)
            self.trace.record("as_result_sent", self.name, client=client, j=j, outcome=outcome)
            self.send(client, msg.result_message(j, decision))

    def _execute(self, key, request: Request, participants):
        values = {}
        for db_name in participants:
            self.send(db_name, msg.execute_message(key, request))
        pending = set(participants)
        while pending:
            reply = yield self.receive(is_type_with(msg.EXECUTE_RESULT, j=key))
            if reply.sender in pending:
                values[reply.sender] = reply["value"]
                pending.discard(reply.sender)
        return self.merge_values(values, participants)

    def _prepare(self, key, participants):
        votes = {}
        for db_name in participants:
            self.send(db_name, msg.prepare_message(key, tuple(participants)))
        pending = set(participants)
        while pending:
            reply = yield self.receive(is_type_with(msg.VOTE, j=key))
            if reply.sender in pending:
                votes[reply.sender] = reply["vote"]
                pending.discard(reply.sender)
        outcome = COMMIT if all(v == VOTE_YES for v in votes.values()) else ABORT
        self.trace.record("as_prepare", self.name, client=key[0], j=key[1],
                          outcome=outcome, votes=dict(votes))
        return outcome

    def _decide(self, key, outcome, participants):
        for db_name in participants:
            self.send(db_name, msg.decide_message(key, outcome, tuple(participants)))
        pending = set(participants)
        while pending:
            reply = yield self.receive(is_type_with(msg.ACK_DECIDE, j=key))
            if reply.sender in pending:
                pending.discard(reply.sender)
        self.trace.record("as_terminate", self.name, client=key[0], j=key[1], outcome=outcome)


class TwoPCDeployment(BaseThreeTierDeployment):
    """Three-tier deployment running presumed-nothing 2PC."""

    def _build_app_servers(self) -> None:
        for name in self.config.app_server_names:
            server = TwoPCCoordinator(self.sim, name, self.config.db_server_names,
                                      log_latency=self.config.coordinator_log_latency)
            self.network.register(server)
            self.app_servers[name] = server
