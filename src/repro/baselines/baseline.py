"""The unreliable baseline protocol (the paper's Figure 7a).

The client talks to a single application server, which runs the business logic
on the database and asks for a one-phase commit.  Nothing is logged and nothing
is replicated: if the application server crashes mid-request, the client never
hears back (no T.1), and if it crashes between the database commit and the
reply, a retry by the end user would execute the request twice (no A.2).
This is the protocol whose latency defines the 0 % row of Figure 8.
"""

from __future__ import annotations

from repro.baselines.common import (
    ACK_COMMIT,
    COMMIT_ONE_PHASE,
    BaseThreeTierDeployment,
    OnePhaseDatabaseServer,
    ParticipantRouting,
    RequestDeduplication,
)
from repro.core import messages as msg
from repro.core.types import ABORT, COMMIT, Decision, Request, Result
from repro.net.message import Message, is_type, is_type_with
from repro.sim.process import Process


class BaselineAppServer(RequestDeduplication, ParticipantRouting, Process):
    """A stateless application server offering no reliability guarantee."""

    def __init__(self, sim, name: str, db_server_names: list[str]):
        super().__init__(sim, name)
        self.db_server_names = list(db_server_names)
        self._init_dedup()

    def on_start(self, recovery: bool) -> None:
        self.spawn(self._serve(), name="baseline-serve")

    def _serve(self):
        while True:
            message = yield self.receive(is_type(msg.REQUEST))
            client = message.sender
            j = message["j"]
            request: Request = message["request"]
            key = (client, j)
            if self._replay_duplicate(key):
                continue
            participants = self.participants_of(request)
            self.trace.record("as_request", self.name, client=client, j=j,
                              request_id=request.request_id)
            value = yield from self._execute(key, request, participants)
            result = Result(value=value, request_id=request.request_id, computed_by=self.name)
            self.trace.record("as_compute", self.name, client=client, j=j,
                              request_id=request.request_id, result=repr(value),
                              participants=list(participants))
            committed = yield from self._commit(key, participants)
            outcome = COMMIT if committed else ABORT
            decision = Decision(result=result if committed else None, outcome=outcome)
            self._record_decision(key, decision)
            self.trace.record("as_result_sent", self.name, client=client, j=j, outcome=outcome)
            self.send(client, msg.result_message(j, decision))

    def _execute(self, key, request: Request, participants):
        """Run the business logic on every participant (no retries, no recovery)."""
        values = {}
        for db_name in participants:
            self.send(db_name, msg.execute_message(key, request))
        pending = set(participants)
        while pending:
            reply = yield self.receive(is_type_with(msg.EXECUTE_RESULT, j=key))
            if reply.sender in pending:
                values[reply.sender] = reply["value"]
                pending.discard(reply.sender)
        return self.merge_values(values, participants)

    def _commit(self, key, participants):
        """One-phase commit on every participant; returns overall success."""
        for db_name in participants:
            self.send(db_name, Message(COMMIT_ONE_PHASE, payload={"j": key}))
        pending = set(participants)
        while pending:
            reply = yield self.receive(is_type_with(ACK_COMMIT, j=key))
            if reply.sender in pending:
                pending.discard(reply.sender)
        return True


class BaselineDeployment(BaseThreeTierDeployment):
    """Three-tier deployment running the unreliable baseline protocol."""

    db_server_class = OnePhaseDatabaseServer

    def _build_app_servers(self) -> None:
        for name in self.config.app_server_names:
            server = BaselineAppServer(self.sim, name, self.config.db_server_names)
            self.network.register(server)
            self.app_servers[name] = server
