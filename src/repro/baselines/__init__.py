"""Comparison protocols: unreliable baseline, presumed-nothing 2PC, primary-backup."""

from repro.baselines.baseline import BaselineAppServer, BaselineDeployment
from repro.baselines.common import (
    ACK_COMMIT,
    COMMIT_ONE_PHASE,
    BaseThreeTierDeployment,
    BaselineConfig,
    OnePhaseDatabaseServer,
)
from repro.baselines.primary_backup import (
    BackupServer,
    PrimaryBackupDeployment,
    PrimaryServer,
)
from repro.baselines.twopc import TwoPCCoordinator, TwoPCDeployment

__all__ = [
    "BaselineConfig",
    "BaseThreeTierDeployment",
    "OnePhaseDatabaseServer",
    "COMMIT_ONE_PHASE",
    "ACK_COMMIT",
    "BaselineAppServer",
    "BaselineDeployment",
    "TwoPCCoordinator",
    "TwoPCDeployment",
    "PrimaryServer",
    "BackupServer",
    "PrimaryBackupDeployment",
]
