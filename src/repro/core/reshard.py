"""Online reconfiguration: resize the database tier while traffic flows.

The paper's deployment is static -- ``d`` database servers are fixed for a
run's lifetime.  This module adds the *elastic* reading: a reconfiguration
coordinator that migrates key ranges between database servers under live
load, without stopping the e-Transaction protocol and without violating its
specification.

The protocol is epoch-based and leans on the same building blocks as the
transaction path (idempotent request/reply exchanges, retransmission under
the fair-lossy channel model):

1. **begin** -- the coordinator opens a reconfiguration window on the shared
   :class:`~repro.core.sharding.ShardDirectory`: the *pending* placement
   (epoch ``e+1``) is published next to the *current* one (epoch ``e``).
   Traffic keeps routing against ``e``; transactions touching keys whose
   owner changes are deferred at the application tier.
2. **snapshot** -- each current shard reports which of its committed keys
   move where under the pending placement.  A shard whose moving keys are
   still pinned -- locked by an active/in-doubt transaction, or retained by
   an in-flight handler -- answers *busy* and the coordinator retries:
   in-flight transactions drain on the old epoch before their data moves.
3. **install** -- every destination durably adopts the values moving onto
   it (a forced ``migrate_in`` WAL record, so the install survives crashes).
4. **release** -- every source durably drops the keys that moved away
   (a forced ``migrate_out`` record; recovery will not resurrect them).
5. **commit** -- the pending placement becomes current, the epoch advances,
   deferred transactions wake up and re-route against the new participant
   sets.

Steps 2-4 are idempotent per epoch and individually retried, so the
coordinator tolerates message loss and database crash/recovery mid-window;
ordering (all installs before any release) guarantees that at every instant
each key has at least one durable owner.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core import messages as msg
from repro.core.sharding import ShardDirectory
from repro.net.message import from_senders, is_type_with
from repro.sim.process import Process
from repro.sim.scheduler import Simulator
from repro.sim.waits import TIMEOUT

RESHARD_COORDINATOR = "reshard-coord"
"""Process name of the (single) reconfiguration coordinator."""


class ReshardCoordinator(Process):
    """The reconfiguration coordinator process.

    Parameters
    ----------
    sim:
        The simulator.
    directory:
        The deployment's shared :class:`ShardDirectory`.
    db_server_names:
        *All* database-server names the deployment can ever use, in order --
        the running shards plus the standbys.  A reshard to ``n`` shards
        targets the first ``n`` of these.
    retry_interval:
        Pace of snapshot/install/release retransmissions (and of the drain
        poll while a source is busy).
    """

    def __init__(self, sim: Simulator, directory: ShardDirectory,
                 db_server_names: Sequence[str],
                 retry_interval: float = 5.0,
                 name: str = RESHARD_COORDINATOR):
        super().__init__(sim, name)
        self.directory = directory
        self.db_server_names = list(db_server_names)
        self.retry_interval = retry_interval
        # (from_count, to_count) transitions applied or in progress.
        self.completed: list[tuple[int, int]] = []
        self._active = False

    # ---------------------------------------------------------------- trigger

    def request(self, from_count: int, to_count: int) -> None:
        """Entry point for ``reshard@t:dX->dY`` fault actions.

        Called from the fault schedule at its trigger time; runs the
        migration on a dedicated coordinator thread.
        """
        self.spawn(self._run(from_count, to_count),
                   name=f"reshard:d{from_count}->d{to_count}")

    # ------------------------------------------------------------------- run

    def _run(self, from_count: int, to_count: int):
        if self._active:
            raise RuntimeError("overlapping reshard requests are not supported")
        current = self.directory.current
        if len(current.shards) != from_count:
            raise RuntimeError(
                f"reshard d{from_count}->d{to_count} does not match the "
                f"running tier of {len(current.shards)} shards")
        if to_count > len(self.db_server_names):
            raise RuntimeError(
                f"reshard targets {to_count} shards but the deployment only "
                f"provisioned {len(self.db_server_names)}")
        self._active = True
        target = current.resized(self.db_server_names[:to_count])
        epoch = target.epoch
        self.directory.begin(target)
        self.trace.record("reshard", self.name, stage="begin", epoch=epoch,
                          shards=list(target.shards),
                          from_count=from_count, to_count=to_count)

        # Snapshot each source in turn, draining its in-flight traffic.
        incoming: dict[str, dict[str, Any]] = {}
        outgoing: dict[str, list[str]] = {}
        for source in current.shards:
            data = yield from self._snapshot(source, epoch)
            keys: list[str] = []
            for dest, values in sorted(data.items()):
                incoming.setdefault(dest, {}).update(values)
                keys.extend(values)
            if keys:
                outgoing[source] = sorted(keys)

        # All installs strictly before any release: every key durably exists
        # at its new owner before the old owner forgets it.
        for dest in sorted(incoming):
            yield from self._deliver(dest, epoch, "install",
                                     msg.migrate_install_message(epoch, incoming[dest]))
        for source in current.shards:
            if source in outgoing:
                yield from self._deliver(source, epoch, "release",
                                         msg.migrate_release_message(
                                             epoch, tuple(outgoing[source])))

        self.directory.commit()
        self._active = False
        self.completed.append((from_count, to_count))
        moved = sum(len(keys) for keys in outgoing.values())
        self.trace.record("reshard", self.name, stage="commit", epoch=epoch,
                          shards=list(target.shards), moved_keys=moved,
                          from_count=from_count, to_count=to_count)

    # --------------------------------------------------------------- exchanges

    def _snapshot(self, source: str, epoch: int):
        """Retry ``MigrateSnapshot`` against ``source`` until it drains."""
        matcher = from_senders(
            [source], is_type_with(msg.MIGRATE_SNAPSHOT_REPLY, j=epoch))
        while True:
            self.send(source, msg.migrate_snapshot_message(epoch, ()))
            reply = yield self.receive(matcher, timeout=self.retry_interval)
            if reply is TIMEOUT:
                continue
            if reply["busy"]:
                # A moving key is pinned by in-flight work; let it drain.
                yield self.sleep(self.retry_interval)
                continue
            return reply["data"]

    def _deliver(self, shard: str, epoch: int, stage: str, message: Any):
        """Retry ``message`` against ``shard`` until its stage is acked."""
        matcher = from_senders(
            [shard], is_type_with(msg.MIGRATE_ACK, j=epoch, stage=stage))
        while True:
            self.send(shard, message.copy() if hasattr(message, "copy") else message)
            reply = yield self.receive(matcher, timeout=self.retry_interval)
            if reply is not TIMEOUT:
                return
