"""Executable specification of the e-Transaction problem (Section 3).

Two checkers verify the same properties:

* :class:`SpecificationChecker` (and its :func:`check_run` wrapper) is the
  historical **post-hoc** checker: it replays the complete stored trace after
  the run.  It needs ``full`` trace retention and time proportional to the
  trace, but is the executable definition of the properties.
* :class:`SpecMonitor` is the **online** checker: it subscribes to the trace
  event bus, folds every event into per-transaction state machines as it
  happens, emits eagerly-certain violations immediately, and retires
  completed transactions.  Its :meth:`~SpecMonitor.report` reproduces the
  post-hoc verdict byte-for-byte (same violations, same order, same checked
  properties) without ever storing a trace event, so it works under
  ``ring:N``/``off`` retention and over arbitrarily long runs.  Memory is
  O(in-flight transactions) for the heavy per-key machinery, plus id-sized
  bookkeeping that grows with the run's transactions and its decide/execute
  applications (key references kept so duplicate violations reproduce
  exactly) -- bytes per entry, never the stored-trace's payload-carrying
  event objects.

With a partitioned data tier, every intermediate result has a **participant
set** -- the database servers its transaction touches, recorded by the
computing application server in the ``as_compute`` trace event -- and the
agreement/validity properties quantify over that set rather than over every
database (on an unpartitioned deployment the two coincide):

* **T.1** -- if the client issues a request then, unless it crashes, it
  eventually delivers a result.
* **T.2** -- if any database server votes for a result, it eventually commits
  or aborts that result.
* **A.1** -- no result is delivered by the client unless it is committed by
  every *participant* database server.
* **A.2** -- no database server commits two different results (for the same
  request).
* **A.3** -- no two database servers decide differently on the same result.
* **V.1** -- a delivered result was computed by an application server with,
  as a parameter, a request issued by the client.
* **V.2** -- no database server commits a result unless every *participant*
  has voted yes for that result.
* **S.1** -- participant confinement: no database server outside a result's
  participant set executes or commits that result.  This is what makes the
  participant set *exact*: routing must neither under-approximate (A.1/V.2
  would catch a missing participant) nor over-approximate (S.1 catches a
  spurious one).

Under **online resharding** the shard universe itself changes over a run:
``reshard`` trace events publish each epoch's shard set, computations are
stamped with the epoch they routed against, and S.1 additionally requires
every stamped participant set to be contained in its epoch's universe --
a transaction must never route against shards its epoch does not know.
A.1/V.2/S.1 otherwise apply unchanged across epochs, because they quantify
over the *recorded* participant set of each result, whichever placement
generation produced it.

Termination properties are only meaningful if the run was given enough time
and the correctness assumptions held (majority of application servers up,
databases eventually up); the caller states this with ``check_termination``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.types import ABORT, COMMIT, VOTE_YES
from repro.sim.tracing import TraceEvent, TraceRecorder


@dataclass
class PropertyViolation:
    """One violated property instance."""

    property_name: str
    description: str

    def __str__(self) -> str:
        return f"[{self.property_name}] {self.description}"


@dataclass
class SpecReport:
    """Outcome of checking a run against the e-Transaction specification."""

    violations: list[PropertyViolation] = field(default_factory=list)
    checked_properties: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every checked property holds."""
        return not self.violations

    def violated(self, property_name: str) -> list[PropertyViolation]:
        """Violations of one property."""
        return [v for v in self.violations if v.property_name == property_name]

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        if not self.checked_properties and not self.violations:
            return "not checked (this process observed only part of the trace)"
        if self.ok:
            return f"all properties hold ({', '.join(self.checked_properties)})"
        lines = [f"{len(self.violations)} violation(s):"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


# Violation constructors shared by the post-hoc checker and the online
# monitor, so the two can never drift apart in wording.


def _t1_violation(client: str, request_id: Any) -> PropertyViolation:
    return PropertyViolation(
        "T.1", f"client {client} issued {request_id} but never delivered a result")


def _t2_violation(db: str, key: tuple) -> PropertyViolation:
    return PropertyViolation(
        "T.2", f"database {db} voted yes for result {key} but never decided it")


def _a1_violation(client: str, key: tuple, db: str) -> PropertyViolation:
    return PropertyViolation(
        "A.1",
        f"client {client} delivered result {key} but participant "
        f"database {db} did not commit it")


def _a2_violation(db: str, keys: set, request_id: Any) -> PropertyViolation:
    return PropertyViolation(
        "A.2",
        f"database {db} committed {len(keys)} different results "
        f"{sorted(keys)} for request {request_id}")


def _a3_violation(key: tuple, committed_dbs: list, yes_aborted: list) -> PropertyViolation:
    return PropertyViolation(
        "A.3",
        f"result {key}: committed at {committed_dbs} but aborted at "
        f"{yes_aborted} which had voted yes")


def _v1_uncomputed_violation(client: str, result_request: Any) -> PropertyViolation:
    return PropertyViolation(
        "V.1",
        f"client {client} delivered a result for {result_request} that no "
        f"application server computed")


def _v1_unissued_violation(client: str, result_request: Any) -> PropertyViolation:
    return PropertyViolation(
        "V.1",
        f"client {client} delivered a result for {result_request} that it "
        f"never issued")


def _v2_violation(db: str, key: tuple, other: str) -> PropertyViolation:
    return PropertyViolation(
        "V.2",
        f"database {db} committed result {key} but participant "
        f"{other} never voted yes for it")


def _s1_executed_violation(db: str, key: tuple, participants: tuple) -> PropertyViolation:
    return PropertyViolation(
        "S.1",
        f"database {db} executed result {key} outside its "
        f"participant set {list(participants)}")


def _s1_committed_violation(db: str, key: tuple, participants: tuple) -> PropertyViolation:
    return PropertyViolation(
        "S.1",
        f"database {db} committed result {key} outside its "
        f"participant set {list(participants)}")


def _s1_epoch_violation(key: tuple, epoch: Any, participants: tuple,
                        universe: tuple) -> PropertyViolation:
    return PropertyViolation(
        "S.1",
        f"result {key} was computed against epoch {epoch} but its participant "
        f"set {list(participants)} is not contained in that epoch's shard "
        f"universe {list(universe)}")


def _key_of_value(key: Any) -> tuple:
    """Normalise an event's ``j`` payload into a result key tuple."""
    return tuple(key) if isinstance(key, (list, tuple)) else (None, key)


class SpecificationChecker:
    """Checks the e-Transaction properties over a recorded trace (post hoc)."""

    def __init__(self, trace: TraceRecorder, db_server_names: list[str],
                 client_names: list[str]):
        self.trace = trace
        self.db_server_names = list(db_server_names)
        self.client_names = list(client_names)
        self._participants_cache: Optional[dict[tuple, tuple[str, ...]]] = None

    # ------------------------------------------------------------------- check

    def check(self, check_termination: bool = True) -> SpecReport:
        """Run every property check and return the report."""
        report = SpecReport()
        checks = [
            ("A.1", self._check_a1),
            ("A.2", self._check_a2),
            ("A.3", self._check_a3),
            ("V.1", self._check_v1),
            ("V.2", self._check_v2),
            ("S.1", self._check_s1),
        ]
        if check_termination:
            checks = [("T.1", self._check_t1), ("T.2", self._check_t2)] + checks
        for name, check in checks:
            report.checked_properties.append(name)
            report.violations.extend(check())
        return report

    # ------------------------------------------------------------ trace access

    def _crashed_forever(self, process: str) -> bool:
        """Whether ``process`` crashed and never recovered afterwards."""
        crashes = self.trace.select("crash", process)
        if not crashes:
            return False
        recoveries = self.trace.select("recover", process)
        last_crash = crashes[-1].time
        return not any(r.time >= last_crash for r in recoveries)

    def _delivered_request_ids(self, client: str) -> set[str]:
        return {e.get("request_id") for e in self.trace.select("client_deliver", client)}

    def _commits_by_db(self, db: str) -> list:
        return self.trace.select("db_decide", db, outcome=COMMIT)

    def _result_request(self, key) -> Optional[str]:
        """Map a result key ``(client, j)`` to the request it was computed for."""
        for event in self.trace.select("as_compute"):
            if (event.get("client"), event.get("j")) == tuple(key):
                return event.get("request_id")
        return None

    def participants_of(self, key) -> tuple[str, ...]:
        """The participant set of result ``key``.

        Read from the computing server's ``as_compute`` event; results with no
        recorded participant set (older traces, results that never reached the
        compute phase) default to the full database tier.
        """
        if self._participants_cache is None:
            cache: dict[tuple, tuple[str, ...]] = {}
            for event in self.trace.select("as_compute"):
                recorded = event.get("participants")
                if recorded:
                    cache[(event.get("client"), event.get("j"))] = tuple(recorded)
            self._participants_cache = cache
        return self._participants_cache.get(tuple(key), tuple(self.db_server_names))

    # ------------------------------------------------------------- termination

    def _check_t1(self) -> list[PropertyViolation]:
        violations = []
        for client in self.client_names:
            if self._crashed_forever(client):
                continue  # "unless it crashes"
            issued = {e.get("request_id") for e in self.trace.select("client_issue", client)}
            delivered = self._delivered_request_ids(client)
            for request_id in issued - delivered:
                violations.append(_t1_violation(client, request_id))
        return violations

    def _check_t2(self) -> list[PropertyViolation]:
        violations = []
        for db in self.db_server_names:
            voted = {self._key_of(e) for e in self.trace.select("db_vote", db, vote=VOTE_YES)}
            decided = {self._key_of(e) for e in self.trace.select("db_decide", db)}
            for key in voted - decided:
                violations.append(_t2_violation(db, key))
        return violations

    # --------------------------------------------------------------- agreement

    def _check_a1(self) -> list[PropertyViolation]:
        violations = []
        for client in self.client_names:
            for delivery in self.trace.select("client_deliver", client):
                key = (client, delivery.get("j"))
                for db in self.participants_of(key):
                    committed = [e for e in self._commits_by_db(db)
                                 if self._key_of(e) == key]
                    if not committed:
                        violations.append(_a1_violation(client, key, db))
        return violations

    def _check_a2(self) -> list[PropertyViolation]:
        violations = []
        for db in self.db_server_names:
            committed_by_request: dict[str, set] = {}
            for event in self._commits_by_db(db):
                key = self._key_of(event)
                request_id = self._result_request(key)
                if request_id is None:
                    continue
                committed_by_request.setdefault(request_id, set()).add(key)
            for request_id, keys in committed_by_request.items():
                if len(keys) > 1:
                    violations.append(_a2_violation(db, keys, request_id))
        return violations

    def _check_a3(self) -> list[PropertyViolation]:
        violations = []
        outcomes: dict[tuple, dict[str, set]] = {}
        for db in self.db_server_names:
            for event in self.trace.select("db_decide", db):
                key = self._key_of(event)
                outcomes.setdefault(key, {}).setdefault(db, set()).add(event.get("outcome"))
        for key, per_db in outcomes.items():
            final_outcomes = set()
            for db, values in per_db.items():
                # A database may first refuse a commit (abort) and later apply a
                # commit only if it voted yes; what matters is that no two
                # databases *finally* disagree: a commit anywhere must not
                # coexist with an abort-only database that voted yes.
                final_outcomes.add(COMMIT if COMMIT in values else ABORT)
            if final_outcomes == {COMMIT, ABORT}:
                committed_dbs = [db for db, v in per_db.items() if COMMIT in v]
                aborted_only = [db for db, v in per_db.items() if COMMIT not in v]
                yes_aborted = [db for db in aborted_only
                               if self.trace.count("db_vote", db, j=key, vote=VOTE_YES) > 0]
                if yes_aborted:
                    violations.append(_a3_violation(key, committed_dbs, yes_aborted))
        return violations

    # ----------------------------------------------------------------- validity

    def _check_v1(self) -> list[PropertyViolation]:
        violations = []
        for client in self.client_names:
            issued = {e.get("request_id") for e in self.trace.select("client_issue", client)}
            computed = {e.get("request_id") for e in self.trace.select("as_compute")}
            for delivery in self.trace.select("client_deliver", client):
                result_request = delivery.get("result_request_id")
                if result_request not in computed:
                    violations.append(_v1_uncomputed_violation(client, result_request))
                if result_request not in issued:
                    violations.append(_v1_unissued_violation(client, result_request))
        return violations

    def _check_v2(self) -> list[PropertyViolation]:
        violations = []
        for db in self.db_server_names:
            for event in self._commits_by_db(db):
                key = self._key_of(event)
                for other in self.participants_of(key):
                    yes_votes = [e for e in self.trace.select("db_vote", other, vote=VOTE_YES)
                                 if self._key_of(e) == key]
                    if not yes_votes:
                        violations.append(_v2_violation(db, key, other))
        return violations

    # ---------------------------------------------------------------- sharding

    def _check_s1(self) -> list[PropertyViolation]:
        """Participant confinement: work stays inside the participant set.

        Aborts outside the set are tolerated (a cleaner that cannot know the
        participants may conservatively abort everywhere, which is harmless:
        aborting a transaction a database never saw installs a tombstone and
        changes no data), but an *execution* or a *commit* at a non-participant
        means the routing layer leaked work across shard boundaries.
        """
        violations = []
        for db in self.db_server_names:
            for event in self.trace.select("db_execute", db):
                key = self._key_of(event)
                participants = self.participants_of(key)
                if db not in participants:
                    violations.append(_s1_executed_violation(db, key, participants))
            for event in self._commits_by_db(db):
                key = self._key_of(event)
                participants = self.participants_of(key)
                if db not in participants:
                    violations.append(_s1_committed_violation(db, key, participants))
        # Epoch confinement (online resharding): a computation stamped with an
        # epoch must route only against shards that epoch's universe knows.
        universes = self._epoch_universes()
        for event in self.trace.select("as_compute"):
            epoch = event.get("epoch")
            if epoch is None:
                continue
            key = (event.get("client"), event.get("j"))
            participants = tuple(event.get("participants") or ())
            universe = universes.get(epoch, ())
            if not set(participants) <= set(universe):
                violations.append(_s1_epoch_violation(key, epoch, participants,
                                                      universe))
        return violations

    def _epoch_universes(self) -> dict[Any, tuple[str, ...]]:
        """Epoch -> shard universe, from the run's ``reshard`` events."""
        universes: dict[Any, tuple[str, ...]] = {}
        for event in self.trace.select("reshard"):
            if event.get("stage") in ("init", "commit"):
                universes[event.get("epoch")] = tuple(event.get("shards") or ())
        return universes

    # ----------------------------------------------------------------- helpers

    @staticmethod
    def _key_of(event) -> tuple:
        return _key_of_value(event.get("j"))


def check_run(trace: TraceRecorder, db_server_names: list[str],
              client_names: list[str], check_termination: bool = True) -> SpecReport:
    """Check the e-Transaction properties of one run post hoc, in one call.

    Requires ``full`` trace retention; this is the reference implementation
    the online :class:`SpecMonitor` is tested for byte-identical verdicts
    against.
    """
    checker = SpecificationChecker(trace, db_server_names, client_names)
    return checker.check(check_termination=check_termination)


# --------------------------------------------------------------------------
# Online monitor
# --------------------------------------------------------------------------

SPEC_CATEGORIES = ("crash", "recover", "client_issue", "client_deliver",
                   "as_compute", "db_vote", "db_decide", "db_execute",
                   "reshard")
"""Trace categories the online monitor consumes."""


class SpecMonitor:
    """Online e-Transaction specification checker fed by the trace event bus.

    Subscribe with :meth:`attach` (or pass an already-built recorder to the
    constructor and call :meth:`attach` yourself).  The monitor keeps

    * per-transaction state machines (participants, votes, per-database
      decision outcomes, pending commits) that are **retired** once the
      transaction is terminally resolved -- delivered and decided everywhere
      it needs to be -- so this part of the state is O(in-flight);
    * compact id-level bookkeeping (issued/delivered/computed request-id
      sets, per-database voted/decided key sets and commit/execute key
      sequences) that the final report needs to reproduce the post-hoc
      verdict exactly.  This part is small tuples and strings -- the sets
      grow with the number of transactions, the commit/execute sequences
      with the number of decide/execute applications (so duplicate
      violations replay byte-identically) -- a few bytes per entry versus
      the hundreds per stored, payload-carrying trace event.

    Violations that are already certain mid-run (a second commit for the same
    request, work outside the participant set, a delivery of an uncomputed
    result) are appended to :attr:`live_violations` and passed to the
    ``on_violation`` callback the moment the offending event arrives.  The
    authoritative verdict is :meth:`report`, which evaluates every property
    exactly as :func:`check_run` would over the full trace.
    """

    def __init__(self, db_server_names: list[str], client_names: list[str],
                 on_violation: Optional[Callable[[PropertyViolation], None]] = None):
        self.db_server_names = list(db_server_names)
        self.client_names = list(client_names)
        self.on_violation = on_violation
        self.live_violations: list[PropertyViolation] = []
        self._unsubscribers: list[Callable[[], None]] = []
        # crash / recover ---------------------------------------------------
        self._last_crash: dict[str, float] = {}
        self._last_recover: dict[str, float] = {}
        # clients -----------------------------------------------------------
        self._issued: dict[str, set] = {c: set() for c in self.client_names}
        self._delivered_ids: dict[str, set] = {c: set() for c in self.client_names}
        self._deliveries: dict[str, list[tuple]] = {c: [] for c in self.client_names}
        # computation -------------------------------------------------------
        self._computed: set = set()
        self._participants: dict[tuple, tuple[str, ...]] = {}
        self._result_request: dict[tuple, Any] = {}
        # databases ---------------------------------------------------------
        self._voted_yes: dict[str, set] = {d: set() for d in self.db_server_names}
        self._decided: dict[str, set] = {d: set() for d in self.db_server_names}
        self._decide_outcomes: dict[str, dict[tuple, set]] = \
            {d: {} for d in self.db_server_names}
        self._commits: dict[str, list[tuple]] = {d: [] for d in self.db_server_names}
        self._executes: dict[str, list[tuple]] = {d: [] for d in self.db_server_names}
        # per-db request-id -> committed keys, for the eager A.2 check.
        self._a2_index: dict[str, dict[Any, set]] = {d: {} for d in self.db_server_names}
        # online resharding -------------------------------------------------
        # epoch -> shard universe (from ``reshard`` events), and the ordered
        # (key, epoch, participants) stamps of epoch-routed computations.
        self._epoch_universes: dict[Any, tuple[str, ...]] = {}
        self._epoch_stamps: list[tuple[tuple, Any, tuple[str, ...]]] = []
        # in-flight transaction tracking ------------------------------------
        self._pending_decides: dict[tuple, set] = {}
        self._pending_commits: dict[tuple, set] = {}
        self._retired = 0

    # ----------------------------------------------------------- subscription

    @classmethod
    def attach(cls, trace: TraceRecorder, db_server_names: list[str],
               client_names: list[str],
               on_violation: Optional[Callable[[PropertyViolation], None]] = None
               ) -> "SpecMonitor":
        """Create a monitor and subscribe it to ``trace``'s event bus."""
        monitor = cls(db_server_names, client_names, on_violation=on_violation)
        handlers = {
            "crash": monitor._on_crash,
            "recover": monitor._on_recover,
            "client_issue": monitor._on_client_issue,
            "client_deliver": monitor._on_client_deliver,
            "as_compute": monitor._on_as_compute,
            "db_vote": monitor._on_db_vote,
            "db_decide": monitor._on_db_decide,
            "db_execute": monitor._on_db_execute,
            "reshard": monitor._on_reshard,
        }
        for category, handler in handlers.items():
            monitor._unsubscribers.append(trace.subscribe(category, handler))
        return monitor

    def detach(self) -> None:
        """Unsubscribe from the trace bus (the accumulated state stays)."""
        for unsubscribe in self._unsubscribers:
            unsubscribe()
        self._unsubscribers.clear()

    # -------------------------------------------------------------- telemetry

    @property
    def in_flight(self) -> int:
        """Transactions begun but not yet terminally resolved.

        A transaction may be waiting for decides and for post-delivery
        commits at once, so the two pending tables are counted as a union.
        """
        return len(self._pending_decides.keys() | self._pending_commits.keys())

    @property
    def retired(self) -> int:
        """Transactions whose per-key machinery has been retired."""
        return self._retired

    # ---------------------------------------------------------- event folding

    def _emit(self, violation: PropertyViolation) -> None:
        self.live_violations.append(violation)
        if self.on_violation is not None:
            self.on_violation(violation)

    def _on_crash(self, event: TraceEvent) -> None:
        self._last_crash[event.process] = event.time

    def _on_recover(self, event: TraceEvent) -> None:
        self._last_recover[event.process] = event.time

    def _crashed_forever(self, process: str) -> bool:
        last_crash = self._last_crash.get(process)
        if last_crash is None:
            return False
        last_recover = self._last_recover.get(process)
        return last_recover is None or last_recover < last_crash

    def _on_client_issue(self, event: TraceEvent) -> None:
        issued = self._issued.get(event.process)
        if issued is not None:
            issued.add(event.get("request_id"))

    def _on_client_deliver(self, event: TraceEvent) -> None:
        client = event.process
        if client not in self._delivered_ids:
            return
        self._delivered_ids[client].add(event.get("request_id"))
        result_request = event.get("result_request_id")
        self._deliveries[client].append((event.get("j"), result_request))
        # V.1, eagerly certain: computation always precedes delivery.
        if result_request not in self._computed:
            self._emit(_v1_uncomputed_violation(client, result_request))
        if result_request not in self._issued[client]:
            self._emit(_v1_unissued_violation(client, result_request))
        # Arm A.1: the delivery is only safe once every participant committed.
        key = (client, event.get("j"))
        missing = {db for db in self.participants_of(key)
                   if COMMIT not in self._decide_outcomes.get(db, {}).get(key, ())}
        if missing:
            self._pending_commits[key] = missing
        else:
            self._retire(key)

    def _on_reshard(self, event: TraceEvent) -> None:
        if event.get("stage") in ("init", "commit"):
            self._epoch_universes[event.get("epoch")] = \
                tuple(event.get("shards") or ())

    def _on_as_compute(self, event: TraceEvent) -> None:
        self._computed.add(event.get("request_id"))
        key = (event.get("client"), event.get("j"))
        recorded = event.get("participants")
        if recorded:
            self._participants[key] = tuple(recorded)
        self._result_request.setdefault(key, event.get("request_id"))
        self._pending_decides.setdefault(key, set()).update(self.participants_of(key))
        epoch = event.get("epoch")
        if epoch is not None:
            participants = tuple(recorded or ())
            self._epoch_stamps.append((key, epoch, participants))
            # Epoch confinement, eagerly certain: the universe of an epoch is
            # published (reshard init/commit) before anything routes on it.
            universe = self._epoch_universes.get(epoch, ())
            if not set(participants) <= set(universe):
                self._emit(_s1_epoch_violation(key, epoch, participants, universe))

    def _on_db_vote(self, event: TraceEvent) -> None:
        if event.get("vote") != VOTE_YES:
            return
        voted = self._voted_yes.get(event.process)
        if voted is not None:
            voted.add(_key_of_value(event.get("j")))

    def _on_db_execute(self, event: TraceEvent) -> None:
        db = event.process
        if db not in self._executes:
            return
        key = _key_of_value(event.get("j"))
        self._executes[db].append(key)
        participants = self.participants_of(key)
        if key in self._participants and db not in participants:
            self._emit(_s1_executed_violation(db, key, participants))

    def _on_db_decide(self, event: TraceEvent) -> None:
        db = event.process
        if db not in self._decided:
            return
        key = _key_of_value(event.get("j"))
        outcome = event.get("outcome")
        self._decided[db].add(key)
        self._decide_outcomes[db].setdefault(key, set()).add(outcome)
        pending = self._pending_decides.get(key)
        if pending is not None:
            pending.discard(db)
            if not pending and key not in self._pending_commits:
                del self._pending_decides[key]
        if outcome != COMMIT:
            return
        self._commits[db].append(key)
        participants = self.participants_of(key)
        # S.1, eagerly certain once the participant set is on record.
        if key in self._participants and db not in participants:
            self._emit(_s1_committed_violation(db, key, participants))
        # A.2, eagerly certain: two different committed results, same request.
        request_id = self._result_request.get(key)
        if request_id is not None:
            committed_keys = self._a2_index[db].setdefault(request_id, set())
            if key not in committed_keys:
                committed_keys.add(key)
                if len(committed_keys) > 1:
                    self._emit(_a2_violation(db, committed_keys, request_id))
        # Disarm A.1 for this participant.
        missing = self._pending_commits.get(key)
        if missing is not None:
            missing.discard(db)
            if not missing:
                del self._pending_commits[key]
                self._retire(key)

    def _retire(self, key: tuple) -> None:
        """Drop the in-flight machinery of a terminally resolved transaction."""
        self._pending_decides.pop(key, None)
        self._retired += 1

    # ----------------------------------------------------------------- report

    def participants_of(self, key) -> tuple[str, ...]:
        """The participant set of result ``key`` (default: every database)."""
        recorded = self._participants.get(tuple(key))
        return recorded if recorded else tuple(self.db_server_names)

    def report(self, check_termination: bool = True) -> SpecReport:
        """The authoritative verdict over everything observed so far.

        Property-by-property identical to what :func:`check_run` computes from
        a complete stored trace, including violation order.
        """
        report = SpecReport()
        checks = [
            ("A.1", self._report_a1),
            ("A.2", self._report_a2),
            ("A.3", self._report_a3),
            ("V.1", self._report_v1),
            ("V.2", self._report_v2),
            ("S.1", self._report_s1),
        ]
        if check_termination:
            checks = [("T.1", self._report_t1), ("T.2", self._report_t2)] + checks
        for name, check in checks:
            report.checked_properties.append(name)
            report.violations.extend(check())
        return report

    def _report_t1(self) -> list[PropertyViolation]:
        violations = []
        for client in self.client_names:
            if self._crashed_forever(client):
                continue  # "unless it crashes"
            for request_id in self._issued[client] - self._delivered_ids[client]:
                violations.append(_t1_violation(client, request_id))
        return violations

    def _report_t2(self) -> list[PropertyViolation]:
        violations = []
        for db in self.db_server_names:
            for key in self._voted_yes[db] - self._decided[db]:
                violations.append(_t2_violation(db, key))
        return violations

    def _report_a1(self) -> list[PropertyViolation]:
        violations = []
        for client in self.client_names:
            for j, _result_request in self._deliveries[client]:
                key = (client, j)
                for db in self.participants_of(key):
                    if COMMIT not in self._decide_outcomes.get(db, {}).get(key, ()):
                        violations.append(_a1_violation(client, key, db))
        return violations

    def _report_a2(self) -> list[PropertyViolation]:
        violations = []
        for db in self.db_server_names:
            committed_by_request: dict[Any, set] = {}
            for key in self._commits[db]:
                request_id = self._result_request.get(key)
                if request_id is None:
                    continue
                committed_by_request.setdefault(request_id, set()).add(key)
            for request_id, keys in committed_by_request.items():
                if len(keys) > 1:
                    violations.append(_a2_violation(db, keys, request_id))
        return violations

    def _report_a3(self) -> list[PropertyViolation]:
        violations = []
        outcomes: dict[tuple, dict[str, set]] = {}
        for db in self.db_server_names:
            for key, values in self._decide_outcomes[db].items():
                outcomes.setdefault(key, {})[db] = values
        for key, per_db in outcomes.items():
            final_outcomes = set()
            for db, values in per_db.items():
                final_outcomes.add(COMMIT if COMMIT in values else ABORT)
            if final_outcomes == {COMMIT, ABORT}:
                committed_dbs = [db for db, v in per_db.items() if COMMIT in v]
                aborted_only = [db for db, v in per_db.items() if COMMIT not in v]
                yes_aborted = [db for db in aborted_only
                               if key in self._voted_yes[db]]
                if yes_aborted:
                    violations.append(_a3_violation(key, committed_dbs, yes_aborted))
        return violations

    def _report_v1(self) -> list[PropertyViolation]:
        violations = []
        for client in self.client_names:
            issued = self._issued[client]
            for _j, result_request in self._deliveries[client]:
                if result_request not in self._computed:
                    violations.append(_v1_uncomputed_violation(client, result_request))
                if result_request not in issued:
                    violations.append(_v1_unissued_violation(client, result_request))
        return violations

    def _report_v2(self) -> list[PropertyViolation]:
        violations = []
        for db in self.db_server_names:
            for key in self._commits[db]:
                for other in self.participants_of(key):
                    if key not in self._voted_yes.get(other, ()):
                        violations.append(_v2_violation(db, key, other))
        return violations

    def _report_s1(self) -> list[PropertyViolation]:
        violations = []
        for db in self.db_server_names:
            for key in self._executes[db]:
                participants = self.participants_of(key)
                if db not in participants:
                    violations.append(_s1_executed_violation(db, key, participants))
            for key in self._commits[db]:
                participants = self.participants_of(key)
                if db not in participants:
                    violations.append(_s1_committed_violation(db, key, participants))
        for key, epoch, participants in self._epoch_stamps:
            universe = self._epoch_universes.get(epoch, ())
            if not set(participants) <= set(universe):
                violations.append(_s1_epoch_violation(key, epoch, participants,
                                                      universe))
        return violations
