"""Executable specification of the e-Transaction problem (Section 3).

The checker consumes the structured trace of a run and verifies each property.
With a partitioned data tier, every intermediate result has a **participant
set** -- the database servers its transaction touches, recorded by the
computing application server in the ``as_compute`` trace event -- and the
agreement/validity properties quantify over that set rather than over every
database (on an unpartitioned deployment the two coincide):

* **T.1** -- if the client issues a request then, unless it crashes, it
  eventually delivers a result.
* **T.2** -- if any database server votes for a result, it eventually commits
  or aborts that result.
* **A.1** -- no result is delivered by the client unless it is committed by
  every *participant* database server.
* **A.2** -- no database server commits two different results (for the same
  request).
* **A.3** -- no two database servers decide differently on the same result.
* **V.1** -- a delivered result was computed by an application server with,
  as a parameter, a request issued by the client.
* **V.2** -- no database server commits a result unless every *participant*
  has voted yes for that result.
* **S.1** -- participant confinement: no database server outside a result's
  participant set executes or commits that result.  This is what makes the
  participant set *exact*: routing must neither under-approximate (A.1/V.2
  would catch a missing participant) nor over-approximate (S.1 catches a
  spurious one).

Termination properties are only meaningful if the run was given enough time
and the correctness assumptions held (majority of application servers up,
databases eventually up); the caller states this with ``check_termination``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.types import ABORT, COMMIT, VOTE_YES
from repro.sim.tracing import TraceRecorder


@dataclass
class PropertyViolation:
    """One violated property instance."""

    property_name: str
    description: str

    def __str__(self) -> str:
        return f"[{self.property_name}] {self.description}"


@dataclass
class SpecReport:
    """Outcome of checking a run against the e-Transaction specification."""

    violations: list[PropertyViolation] = field(default_factory=list)
    checked_properties: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every checked property holds."""
        return not self.violations

    def violated(self, property_name: str) -> list[PropertyViolation]:
        """Violations of one property."""
        return [v for v in self.violations if v.property_name == property_name]

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        if self.ok:
            return f"all properties hold ({', '.join(self.checked_properties)})"
        lines = [f"{len(self.violations)} violation(s):"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


class SpecificationChecker:
    """Checks the e-Transaction properties over a recorded trace."""

    def __init__(self, trace: TraceRecorder, db_server_names: list[str],
                 client_names: list[str]):
        self.trace = trace
        self.db_server_names = list(db_server_names)
        self.client_names = list(client_names)
        self._participants_cache: Optional[dict[tuple, tuple[str, ...]]] = None

    # ------------------------------------------------------------------- check

    def check(self, check_termination: bool = True) -> SpecReport:
        """Run every property check and return the report."""
        report = SpecReport()
        checks = [
            ("A.1", self._check_a1),
            ("A.2", self._check_a2),
            ("A.3", self._check_a3),
            ("V.1", self._check_v1),
            ("V.2", self._check_v2),
            ("S.1", self._check_s1),
        ]
        if check_termination:
            checks = [("T.1", self._check_t1), ("T.2", self._check_t2)] + checks
        for name, check in checks:
            report.checked_properties.append(name)
            report.violations.extend(check())
        return report

    # ------------------------------------------------------------ trace access

    def _crashed_forever(self, process: str) -> bool:
        """Whether ``process`` crashed and never recovered afterwards."""
        crashes = self.trace.select("crash", process)
        if not crashes:
            return False
        recoveries = self.trace.select("recover", process)
        last_crash = crashes[-1].time
        return not any(r.time >= last_crash for r in recoveries)

    def _delivered_request_ids(self, client: str) -> set[str]:
        return {e.get("request_id") for e in self.trace.select("client_deliver", client)}

    def _commits_by_db(self, db: str) -> list:
        return self.trace.select("db_decide", db, outcome=COMMIT)

    def _result_request(self, key) -> Optional[str]:
        """Map a result key ``(client, j)`` to the request it was computed for."""
        for event in self.trace.select("as_compute"):
            if (event.get("client"), event.get("j")) == tuple(key):
                return event.get("request_id")
        return None

    def participants_of(self, key) -> tuple[str, ...]:
        """The participant set of result ``key``.

        Read from the computing server's ``as_compute`` event; results with no
        recorded participant set (older traces, results that never reached the
        compute phase) default to the full database tier.
        """
        if self._participants_cache is None:
            cache: dict[tuple, tuple[str, ...]] = {}
            for event in self.trace.select("as_compute"):
                recorded = event.get("participants")
                if recorded:
                    cache[(event.get("client"), event.get("j"))] = tuple(recorded)
            self._participants_cache = cache
        return self._participants_cache.get(tuple(key), tuple(self.db_server_names))

    # ------------------------------------------------------------- termination

    def _check_t1(self) -> list[PropertyViolation]:
        violations = []
        for client in self.client_names:
            if self._crashed_forever(client):
                continue  # "unless it crashes"
            issued = {e.get("request_id") for e in self.trace.select("client_issue", client)}
            delivered = self._delivered_request_ids(client)
            for request_id in issued - delivered:
                violations.append(PropertyViolation(
                    "T.1", f"client {client} issued {request_id} but never delivered a result"))
        return violations

    def _check_t2(self) -> list[PropertyViolation]:
        violations = []
        for db in self.db_server_names:
            voted = {self._key_of(e) for e in self.trace.select("db_vote", db, vote=VOTE_YES)}
            decided = {self._key_of(e) for e in self.trace.select("db_decide", db)}
            for key in voted - decided:
                violations.append(PropertyViolation(
                    "T.2", f"database {db} voted yes for result {key} but never decided it"))
        return violations

    # --------------------------------------------------------------- agreement

    def _check_a1(self) -> list[PropertyViolation]:
        violations = []
        for client in self.client_names:
            for delivery in self.trace.select("client_deliver", client):
                key = (client, delivery.get("j"))
                for db in self.participants_of(key):
                    committed = [e for e in self._commits_by_db(db)
                                 if self._key_of(e) == key]
                    if not committed:
                        violations.append(PropertyViolation(
                            "A.1",
                            f"client {client} delivered result {key} but participant "
                            f"database {db} did not commit it"))
        return violations

    def _check_a2(self) -> list[PropertyViolation]:
        violations = []
        for db in self.db_server_names:
            committed_by_request: dict[str, set] = {}
            for event in self._commits_by_db(db):
                key = self._key_of(event)
                request_id = self._result_request(key)
                if request_id is None:
                    continue
                committed_by_request.setdefault(request_id, set()).add(key)
            for request_id, keys in committed_by_request.items():
                if len(keys) > 1:
                    violations.append(PropertyViolation(
                        "A.2",
                        f"database {db} committed {len(keys)} different results "
                        f"{sorted(keys)} for request {request_id}"))
        return violations

    def _check_a3(self) -> list[PropertyViolation]:
        violations = []
        outcomes: dict[tuple, dict[str, set]] = {}
        for db in self.db_server_names:
            for event in self.trace.select("db_decide", db):
                key = self._key_of(event)
                outcomes.setdefault(key, {}).setdefault(db, set()).add(event.get("outcome"))
        for key, per_db in outcomes.items():
            final_outcomes = set()
            for db, values in per_db.items():
                # A database may first refuse a commit (abort) and later apply a
                # commit only if it voted yes; what matters is that no two
                # databases *finally* disagree: a commit anywhere must not
                # coexist with an abort-only database that voted yes.
                final_outcomes.add(COMMIT if COMMIT in values else ABORT)
            if final_outcomes == {COMMIT, ABORT}:
                committed_dbs = [db for db, v in per_db.items() if COMMIT in v]
                aborted_only = [db for db, v in per_db.items() if COMMIT not in v]
                yes_aborted = [db for db in aborted_only
                               if self.trace.count("db_vote", db, j=key, vote=VOTE_YES) > 0]
                if yes_aborted:
                    violations.append(PropertyViolation(
                        "A.3",
                        f"result {key}: committed at {committed_dbs} but aborted at "
                        f"{yes_aborted} which had voted yes"))
        return violations

    # ----------------------------------------------------------------- validity

    def _check_v1(self) -> list[PropertyViolation]:
        violations = []
        for client in self.client_names:
            issued = {e.get("request_id") for e in self.trace.select("client_issue", client)}
            computed = {e.get("request_id") for e in self.trace.select("as_compute")}
            for delivery in self.trace.select("client_deliver", client):
                result_request = delivery.get("result_request_id")
                if result_request not in computed:
                    violations.append(PropertyViolation(
                        "V.1",
                        f"client {client} delivered a result for {result_request} that no "
                        f"application server computed"))
                if result_request not in issued:
                    violations.append(PropertyViolation(
                        "V.1",
                        f"client {client} delivered a result for {result_request} that it "
                        f"never issued"))
        return violations

    def _check_v2(self) -> list[PropertyViolation]:
        violations = []
        for db in self.db_server_names:
            for event in self._commits_by_db(db):
                key = self._key_of(event)
                for other in self.participants_of(key):
                    yes_votes = [e for e in self.trace.select("db_vote", other, vote=VOTE_YES)
                                 if self._key_of(e) == key]
                    if not yes_votes:
                        violations.append(PropertyViolation(
                            "V.2",
                            f"database {db} committed result {key} but participant "
                            f"{other} never voted yes for it"))
        return violations

    # ---------------------------------------------------------------- sharding

    def _check_s1(self) -> list[PropertyViolation]:
        """Participant confinement: work stays inside the participant set.

        Aborts outside the set are tolerated (a cleaner that cannot know the
        participants may conservatively abort everywhere, which is harmless:
        aborting a transaction a database never saw installs a tombstone and
        changes no data), but an *execution* or a *commit* at a non-participant
        means the routing layer leaked work across shard boundaries.
        """
        violations = []
        for db in self.db_server_names:
            for event in self.trace.select("db_execute", db):
                key = self._key_of(event)
                participants = self.participants_of(key)
                if db not in participants:
                    violations.append(PropertyViolation(
                        "S.1",
                        f"database {db} executed result {key} outside its "
                        f"participant set {list(participants)}"))
            for event in self._commits_by_db(db):
                key = self._key_of(event)
                participants = self.participants_of(key)
                if db not in participants:
                    violations.append(PropertyViolation(
                        "S.1",
                        f"database {db} committed result {key} outside its "
                        f"participant set {list(participants)}"))
        return violations

    # ----------------------------------------------------------------- helpers

    @staticmethod
    def _key_of(event) -> tuple:
        key = event.get("j")
        return tuple(key) if isinstance(key, (list, tuple)) else (None, key)


def check_run(trace: TraceRecorder, db_server_names: list[str],
              client_names: list[str], check_termination: bool = True) -> SpecReport:
    """Check the e-Transaction properties of one run in a single call.

    Shared by every deployment's ``check_spec`` so the protocol stacks are
    judged by exactly the same checker wiring.
    """
    checker = SpecificationChecker(trace, db_server_names, client_names)
    return checker.check(check_termination=check_termination)
