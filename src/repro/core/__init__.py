"""The e-Transaction protocol: client, application servers, database servers, spec.

This package is the paper's primary contribution.  Typical use::

    from repro.core import DeploymentConfig, EtxDeployment, Request

    deployment = EtxDeployment(DeploymentConfig(num_app_servers=3, num_db_servers=1))
    issued = deployment.run_request(Request("payment", {"amount": 10}))
    assert issued.delivered
    assert deployment.check_spec().ok
"""

from repro.core.appserver import ApplicationServer, RegisterPair
from repro.core.client import Client, IssuedRequest
from repro.core.dataserver import DatabaseServer
from repro.core.deployment import (
    FD_HEARTBEAT,
    FD_ORACLE,
    REGISTER_CONSENSUS,
    REGISTER_LOCAL,
    DeploymentConfig,
    EtxDeployment,
    default_business_logic,
)
from repro.core.sharding import (
    KNOWN_PLACEMENTS,
    PLACEMENT_HASH,
    PLACEMENT_MOD,
    PLACEMENT_REPLICATE,
    Sharding,
)
from repro.core.spec import PropertyViolation, SpecificationChecker, SpecReport
from repro.core.timing import DatabaseTiming, ProtocolTiming
from repro.core.types import (
    ABORT,
    ABORT_DECISION,
    COMMIT,
    VOTE_NO,
    VOTE_YES,
    Decision,
    Request,
    Result,
    ResultKey,
)

__all__ = [
    "ApplicationServer",
    "RegisterPair",
    "Client",
    "IssuedRequest",
    "DatabaseServer",
    "DeploymentConfig",
    "EtxDeployment",
    "default_business_logic",
    "REGISTER_CONSENSUS",
    "REGISTER_LOCAL",
    "FD_ORACLE",
    "FD_HEARTBEAT",
    "Sharding",
    "KNOWN_PLACEMENTS",
    "PLACEMENT_REPLICATE",
    "PLACEMENT_HASH",
    "PLACEMENT_MOD",
    "SpecificationChecker",
    "SpecReport",
    "PropertyViolation",
    "DatabaseTiming",
    "ProtocolTiming",
    "Request",
    "Result",
    "Decision",
    "ResultKey",
    "COMMIT",
    "ABORT",
    "ABORT_DECISION",
    "VOTE_YES",
    "VOTE_NO",
]
