"""Message vocabulary of the e-Transaction protocol.

These are exactly the message types of the paper's pseudo-code (Figures 2-6):
``Request``, ``Result``, ``Prepare``, ``Vote``, ``Decide``, ``AckDecide`` and
``Ready``, plus the ``Execute``/``ExecuteResult`` pair that carries the
transient data manipulation the paper abstracts behind ``compute()`` (in the
paper's prototype this is the SQL traffic on the database connection).
"""

from __future__ import annotations

from typing import Any

from repro.core.types import Decision, Request
from repro.net.message import Message

REQUEST = "Request"
RESULT = "Result"
PREPARE = "Prepare"
VOTE = "Vote"
DECIDE = "Decide"
ACK_DECIDE = "AckDecide"
READY = "Ready"
EXECUTE = "Execute"
EXECUTE_RESULT = "ExecuteResult"

# Online-reconfiguration traffic (no counterpart in the paper): the
# coordinator snapshots moving keys off their old owner, installs them at the
# new owner, then releases them from the old owner.  Every exchange is
# idempotent per epoch, so the coordinator can retransmit under loss.
MIGRATE_SNAPSHOT = "MigrateSnapshot"
MIGRATE_SNAPSHOT_REPLY = "MigrateSnapshotReply"
MIGRATE_INSTALL = "MigrateInstall"
MIGRATE_RELEASE = "MigrateRelease"
MIGRATE_ACK = "MigrateAck"


def request_message(request: Request, j: int) -> Message:
    """``[Request, request, j]`` from the client to an application server."""
    return Message(REQUEST, payload={"request": request, "j": j})


def result_message(j: int, decision: Decision) -> Message:
    """``[Result, j, decision]`` from an application server to the client."""
    return Message(RESULT, payload={"j": j, "decision": decision})


def prepare_message(key: Any, participants: tuple[str, ...] = ()) -> Message:
    """``[Prepare, j]`` from an application server to a database server.

    ``participants`` names the shards taking part in the commit of this
    result (empty = every database); it rides along so a database can trace
    and sanity-check which participant set it is voting within.
    """
    return Message(PREPARE, payload={"j": key, "participants": tuple(participants)})


def vote_message(key: Any, vote: str) -> Message:
    """``[Vote, j, vote]`` from a database server back to the application server."""
    return Message(VOTE, payload={"j": key, "vote": vote})


def decide_message(key: Any, outcome: str,
                   participants: tuple[str, ...] = ()) -> Message:
    """``[Decide, j, outcome]`` from an application server to a database server.

    Carries the same participant metadata as :func:`prepare_message`.
    """
    return Message(DECIDE, payload={"j": key, "outcome": outcome,
                                    "participants": tuple(participants)})


def ack_decide_message(key: Any) -> Message:
    """``[AckDecide, j]`` from a database server back to the application server."""
    return Message(ACK_DECIDE, payload={"j": key})


def ready_message() -> Message:
    """``[Ready]`` recovery notification from a database server to all app servers."""
    return Message(READY)


def execute_message(key: Any, request: Request) -> Message:
    """Transient data manipulation request (the SQL work inside ``compute()``)."""
    return Message(EXECUTE, payload={"j": key, "request": request})


def execute_result_message(key: Any, value: Any, ok: bool = True) -> Message:
    """Reply to :func:`execute_message` carrying the computed business value."""
    return Message(EXECUTE_RESULT, payload={"j": key, "value": value, "ok": ok})


def migrate_snapshot_message(epoch: int, keys: tuple[str, ...]) -> Message:
    """Coordinator -> old owner: send me the committed values of ``keys``."""
    return Message(MIGRATE_SNAPSHOT, payload={"j": epoch, "keys": tuple(keys)})


def migrate_snapshot_reply_message(epoch: int, sender_shard: str,
                                   data: dict[str, Any],
                                   busy: bool = False) -> Message:
    """Old owner -> coordinator: the committed values of the moving keys.

    ``busy`` means a moving key is still pinned by an in-flight or in-doubt
    transaction; the coordinator must let it drain and ask again.
    """
    return Message(MIGRATE_SNAPSHOT_REPLY,
                   payload={"j": epoch, "shard": sender_shard, "data": dict(data),
                            "busy": busy})


def migrate_install_message(epoch: int, data: dict[str, Any]) -> Message:
    """Coordinator -> new owner: durably install these committed values."""
    return Message(MIGRATE_INSTALL, payload={"j": epoch, "data": dict(data)})


def migrate_release_message(epoch: int, keys: tuple[str, ...]) -> Message:
    """Coordinator -> old owner: durably drop the migrated keys."""
    return Message(MIGRATE_RELEASE, payload={"j": epoch, "keys": tuple(keys)})


def migrate_ack_message(epoch: int, sender_shard: str, stage: str) -> Message:
    """Database -> coordinator: the install/release for ``epoch`` is durable."""
    return Message(MIGRATE_ACK, payload={"j": epoch, "shard": sender_shard,
                                         "stage": stage})
