"""Database-server protocol (the paper's Figure 3).

A database server is a *pure server*: it reacts to ``Prepare``, ``Decide`` and
``Execute`` messages from application servers, never initiates anything, and
announces its recovery with a ``Ready`` notification to every application
server (Figure 3, lines 1-2).  The actual transactional machinery lives in the
XA resource (:mod:`repro.storage.xa`); this process adds the message handling,
the per-phase timing, and crash/recovery behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core import messages as msg
from repro.core.timing import DatabaseTiming
from repro.core.types import ABORT, COMMIT, Request
from repro.net.message import is_type
from repro.sim.process import Process
from repro.sim.scheduler import Simulator
from repro.storage.kvstore import (
    ShardOwnershipError,
    TransactionError,
    TransactionalKVStore,
)
from repro.storage.locks import LockConflict
from repro.storage.stable import StableStorage
from repro.storage.xa import XAResource

BusinessLogicFactory = Callable[[Request], Callable[[Any], Any]]
"""Maps a request to the function run inside the transaction (the SQL work)."""


class DatabaseServer(Process):
    """One back-end database server (an XA engine behind a message interface).

    Parameters
    ----------
    sim, name:
        Simulator and process name.
    app_server_names:
        All application servers (recipients of the ``Ready`` notification).
    business_logic:
        Factory turning a :class:`~repro.core.types.Request` into the function
        executed inside the transaction (provided by the workload).
    timing:
        Per-phase costs; defaults reproduce the paper's baseline column.
    initial_data:
        Initial committed database contents.  On a partitioned deployment the
        builder passes only this shard's slice of the key space.
    owns_key:
        Optional ``key -> owned?`` predicate installed on the store; when
        present, a transaction touching a foreign key aborts with a
        :class:`~repro.storage.kvstore.ShardOwnershipError` instead of
        silently diverging from the owning shard.
    """

    def __init__(self, sim: Simulator, name: str, app_server_names: list[str],
                 business_logic: BusinessLogicFactory,
                 timing: Optional[DatabaseTiming] = None,
                 initial_data: Optional[dict[str, Any]] = None,
                 owns_key: Optional[Callable[[str], bool]] = None,
                 directory: Optional[Any] = None):
        super().__init__(sim, name)
        self.app_server_names = list(app_server_names)
        self.business_logic = business_logic
        self.timing = timing if timing is not None else DatabaseTiming()
        storage = StableStorage(f"{name}.disk", forced_write_latency=self.timing.forced_write)
        self.store = TransactionalKVStore(name, storage=storage, initial_data=initial_data,
                                          owns_key=owns_key)
        self.resource = XAResource(self.store)
        # Cache of already-executed business-logic calls, keyed by result key.
        # Makes Execute idempotent under retransmission (volatile: an unprepared
        # transaction does not survive a crash anyway).
        self._executed: dict[Any, tuple[Any, bool]] = {}
        # Online resharding: the live ShardDirectory, shared with the whole
        # deployment.  Only set when the scenario carries reshard faults --
        # the extra migration-serving thread must not exist otherwise, so
        # static deployments keep byte-identical thread/event structure.
        self.directory = directory

    # --------------------------------------------------------------- lifecycle

    def on_start(self, recovery: bool) -> None:
        if recovery:
            in_doubt = self.resource.recover()
            self.trace.record("db_recover", self.name, in_doubt=[str(k) for k in in_doubt])
            # Figure 3, line 2: tell every application server we are back.
            self.multicast(self.app_server_names, msg.ready_message())
        self.spawn(self._serve_execute(), name="db-execute")
        self.spawn(self._serve_prepare(), name="db-prepare")
        self.spawn(self._serve_decide(), name="db-decide")
        if self.directory is not None:
            self.spawn(self._serve_migrate(), name="db-migrate")

    def on_crash(self) -> None:
        self.resource.crash()
        self._executed.clear()

    # ------------------------------------------------------------------ threads

    def _serve_execute(self):
        """Run the business logic inside a transaction (the paper's transient
        database manipulation performed by ``compute()``)."""
        while True:
            message = yield self.receive(is_type(msg.EXECUTE))
            key = message["j"]
            request: Request = message["request"]
            if key in self._executed:
                value, ok = self._executed[key]
                self.send(message.sender, msg.execute_result_message(key, value, ok=ok))
                continue
            yield self.sleep(self.timing.start + self.timing.sql)
            ok = True
            try:
                value = self.resource.execute(key, self.business_logic(request))
            except LockConflict as conflict:
                ok = False
                value = {"error": "lock_conflict", "key": conflict.key}
            except ShardOwnershipError as misroute:
                # The business logic touched a key this shard does not own --
                # a routing bug (participant set narrower than the keys the
                # request manipulates).  The transaction was aborted, so this
                # shard will vote no and the whole transaction aborts.
                ok = False
                value = {"error": "shard_ownership", "key": misroute.key,
                         "shard": self.name}
            except TransactionError as error:
                # A re-execution of an already-terminated transaction (e.g. a
                # stale retransmission): report it, the vote will say no.
                ok = False
                value = {"error": "transaction_state", "detail": str(error)}
            self._executed[key] = (value, ok)
            self.trace.record("db_execute", self.name, j=key,
                              request_id=request.request_id, ok=ok)
            self.send(message.sender, msg.execute_result_message(key, value, ok=ok))

    def _serve_prepare(self):
        """Vote on results (Figure 3, lines 5-6)."""
        while True:
            message = yield self.receive(is_type(msg.PREPARE))
            key = message["j"]
            vote, io_cost = self.resource.vote(key)
            cost = self.timing.prepare_cpu + io_cost if io_cost > 0 else 0.0
            if cost > 0:
                yield self.sleep(cost)
            self.trace.record("db_vote", self.name, j=key, vote=vote)
            self.send(message.sender, msg.vote_message(key, vote))

    def _serve_decide(self):
        """Apply decisions and acknowledge them (Figure 3, lines 7-9)."""
        while True:
            message = yield self.receive(is_type(msg.DECIDE))
            key = message["j"]
            outcome = message["outcome"]
            final, io_cost = self.resource.decide(key, outcome)
            if final == COMMIT and io_cost > 0:
                yield self.sleep(self.timing.commit_cpu + io_cost + self.timing.end)
            elif final == ABORT and io_cost >= 0 and outcome == ABORT:
                yield self.sleep(self.timing.abort_cpu)
            self.trace.record("db_decide", self.name, j=key, outcome=final,
                              requested=outcome)
            self.send(message.sender, msg.ack_decide_message(key))

    def _serve_migrate(self):
        """Serve the reconfiguration coordinator's migration traffic.

        Three idempotent exchanges, all correlated by the *target* epoch:

        * ``MigrateSnapshot``: report which of this shard's committed keys
          move where under the pending placement (with their values).  While
          a moving key is pinned -- locked by an active or in-doubt
          transaction here, or retained by an in-flight transaction at the
          application tier -- the reply says *busy* and the coordinator asks
          again: old-epoch traffic drains before its data moves.  New
          transactions on moving keys are deferred at the application tier,
          so the drain terminates and repeated snapshots of one epoch are
          identical.
        * ``MigrateInstall``: durably adopt committed values moving here.
        * ``MigrateRelease``: durably drop keys that moved away.

        None of these emit ``db_execute``/``db_vote``/``db_decide`` events:
        migration is not a transaction, and the specification checker judges
        it only through the epoch stamps on regular commits.
        """
        applied: set[tuple[int, str]] = set()
        matcher = is_type(msg.MIGRATE_SNAPSHOT, msg.MIGRATE_INSTALL,
                          msg.MIGRATE_RELEASE)
        while True:
            message = yield self.receive(matcher)
            epoch = message["j"]
            if message.msg_type == msg.MIGRATE_SNAPSHOT:
                plan = self.directory.migration_plan(
                    self.name, sorted(self.store.committed_snapshot()))
                moving = [key for keys in plan.values() for key in keys]
                busy = (any(self.store.locks.holder(key) is not None
                            for key in moving)
                        or self.directory.retained(moving))
                data = {} if busy else {
                    dest: {key: self.store.get_committed(key) for key in keys}
                    for dest, keys in sorted(plan.items())}
                self.send(message.sender, msg.migrate_snapshot_reply_message(
                    epoch, self.name, data, busy=busy))
                continue
            if message.msg_type == msg.MIGRATE_INSTALL:
                if (epoch, "install") not in applied:
                    applied.add((epoch, "install"))
                    cost = self.store.migrate_install(epoch, message["data"])
                    if cost > 0:
                        yield self.sleep(cost)
                    self.trace.record("db_migrate", self.name, j=epoch,
                                      stage="install",
                                      keys=len(message["data"]))
                self.send(message.sender, msg.migrate_ack_message(
                    epoch, self.name, "install"))
                continue
            if (epoch, "release") not in applied:
                applied.add((epoch, "release"))
                keys = tuple(message["keys"])
                cost = self.store.migrate_release(epoch, keys)
                if cost > 0:
                    yield self.sleep(cost)
                self.trace.record("db_migrate", self.name, j=epoch,
                                  stage="release", keys=len(keys))
            self.send(message.sender, msg.migrate_ack_message(
                epoch, self.name, "release"))

    # ------------------------------------------------------------------- query

    def committed_value(self, key: str, default: Any = None) -> Any:
        """Committed database contents (used by tests and invariant checks)."""
        return self.store.get_committed(key, default)

    def in_doubt(self) -> list[Any]:
        """Prepared-but-undecided transactions currently holding locks."""
        return self.resource.in_doubt()
