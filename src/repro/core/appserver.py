"""Application-server protocol (the paper's Figures 4, 5 and 6).

Each application server is stateless with respect to requests: everything it
needs to terminate a result lives either in the back-end databases or in the
replicated wo-registers (``regA`` -- who executes result ``j``; ``regD`` --
the decision for result ``j``).  The server runs two protocol threads:

* the **computation thread** (Figure 5): waits for client requests and, for
  each new result, spawns a per-request handler that claims the result by
  writing ``(its identity, participant set)`` into ``regA[j]``, computes the
  result by driving the business logic on the *participant* databases, runs
  the voting phase, writes the decision into ``regD[j]`` and terminates the
  result.  Handlers for distinct results run concurrently -- the paper's
  single-request presentation is the special case of one in-flight result --
  so a partitioned database tier turns into real parallelism instead of a
  queue behind one coroutine;
* the **cleaning thread** (Figure 6): watches the failure detector and, for
  every result initiated by a suspected server, forces a decision by writing
  ``(nil, abort)`` into ``regD[j]`` -- obtaining either its own abort or the
  decision the suspected server already wrote -- and terminates the result on
  its behalf, against the participant set recorded in the ``regA`` claim.

Participant sets.  A request either carries the set of database servers
(shards) it touches (:attr:`repro.core.types.Request.participants`) or, when
that tuple is empty, implicitly addresses every database -- the historical
full fan-out.  Execute, Prepare and Decide are only ever exchanged with the
participants, so a single-shard transaction on a ``d``-shard deployment costs
the same as on a one-database deployment.

Termination (Figure 4's ``terminate()``) keeps re-sending ``Decide`` until
every *participant* database acknowledges, tolerating database crashes and
recoveries, and finally reports the decision to the client.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core import messages as msg
from repro.core.sharding import merge_participant_values, request_participants
from repro.core.timing import ProtocolTiming
from repro.core.types import (
    ABORT,
    ABORT_DECISION,
    COMMIT,
    Decision,
    Request,
    Result,
    ResultKey,
    VOTE_YES,
)
from repro.failure.detectors import FailureDetector
from repro.net.message import any_of, from_senders, is_type, is_type_with
from repro.registers.base import BOTTOM, WriteOnceRegisterArray
from repro.sim.process import Process
from repro.sim.scheduler import Simulator
from repro.sim.waits import TIMEOUT


class RegisterPair:
    """The two wo-register arrays one application server works with."""

    def __init__(self, reg_a: WriteOnceRegisterArray, reg_d: WriteOnceRegisterArray):
        self.reg_a = reg_a
        self.reg_d = reg_d


def claim_entry(server: str, participants: Sequence[str]) -> tuple[str, tuple[str, ...]]:
    """The value written into ``regA[j]``: claimant plus participant set.

    Recording the participants in the testable claim makes the register entry
    self-describing: any server that later cleans the result (Figure 6) knows
    exactly which databases to terminate with, without re-deriving routing
    from a request it may never have seen.
    """
    return (server, tuple(participants))


def claim_parts(entry: Any, all_databases: Sequence[str]) -> tuple[Optional[str], tuple[str, ...]]:
    """Split a ``regA`` entry into (claimant, participants).

    Tolerates legacy entries that are a bare server name (participants then
    default to every database).
    """
    if isinstance(entry, tuple) and len(entry) == 2:
        claimant, participants = entry
        return claimant, tuple(participants) if participants else tuple(all_databases)
    if isinstance(entry, str):
        return entry, tuple(all_databases)
    return None, tuple(all_databases)


class ApplicationServer(Process):
    """One middle-tier application server.

    Parameters
    ----------
    sim, name:
        Simulator and process name.
    app_server_names / db_server_names:
        Full membership of the middle and back-end tiers.
    registers:
        This server's view of the ``regA``/``regD`` wo-register arrays.
    failure_detector:
        The (eventually perfect) failure detector used by the cleaning thread.
    timing:
        Protocol-level intervals (retry, cleaning pace).
    consensus_host:
        Optional consensus endpoint backing the registers; when present it is
        (re)installed on start and reset on crash.
    directory:
        Optional live :class:`~repro.core.sharding.ShardDirectory` (online
        resharding).  When present, requests that carry their key set are
        routed against the *current epoch* at claim time -- a request built
        against a stale placement gets an ``epoch_retry`` instead of being
        misrouted -- and requests touching mid-migration keys are deferred
        until the reconfiguration window closes over them.
    """

    def __init__(self, sim: Simulator, name: str, app_server_names: list[str],
                 db_server_names: list[str], registers: RegisterPair,
                 failure_detector: FailureDetector,
                 timing: Optional[ProtocolTiming] = None,
                 consensus_host: Any = None,
                 directory: Optional[Any] = None):
        super().__init__(sim, name)
        self.app_server_names = list(app_server_names)
        self.db_server_names = list(db_server_names)
        self.registers = registers
        self.failure_detector = failure_detector
        self.timing = timing if timing is not None else ProtocolTiming()
        self.consensus_host = consensus_host
        self.directory = directory
        # Volatile caches (lost on crash, rebuilt from the registers if needed).
        self._known_commits: dict[ResultKey, Decision] = {}
        self._cleaned: set[ResultKey] = set()
        self._inflight: set[ResultKey] = set()
        self._terminated: set[ResultKey] = set()

    # --------------------------------------------------------------- lifecycle

    def on_start(self, recovery: bool) -> None:
        if self.consensus_host is not None:
            self.consensus_host.install()
        self.spawn(self._computation_thread(), name="as-compute")
        self.spawn(self._cleaning_thread(), name="as-clean")

    def on_crash(self) -> None:
        self._known_commits = {}
        self._cleaned = set()
        self._inflight = set()
        self._terminated = set()
        if self.consensus_host is not None:
            self.consensus_host.on_crash()

    # ---------------------------------------------------------------- delivery

    _STALE_WHEN_TERMINATED = frozenset((msg.EXECUTE_RESULT, msg.VOTE, msg.ACK_DECIDE))

    def deliver(self, message: Any) -> None:
        """Drop per-result replies that arrive after the result terminated.

        Retransmissions (execute/prepare/decide retries) keep producing
        duplicate replies that can land long after ``terminate()`` finished;
        no receive will ever consume them, and dropping a message is
        indistinguishable from network loss in the fair-lossy channel model.
        Without this, a long run's mailbox grows with its history.
        """
        if getattr(message, "msg_type", None) in self._STALE_WHEN_TERMINATED \
                and message.get("j") in self._terminated:
            return
        super().deliver(message)

    # ----------------------------------------------------------------- routing

    def participants_of(self, request: Request) -> list[str]:
        """The database servers taking part in this request's transaction."""
        return request_participants(request, self.db_server_names)

    # ------------------------------------------------------ computation thread

    def _computation_thread(self):
        """Figure 5: dispatch client requests to per-result handlers."""
        while True:
            message = yield self.receive(is_type(msg.REQUEST))
            client = message.sender
            j: int = message["j"]
            request: Request = message["request"]
            key: ResultKey = (client, j)
            self.trace.record("as_request", self.name, client=client, j=j,
                              request_id=request.request_id)
            if key in self._inflight:
                # A retransmission of a result we are already working on; the
                # in-flight handler will answer the client.
                continue
            known = self._known_commits.get(key)
            decided = self.registers.reg_d.read(key)
            if known is None and decided is not BOTTOM and decided.outcome == COMMIT:
                known = decided
            if known is not None:
                # Figure 5, lines 3-4: the result is already committed; resend it.
                self.send(client, msg.result_message(j, known))
                continue
            if decided is not BOTTOM:
                # The result was already aborted (a retransmitted request for a
                # terminated intermediate result): just remind the client.
                self.send(client, msg.result_message(j, decided))
                continue
            self._inflight.add(key)
            self.spawn(self._handle_request(key, request, client),
                       name=f"as-handle:{client}:{j}")

    def _handle_request(self, key: ResultKey, request: Request, client: str):
        """One result's life from claim to termination (Figure 5, lines 5-12)."""
        j = key[1]
        directory = self.directory
        retained = False
        epoch: Optional[int] = None
        try:
            if directory is not None and request.keys:
                # Online resharding: route against the live placement.  A key
                # that is mid-migration defers the whole request until the
                # window closes over it; then the participant set is derived
                # fresh under the current epoch, so a request built against a
                # stale placement is re-routed (epoch_retry) instead of
                # tripping ShardOwnershipError at the old owner.  The
                # retain/release bracket pins the keys for the transaction's
                # lifetime: the migration snapshot refuses to copy a pinned
                # key, which is how in-flight traffic drains on its epoch.
                deferred = False
                while directory.moving(request.keys):
                    if not deferred:
                        deferred = True
                        self.trace.record("epoch_defer", self.name, client=client,
                                          j=j, request_id=request.request_id,
                                          epoch=directory.epoch)
                    yield self.sleep(self.timing.execute_retry)
                directory.retain(request.keys)
                retained = True
                epoch = directory.epoch
                participants = list(directory.participants(request.keys))
                if tuple(participants) != tuple(request.participants):
                    self.trace.record("epoch_retry", self.name, client=client,
                                      j=j, request_id=request.request_id,
                                      epoch=epoch,
                                      participants=list(participants))
            else:
                participants = self.participants_of(request)
            phase_start = self.now
            winner = yield self.wait_for(
                self.registers.reg_a.write(key, claim_entry(self.name, participants)))
            self.trace.record("as_phase", self.name, phase="regA_write", j=j, client=client,
                              duration=self.now - phase_start)
            claimant, claimed_participants = claim_parts(winner, self.db_server_names)
            if claimant != self.name:
                # Another server owns this result (Figure 5, lines 6-7); if it
                # crashes the cleaning thread will take over.
                return
            participants = list(claimed_participants)
            self.trace.record("as_claim", self.name, client=client, j=j,
                              request_id=request.request_id,
                              participants=list(participants))
            result = yield from self._compute(key, request, participants, epoch)
            outcome = yield from self._prepare(key, participants)
            proposed = Decision(result=result, outcome=outcome)
            phase_start = self.now
            decision = yield self.wait_for(self.registers.reg_d.write(key, proposed))
            self.trace.record("as_phase", self.name, phase="regD_write", j=j, client=client,
                              duration=self.now - phase_start)
            yield from self._terminate(key, decision, client, participants)
        finally:
            # Runs on every exit, including the crash path (the generator is
            # closed when the process dies), so a crashed server never leaves
            # keys pinned against the migration drain.
            if retained:
                directory.release(request.keys)
            self._inflight.discard(key)

    def _compute(self, key: ResultKey, request: Request, participants: list[str],
                 epoch: Optional[int] = None):
        """The paper's ``compute()``: transient data manipulation on every
        participant database.

        Sends the business logic to each participant and collects their
        answers (re-sending while a database is down).  The merged answer
        forms the result value; a failed computation (e.g. lock conflict)
        still yields a result -- the databases will then refuse to commit it,
        which is how the paper models user-level aborts.
        """
        client, j = key
        phase_start = self.now
        values: dict[str, Any] = {}
        pending = set(participants)
        # Per-shard Ready tracking: only a recovery notification from one
        # of *this* transaction's participants restarts the collection; a
        # non-participant shard recovering is none of our business.  Built
        # once, outside the retry loop: the matcher only depends on the key.
        deadline_matcher = any_of(
            is_type_with(msg.EXECUTE_RESULT, j=key),
            from_senders(participants, is_type(msg.READY)),
        )
        while pending:
            for db_name in pending:
                self.send(db_name, msg.execute_message(key, request))
            remaining = set(pending)
            while remaining:
                reply = yield self.receive(deadline_matcher, timeout=self.timing.execute_retry)
                if reply is TIMEOUT:
                    break
                if reply.msg_type == msg.READY:
                    # A participant database recovered; start its execution over.
                    break
                if reply.sender in remaining:
                    values[reply.sender] = reply["value"]
                    remaining.discard(reply.sender)
            pending = set(participants) - set(values)
        merged = self._merge_values(values, participants)
        result = Result(value=merged, request_id=request.request_id, computed_by=self.name)
        if epoch is None:
            # Static deployments keep the historical event shape byte-for-byte.
            self.trace.record("as_compute", self.name, client=client, j=j,
                              request_id=request.request_id, result=repr(merged),
                              participants=list(participants))
        else:
            self.trace.record("as_compute", self.name, client=client, j=j,
                              request_id=request.request_id, result=repr(merged),
                              participants=list(participants), epoch=epoch)
        self.trace.record("as_phase", self.name, phase="compute", j=j, client=client,
                          duration=self.now - phase_start)
        return result

    def _merge_values(self, values: dict[str, Any], participants: list[str]) -> Any:
        """Combine the per-participant business values into one result value."""
        return merge_participant_values(values, participants)

    def _prepare(self, key: ResultKey, participants: list[str]):
        """Figure 4's ``prepare()``: collect votes from every participant."""
        client, j = key
        phase_start = self.now
        votes: dict[str, str] = {}
        pending = set(participants)
        matcher = any_of(is_type_with(msg.VOTE, j=key),
                         from_senders(participants, is_type(msg.READY)))
        while pending:
            for db_name in pending:
                self.send(db_name, msg.prepare_message(key, tuple(participants)))
            remaining = set(pending)
            while remaining:
                reply = yield self.receive(matcher, timeout=self.timing.prepare_retry)
                if reply is TIMEOUT:
                    break
                if reply.sender not in remaining:
                    continue
                if reply.msg_type == msg.READY:
                    # Recovery notification counts as an answer -- and forces abort
                    # (the recovered database cannot have voted yes any more).
                    votes[reply.sender] = "ready"
                else:
                    votes[reply.sender] = reply["vote"]
                remaining.discard(reply.sender)
            pending = set(participants) - set(votes)
        outcome = COMMIT if all(v == VOTE_YES for v in votes.values()) else ABORT
        self.trace.record("as_prepare", self.name, client=client, j=j, outcome=outcome,
                          votes=dict(votes))
        self.trace.record("as_phase", self.name, phase="prepare", j=j, client=client,
                          duration=self.now - phase_start)
        return outcome

    def _terminate(self, key: ResultKey, decision: Decision, client: str,
                   participants: list[str]):
        """Figure 4's ``terminate()``: drive the decision to every participant,
        then report the result to the client."""
        j = key[1]
        phase_start = self.now
        acked: set[str] = set()
        matcher = any_of(is_type_with(msg.ACK_DECIDE, j=key),
                         from_senders(participants, is_type(msg.READY)))
        while acked != set(participants):
            for db_name in set(participants) - acked:
                self.send(db_name, msg.decide_message(key, decision.outcome,
                                                      tuple(participants)))
            remaining = set(participants) - acked
            while remaining:
                reply = yield self.receive(matcher, timeout=self.timing.decide_retry)
                if reply is TIMEOUT:
                    break
                if reply.msg_type == msg.READY:
                    # The database lost the decision in a crash; re-send it.
                    break
                if reply.sender in remaining:
                    acked.add(reply.sender)
                    remaining.discard(reply.sender)
        if decision.outcome == COMMIT:
            self._known_commits[key] = decision
        self.trace.record("as_terminate", self.name, client=client, j=j,
                          outcome=decision.outcome)
        self.trace.record("as_phase", self.name, phase="terminate", j=j, client=client,
                          duration=self.now - phase_start)
        self.send(client, msg.result_message(j, decision))
        self.trace.record("as_result_sent", self.name, client=client, j=j,
                          outcome=decision.outcome)
        # The result is terminated: any retransmitted votes / execute results /
        # acknowledgements still buffered under its key are dead weight now
        # (client requests are keyed by the bare ``j``, so they are untouched),
        # and late arrivals for it are dropped at delivery (see deliver()).
        self._terminated.add(key)
        self.discard_buffered(key)

    # --------------------------------------------------------- cleaning thread

    def _cleaning_thread(self):
        """Figure 6: terminate results initiated by suspected servers."""
        while True:
            yield self.sleep(self.timing.clean_interval)
            for suspected in self.app_server_names:
                if suspected == self.name:
                    continue
                if not self.failure_detector.suspect(self.name, suspected):
                    continue
                for key in self.registers.reg_a.known_indices():
                    if key in self._cleaned:
                        continue
                    claimant, participants = claim_parts(
                        self.registers.reg_a.read(key), self.db_server_names)
                    if claimant != suspected:
                        continue
                    client, j = key
                    self.trace.record("as_clean", self.name, suspected=suspected,
                                      client=client, j=j,
                                      participants=list(participants))
                    decision = yield self.wait_for(
                        self.registers.reg_d.write(key, ABORT_DECISION)
                    )
                    yield from self._terminate(key, decision, client,
                                               list(participants))
                    self._cleaned.add(key)
