"""Application-server protocol (the paper's Figures 4, 5 and 6).

Each application server is stateless with respect to requests: everything it
needs to terminate a result lives either in the back-end databases or in the
replicated wo-registers (``regA`` -- who executes result ``j``; ``regD`` --
the decision for result ``j``).  The server runs two protocol threads:

* the **computation thread** (Figure 5): waits for client requests, claims a
  result by writing its own identity into ``regA[j]``, computes the result by
  driving the business logic on the databases, runs the voting phase, writes
  the decision into ``regD[j]`` and terminates the result;
* the **cleaning thread** (Figure 6): watches the failure detector and, for
  every result initiated by a suspected server, forces a decision by writing
  ``(nil, abort)`` into ``regD[j]`` -- obtaining either its own abort or the
  decision the suspected server already wrote -- and terminates the result on
  its behalf.

Termination (Figure 4's ``terminate()``) keeps re-sending ``Decide`` until
every database server acknowledges, tolerating database crashes and
recoveries, and finally reports the decision to the client.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core import messages as msg
from repro.core.timing import ProtocolTiming
from repro.core.types import (
    ABORT,
    ABORT_DECISION,
    COMMIT,
    Decision,
    Request,
    Result,
    ResultKey,
    VOTE_YES,
)
from repro.failure.detectors import FailureDetector
from repro.net.message import Message, any_of, is_type, is_type_with
from repro.registers.base import BOTTOM, WriteOnceRegisterArray
from repro.sim.process import Process
from repro.sim.scheduler import Simulator
from repro.sim.waits import TIMEOUT


class RegisterPair:
    """The two wo-register arrays one application server works with."""

    def __init__(self, reg_a: WriteOnceRegisterArray, reg_d: WriteOnceRegisterArray):
        self.reg_a = reg_a
        self.reg_d = reg_d


class ApplicationServer(Process):
    """One middle-tier application server.

    Parameters
    ----------
    sim, name:
        Simulator and process name.
    app_server_names / db_server_names:
        Full membership of the middle and back-end tiers.
    registers:
        This server's view of the ``regA``/``regD`` wo-register arrays.
    failure_detector:
        The (eventually perfect) failure detector used by the cleaning thread.
    timing:
        Protocol-level intervals (retry, cleaning pace).
    consensus_host:
        Optional consensus endpoint backing the registers; when present it is
        (re)installed on start and reset on crash.
    """

    def __init__(self, sim: Simulator, name: str, app_server_names: list[str],
                 db_server_names: list[str], registers: RegisterPair,
                 failure_detector: FailureDetector,
                 timing: Optional[ProtocolTiming] = None,
                 consensus_host: Any = None):
        super().__init__(sim, name)
        self.app_server_names = list(app_server_names)
        self.db_server_names = list(db_server_names)
        self.registers = registers
        self.failure_detector = failure_detector
        self.timing = timing if timing is not None else ProtocolTiming()
        self.consensus_host = consensus_host
        # Volatile caches (lost on crash, rebuilt from the registers if needed).
        self._known_commits: dict[ResultKey, Decision] = {}
        self._cleaned: set[ResultKey] = set()

    # --------------------------------------------------------------- lifecycle

    def on_start(self, recovery: bool) -> None:
        if self.consensus_host is not None:
            self.consensus_host.install()
        self.spawn(self._computation_thread(), name="as-compute")
        self.spawn(self._cleaning_thread(), name="as-clean")

    def on_crash(self) -> None:
        self._known_commits = {}
        self._cleaned = set()
        if self.consensus_host is not None:
            self.consensus_host.on_crash()

    # ------------------------------------------------------ computation thread

    def _computation_thread(self):
        """Figure 5: serve client requests."""
        while True:
            message = yield self.receive(is_type(msg.REQUEST))
            client = message.sender
            j: int = message["j"]
            request: Request = message["request"]
            key: ResultKey = (client, j)
            self.trace.record("as_request", self.name, client=client, j=j,
                              request_id=request.request_id)
            known = self._known_commits.get(key)
            decided = self.registers.reg_d.read(key)
            if known is None and decided is not BOTTOM and decided.outcome == COMMIT:
                known = decided
            if known is not None:
                # Figure 5, lines 3-4: the result is already committed; resend it.
                self.send(client, msg.result_message(j, known))
                continue
            if decided is not BOTTOM:
                # The result was already aborted (a retransmitted request for a
                # terminated intermediate result): just remind the client.
                self.send(client, msg.result_message(j, decided))
                continue
            phase_start = self.now
            winner = yield self.wait_for(self.registers.reg_a.write(key, self.name))
            self.trace.record("as_phase", self.name, phase="regA_write", j=j, client=client,
                              duration=self.now - phase_start)
            if winner != self.name:
                # Another server owns this result (Figure 5, lines 6-7); if it
                # crashes the cleaning thread will take over.
                continue
            self.trace.record("as_claim", self.name, client=client, j=j,
                              request_id=request.request_id)
            result = yield from self._compute(key, request)
            outcome = yield from self._prepare(key, result)
            proposed = Decision(result=result, outcome=outcome)
            phase_start = self.now
            decision = yield self.wait_for(self.registers.reg_d.write(key, proposed))
            self.trace.record("as_phase", self.name, phase="regD_write", j=j, client=client,
                              duration=self.now - phase_start)
            yield from self._terminate(key, decision, client)

    def _compute(self, key: ResultKey, request: Request):
        """The paper's ``compute()``: transient data manipulation on every database.

        Sends the business logic to each database server and collects their
        answers (re-sending while a database is down).  The merged answer
        forms the result value; a failed computation (e.g. lock conflict)
        still yields a result -- the databases will then refuse to commit it,
        which is how the paper models user-level aborts.
        """
        client, j = key
        phase_start = self.now
        values: dict[str, Any] = {}
        pending = set(self.db_server_names)
        while pending:
            for db_name in pending:
                self.send(db_name, msg.execute_message(key, request))
            deadline_matcher = any_of(
                is_type_with(msg.EXECUTE_RESULT, j=key),
                is_type(msg.READY),
            )
            remaining = set(pending)
            while remaining:
                reply = yield self.receive(deadline_matcher, timeout=self.timing.execute_retry)
                if reply is TIMEOUT:
                    break
                if reply.msg_type == msg.READY:
                    # A database recovered; start its execution over.
                    break
                if reply.sender in remaining:
                    values[reply.sender] = reply["value"]
                    remaining.discard(reply.sender)
            pending = set(self.db_server_names) - set(values)
        merged = self._merge_values(values)
        result = Result(value=merged, request_id=request.request_id, computed_by=self.name)
        self.trace.record("as_compute", self.name, client=client, j=j,
                          request_id=request.request_id, result=repr(merged))
        self.trace.record("as_phase", self.name, phase="compute", j=j, client=client,
                          duration=self.now - phase_start)
        return result

    def _merge_values(self, values: dict[str, Any]) -> Any:
        """Combine the per-database business values into one result value.

        With a single database (the common case) the value passes through; with
        several, identical answers collapse to one and divergent answers are
        kept per database so the caller can see the disagreement.
        """
        if len(self.db_server_names) == 1:
            return values[self.db_server_names[0]]
        distinct = list(values.values())
        if all(value == distinct[0] for value in distinct[1:]):
            return distinct[0]
        return values

    def _prepare(self, key: ResultKey, result: Result):
        """Figure 4's ``prepare()``: collect votes from every database server."""
        client, j = key
        phase_start = self.now
        votes: dict[str, str] = {}
        pending = set(self.db_server_names)
        while pending:
            for db_name in pending:
                self.send(db_name, msg.prepare_message(key))
            matcher = any_of(is_type_with(msg.VOTE, j=key), is_type(msg.READY))
            remaining = set(pending)
            while remaining:
                reply = yield self.receive(matcher, timeout=self.timing.prepare_retry)
                if reply is TIMEOUT:
                    break
                if reply.sender not in remaining:
                    continue
                if reply.msg_type == msg.READY:
                    # Recovery notification counts as an answer -- and forces abort
                    # (the recovered database cannot have voted yes any more).
                    votes[reply.sender] = "ready"
                else:
                    votes[reply.sender] = reply["vote"]
                remaining.discard(reply.sender)
            pending = set(self.db_server_names) - set(votes)
        outcome = COMMIT if all(v == VOTE_YES for v in votes.values()) else ABORT
        self.trace.record("as_prepare", self.name, client=client, j=j, outcome=outcome,
                          votes=dict(votes))
        self.trace.record("as_phase", self.name, phase="prepare", j=j, client=client,
                          duration=self.now - phase_start)
        return outcome

    def _terminate(self, key: ResultKey, decision: Decision, client: str):
        """Figure 4's ``terminate()``: drive the decision to every database, then
        report the result to the client."""
        j = key[1]
        phase_start = self.now
        acked: set[str] = set()
        while acked != set(self.db_server_names):
            for db_name in set(self.db_server_names) - acked:
                self.send(db_name, msg.decide_message(key, decision.outcome))
            matcher = any_of(is_type_with(msg.ACK_DECIDE, j=key), is_type(msg.READY))
            remaining = set(self.db_server_names) - acked
            while remaining:
                reply = yield self.receive(matcher, timeout=self.timing.decide_retry)
                if reply is TIMEOUT:
                    break
                if reply.msg_type == msg.READY:
                    # The database lost the decision in a crash; re-send it.
                    break
                if reply.sender in remaining:
                    acked.add(reply.sender)
                    remaining.discard(reply.sender)
        if decision.outcome == COMMIT:
            self._known_commits[key] = decision
        self.trace.record("as_terminate", self.name, client=client, j=j,
                          outcome=decision.outcome)
        self.trace.record("as_phase", self.name, phase="terminate", j=j, client=client,
                          duration=self.now - phase_start)
        self.send(client, msg.result_message(j, decision))
        self.trace.record("as_result_sent", self.name, client=client, j=j,
                          outcome=decision.outcome)

    # --------------------------------------------------------- cleaning thread

    def _cleaning_thread(self):
        """Figure 6: terminate results initiated by suspected servers."""
        while True:
            yield self.sleep(self.timing.clean_interval)
            for suspected in self.app_server_names:
                if suspected == self.name:
                    continue
                if not self.failure_detector.suspect(self.name, suspected):
                    continue
                for key in self.registers.reg_a.known_indices():
                    if key in self._cleaned:
                        continue
                    if self.registers.reg_a.read(key) != suspected:
                        continue
                    client, j = key
                    self.trace.record("as_clean", self.name, suspected=suspected,
                                      client=client, j=j)
                    decision = yield self.wait_for(
                        self.registers.reg_d.write(key, ABORT_DECISION)
                    )
                    yield from self._terminate(key, decision, client)
                    self._cleaned.add(key)
