"""Client protocol (the paper's Figure 2).

The client is diskless and keeps no protocol state beyond the result counter:
``issue(request)`` sends the request to the default primary application
server, falls back to broadcasting it to every application server after a
back-off period, and loops through intermediate result identifiers ``j`` until
one of them comes back *committed* -- at which point the result is delivered
(the future returned by :meth:`Client.issue` resolves).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core import messages as msg
from repro.core.timing import ProtocolTiming
from repro.core.types import COMMIT, Decision, Request, Result
from repro.net.message import is_type_with
from repro.sim.process import Process
from repro.sim.scheduler import Simulator
from repro.sim.waits import SimFuture, TIMEOUT


class IssuedRequest:
    """Handle returned by :meth:`Client.issue`.

    ``future`` resolves to the committed :class:`~repro.core.types.Result`;
    ``attempts`` counts the intermediate results that were tried and
    ``aborted_results`` lists the identifiers that ended in an abort.
    """

    def __init__(self, request: Request):
        self.request = request
        self.future: SimFuture = SimFuture()
        self.attempts = 0
        self.aborted_results: list[int] = []
        self.enqueued_at: Optional[float] = None
        self.issued_at: Optional[float] = None
        self.delivered_at: Optional[float] = None

    @property
    def delivered(self) -> bool:
        """Whether the committed result has been delivered."""
        return self.future.resolved

    @property
    def result(self) -> Optional[Result]:
        """The delivered result (``None`` until delivery)."""
        return self.future.value

    @property
    def latency(self) -> Optional[float]:
        """Service latency: from when the client started working on the
        request to delivery (excludes any wait in the client's queue)."""
        if self.issued_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.issued_at

    @property
    def sojourn(self) -> Optional[float]:
        """Response time: from :meth:`Client.issue` (arrival) to delivery,
        including the time the request queued behind earlier ones."""
        if self.enqueued_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.enqueued_at


class Client(Process):
    """A front-end client of the three-tier application.

    Parameters
    ----------
    sim, name:
        Simulator and process name.
    app_server_names:
        All application servers; the first entry (or ``default_primary``) is
        the one the request is initially sent to.
    timing:
        Protocol timing; only the client back-off and re-broadcast intervals
        are used here.
    default_primary:
        Name of the default primary application server.
    """

    def __init__(self, sim: Simulator, name: str, app_server_names: list[str],
                 timing: Optional[ProtocolTiming] = None,
                 default_primary: Optional[str] = None):
        super().__init__(sim, name)
        if not app_server_names:
            raise ValueError("a client needs at least one application server")
        self.app_server_names = list(app_server_names)
        self.timing = timing if timing is not None else ProtocolTiming()
        self.default_primary = default_primary or self.app_server_names[0]
        if self.default_primary not in self.app_server_names:
            raise ValueError(f"default primary {self.default_primary!r} not in server list")
        self._next_j = 1
        self._queue: deque[IssuedRequest] = deque()
        self._worker_running = False
        self.completed: list[IssuedRequest] = []

    # ------------------------------------------------------------------ issue

    def issue(self, request: Request) -> IssuedRequest:
        """Issue a request on behalf of the end user.

        Requests are processed one at a time (the paper's model); issuing
        while another request is in flight queues the new one behind it.
        """
        issued = IssuedRequest(request)
        issued.enqueued_at = self.now
        self._queue.append(issued)
        self.trace.record("client_issue", self.name, request_id=request.request_id,
                          operation=request.operation)
        if self.up and not self._worker_running:
            self._worker_running = True
            self.spawn(self._issue_loop(), name="client-issue")
        return issued

    def pending_requests(self) -> int:
        """Number of requests queued or in flight."""
        return len(self._queue)

    # ---------------------------------------------------------------- protocol

    def on_start(self, recovery: bool) -> None:
        # A recovered client does NOT resume in-flight requests: it is diskless,
        # so it cannot know whether the old request was executed.  Re-issuing it
        # under a fresh result identifier would risk executing it twice -- the
        # paper's guarantee for a crashed client is at-most-once, nothing more.
        self._worker_running = False

    def on_crash(self) -> None:
        # All protocol state is volatile: pending requests die with the client.
        self._queue.clear()
        self._worker_running = False

    def _issue_loop(self):
        while self._queue:
            issued = self._queue[0]
            yield from self._issue_one(issued)
            self._queue.popleft()
            self.completed.append(issued)
        self._worker_running = False

    def _issue_one(self, issued: IssuedRequest):
        """Figure 2: loop over intermediate results until one commits."""
        issued.issued_at = self.now
        request = issued.request
        while True:
            j = self._next_j
            self._next_j += 1
            issued.attempts += 1
            self.trace.record("client_send", self.name, j=j, request_id=request.request_id,
                              broadcast=False)
            self.send(self.default_primary, msg.request_message(request, j))
            matcher = is_type_with(msg.RESULT, j=j)
            reply = yield self.receive(matcher, timeout=self.timing.client_backoff)
            if reply is TIMEOUT:
                # Figure 2, lines 5-7: back-off expired, send to all servers.
                self.trace.record("client_send", self.name, j=j,
                                  request_id=request.request_id, broadcast=True)
                self.multicast(self.app_server_names, msg.request_message(request, j))
                reply = yield self.receive(matcher, timeout=self.timing.client_rebroadcast)
                while reply is TIMEOUT:
                    # Keep the request alive under message loss; the paper's
                    # pseudo-code waits forever here and relies on reliable
                    # channels -- re-broadcasting is the practical equivalent.
                    self.multicast(self.app_server_names, msg.request_message(request, j))
                    reply = yield self.receive(matcher, timeout=self.timing.client_rebroadcast)
            decision: Decision = reply["decision"]
            if decision.outcome == COMMIT and decision.result is not None:
                issued.delivered_at = self.now
                self.trace.record("client_deliver", self.name, j=j,
                                  request_id=request.request_id,
                                  result_request_id=decision.result.request_id,
                                  computed_by=decision.result.computed_by,
                                  value=repr(decision.result.value))
                issued.future.resolve(decision.result)
                # Duplicate Result messages for this (terminated) identifier
                # may still be buffered from the broadcast path; drop them.
                self.discard_buffered(j)
                return
            issued.aborted_results.append(j)
            self.trace.record("client_retry", self.name, j=j,
                              request_id=request.request_id)
