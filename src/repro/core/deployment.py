"""Deployment builder: assemble a complete three-tier system in one call.

:class:`EtxDeployment` wires together everything a run needs -- simulator,
network with the three-tier latency topology, failure detector, consensus
hosts and wo-registers, application servers, database servers and clients --
from a single :class:`DeploymentConfig`.  The experiment harnesses, examples
and most integration tests go through this builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from repro.consensus.synod import ConsensusHost
from repro.core.appserver import ApplicationServer, RegisterPair
from repro.core.client import Client, IssuedRequest
from repro.core.dataserver import DatabaseServer
from repro.core.reshard import RESHARD_COORDINATOR, ReshardCoordinator
from repro.core.sharding import (
    KNOWN_PLACEMENTS,
    PLACEMENT_REPLICATE,
    ShardDirectory,
    Sharding,
    validate_participants,
)
from repro.core.spec import SpecificationChecker, SpecMonitor, SpecReport
from repro.core.timing import DatabaseTiming, ProtocolTiming
from repro.core.types import Request
from repro.failure.detectors import (
    EventuallyPerfectFailureDetector,
    HeartbeatFailureDetector,
)
from repro.failure.injection import FaultSchedule
from repro.metrics.latency import LatencyComponentStream
from repro.metrics.stream import DatabaseOutcomeStream
from repro.net.latency import FixedLatency, PerLinkLatency, three_tier_latency
from repro.net.reliable import ReliableChannelLayer
from repro.registers.consensus_backed import ConsensusRegisterArray
from repro.registers.local import LocalRegisterArray, LocalRegisterStore
from repro.runtime.base import RuntimeSpec, create_kernel, create_network
from repro.sim.tracing import parse_retention

REGISTER_CONSENSUS = "consensus"
REGISTER_LOCAL = "local"

FD_ORACLE = "oracle"
FD_HEARTBEAT = "heartbeat"


def default_business_logic(request: Request) -> Callable[[Any], Any]:
    """Fallback business logic: store the request parameters under one key.

    Real experiments use the workloads in :mod:`repro.workload`; this default
    keeps the deployment usable out of the box for protocol-level tests.
    """

    def logic(view: Any) -> Any:
        previous = view.read(request.operation, 0)
        view.write(request.operation, {"count": (previous["count"] + 1)
                                       if isinstance(previous, dict) else 1,
                                       "params": dict(request.params)})
        return {"operation": request.operation, "applied": True}

    return logic


@dataclass
class DeploymentConfig:
    """Knobs of a three-tier deployment."""

    num_app_servers: int = 3
    num_db_servers: int = 1
    num_clients: int = 1
    register_mode: str = REGISTER_CONSENSUS
    seed: int = 0
    loss_probability: float = 0.0
    use_reliable_channels: bool = False
    detection_delay: float = 5.0
    failure_detector: str = FD_ORACLE
    heartbeat_interval: float = 5.0
    heartbeat_timeout: float = 20.0
    client_app_latency: float = 2.5
    app_app_latency: float = 2.25
    app_db_latency: float = 0.5
    db_timing: DatabaseTiming = field(default_factory=DatabaseTiming)
    protocol_timing: ProtocolTiming = field(default_factory=ProtocolTiming)
    initial_data: dict[str, Any] = field(default_factory=dict)
    business_logic: Callable[[Request], Callable[[Any], Any]] = default_business_logic
    placement: str = PLACEMENT_REPLICATE
    trace_retention: str = "full"
    # Which kernel/transport pair executes the deployment: the discrete-event
    # simulator (default) or an asyncio event loop with real TCP sockets.
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)
    # Online reconfiguration: when enabled, the deployment gets a live
    # ShardDirectory, a reconfiguration coordinator, and (optionally) standby
    # database servers that start empty and receive keys when the tier grows.
    # Off by default so static deployments keep byte-identical process/thread
    # structure (and therefore byte-identical traces).
    enable_reshard: bool = False
    num_standby_db_servers: int = 0
    # Admission control: bound on each application server's mailbox (0 =
    # unbounded, the historical behaviour).  A server at its bound sheds the
    # incoming message with a traced ``overload`` event.
    mailbox_limit: int = 0

    def __post_init__(self) -> None:
        if self.num_app_servers < 1 or self.num_db_servers < 1 or self.num_clients < 1:
            raise ValueError("a deployment needs at least one process per tier")
        if self.register_mode not in (REGISTER_CONSENSUS, REGISTER_LOCAL):
            raise ValueError(f"unknown register mode {self.register_mode!r}")
        if self.failure_detector not in (FD_ORACLE, FD_HEARTBEAT):
            raise ValueError(f"unknown failure detector mode {self.failure_detector!r}")
        if self.placement not in KNOWN_PLACEMENTS:
            raise ValueError(f"unknown placement {self.placement!r}; known: "
                             f"{', '.join(KNOWN_PLACEMENTS)}")
        if self.num_standby_db_servers < 0:
            raise ValueError("num_standby_db_servers must be >= 0")
        if self.mailbox_limit < 0:
            raise ValueError("mailbox_limit must be >= 0 (0 = unbounded)")
        if self.num_standby_db_servers and not self.enable_reshard:
            raise ValueError("standby database servers need enable_reshard")
        if self.enable_reshard and self.placement == PLACEMENT_REPLICATE:
            raise ValueError("online resharding needs a partitioned placement "
                             "(hash or mod)")
        if self.enable_reshard and self.runtime.kind != "sim":
            raise ValueError("online resharding is only supported on the "
                             "simulated runtime")
        parse_retention(self.trace_retention)  # fail fast on bad policies

    @property
    def sharding(self) -> Sharding:
        """Key-placement map of the database tier under this config (epoch 0)."""
        return Sharding(tuple(self.db_server_names), self.placement)

    @property
    def client_names(self) -> list[str]:
        return [f"c{i + 1}" for i in range(self.num_clients)]

    @property
    def app_server_names(self) -> list[str]:
        return [f"a{i + 1}" for i in range(self.num_app_servers)]

    @property
    def db_server_names(self) -> list[str]:
        return [f"d{i + 1}" for i in range(self.num_db_servers)]

    @property
    def all_db_server_names(self) -> list[str]:
        """Running shards plus reshard standbys, in growth order."""
        return [f"d{i + 1}" for i in
                range(self.num_db_servers + self.num_standby_db_servers)]


class EtxDeployment:
    """A fully wired three-tier system running the e-Transaction protocol."""

    def __init__(self, config: Optional[DeploymentConfig] = None, **overrides: Any):
        if config is None:
            config = DeploymentConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.config = config
        self.sharding = config.sharding
        # Online reconfiguration state: the shared directory and coordinator
        # exist only when the scenario asked for resharding, so static runs
        # keep byte-identical process registration and thread structure.
        self.directory: Optional[ShardDirectory] = (
            ShardDirectory(self.sharding) if config.enable_reshard else None)
        self._spec_db_names = (config.all_db_server_names if config.enable_reshard
                               else config.db_server_names)
        self.sim = create_kernel(config.runtime, seed=config.seed)
        self.sim.trace.set_retention(config.trace_retention)
        # Streaming observers subscribe before any process runs, so they see
        # the complete event stream regardless of the retention policy.
        self.spec_monitor = SpecMonitor.attach(
            self.sim.trace, self._spec_db_names, config.client_names)
        self.db_outcomes = DatabaseOutcomeStream(
            self.sim.trace, self._spec_db_names)
        self.latency_components = LatencyComponentStream(self.sim.trace)
        process_names = (config.app_server_names + self._spec_db_names
                         + config.client_names)
        if config.enable_reshard:
            process_names = process_names + [RESHARD_COORDINATOR]
        self.network = create_network(
            config.runtime, self.sim, latency=self._build_latency(),
            loss_probability=config.loss_probability,
            process_names=process_names)
        self.clients: dict[str, Client] = {}
        self.app_servers: dict[str, ApplicationServer] = {}
        self.db_servers: dict[str, DatabaseServer] = {}
        self.reshard_coordinator: Optional[ReshardCoordinator] = None
        self._local_stores: dict[str, LocalRegisterStore] = {}
        self._build_processes()
        # The oracle (eventually perfect) detector always exists: it is what the
        # fault-injection schedules use to inject false suspicions.
        self.failure_detector = EventuallyPerfectFailureDetector(
            self.network, detection_delay=config.detection_delay)
        self.heartbeat_detector: Optional[HeartbeatFailureDetector] = None
        if config.failure_detector == FD_HEARTBEAT:
            # A genuinely message-based detector: heartbeats between the
            # application servers, adaptive time-outs on missed ones.
            self.heartbeat_detector = HeartbeatFailureDetector(
                self.network, config.app_server_names,
                heartbeat_interval=config.heartbeat_interval,
                initial_timeout=config.heartbeat_timeout,
                install_on=[name for name in config.app_server_names
                            if self.network.hosts(name)])
        self._attach_failure_detector()
        if config.use_reliable_channels:
            self.reliable_channels: Optional[ReliableChannelLayer] = ReliableChannelLayer(
                self.network)
        else:
            self.reliable_channels = None
        self._start_all()

    # ------------------------------------------------------------------- build

    def _build_latency(self) -> PerLinkLatency:
        config = self.config
        latency = three_tier_latency(config.client_names, config.app_server_names,
                                     self._spec_db_names,
                                     client_app_latency=config.client_app_latency,
                                     app_app_latency=config.app_app_latency,
                                     app_db_latency=config.app_db_latency)
        if config.enable_reshard:
            # The coordinator lives in the cluster next to the app tier, so
            # its migration traffic crosses the app<->db hop.
            for db_name in self._spec_db_names:
                latency.set_link(RESHARD_COORDINATOR, db_name,
                                 FixedLatency(config.app_db_latency))
                latency.set_link(db_name, RESHARD_COORDINATOR,
                                 FixedLatency(config.app_db_latency))
        return latency

    def _build_processes(self) -> None:
        config = self.config
        app_names = config.app_server_names
        db_names = self._spec_db_names
        active_db_names = set(config.db_server_names)
        default_primary = app_names[0]
        if config.register_mode == REGISTER_LOCAL:
            self._local_stores = {
                "regA": LocalRegisterStore(self.sim, "regA",
                                           operation_latency=config.protocol_timing.fast_write_latency),
                "regD": LocalRegisterStore(self.sim, "regD",
                                           operation_latency=config.protocol_timing.fast_write_latency),
            }
        for name in db_names:
            # Standby shards start empty; they receive keys through migration.
            initial = (self.sharding.shard_data(name, config.initial_data)
                       if name in active_db_names else {})
            owns_key = (self.directory.owner_predicate(name)
                        if self.directory is not None
                        else self.sharding.owner_predicate(name))
            server = DatabaseServer(self.sim, name, app_names,
                                    business_logic=config.business_logic,
                                    timing=config.db_timing,
                                    initial_data=initial,
                                    owns_key=owns_key,
                                    directory=self.directory)
            self.network.register(server)
            self.db_servers[name] = server
        for name in app_names:
            consensus_host = None
            if config.register_mode == REGISTER_CONSENSUS:
                process = ApplicationServer(
                    self.sim, name, app_names, db_names,
                    registers=RegisterPair(None, None),  # type: ignore[arg-type]
                    failure_detector=None,  # type: ignore[arg-type]
                    timing=config.protocol_timing,
                    directory=self.directory)
                self.network.register(process)
                consensus_host = ConsensusHost(process, app_names,
                                               fast_path_owner=default_primary)
                process.consensus_host = consensus_host
                process.registers = RegisterPair(
                    ConsensusRegisterArray(consensus_host, "regA"),
                    ConsensusRegisterArray(consensus_host, "regD"),
                )
            else:
                process = ApplicationServer(
                    self.sim, name, app_names, db_names,
                    registers=RegisterPair(
                        LocalRegisterArray(self._local_stores["regA"], owner=name),
                        LocalRegisterArray(self._local_stores["regD"], owner=name),
                    ),
                    failure_detector=None,  # type: ignore[arg-type]
                    timing=config.protocol_timing,
                    directory=self.directory)
                self.network.register(process)
            process.mailbox_limit = config.mailbox_limit
            self.app_servers[name] = process
        for name in config.client_names:
            client = Client(self.sim, name, app_names, timing=config.protocol_timing,
                            default_primary=default_primary)
            self.network.register(client)
            self.clients[name] = client
        if self.directory is not None:
            self.reshard_coordinator = ReshardCoordinator(
                self.sim, self.directory, db_names,
                retry_interval=config.protocol_timing.execute_retry)
            self.network.register(self.reshard_coordinator)

    def _attach_failure_detector(self) -> None:
        detector = self.heartbeat_detector if self.heartbeat_detector is not None \
            else self.failure_detector
        for server in self.app_servers.values():
            server.failure_detector = detector

    def _start_all(self) -> None:
        # In a distributed asyncio run (``serve --only``) every process object
        # exists (the protocols need the full membership lists), but only the
        # locally hosted ones spawn threads -- the rest are TCP peers.
        for group in (self.db_servers, self.app_servers, self.clients):
            for process in group.values():
                if self.network.hosts(process.name):
                    process.start()
        if self.reshard_coordinator is not None:
            self.reshard_coordinator.start()
            # Anchor the epoch ledger: the spec checkers learn each epoch's
            # shard universe from ``reshard`` events, including the initial one.
            self.trace.record("reshard", self.reshard_coordinator.name,
                              stage="init", epoch=0,
                              shards=list(self.sharding.shards))

    # --------------------------------------------------------------- shortcuts

    @property
    def client(self) -> Client:
        """The first (often only) client."""
        return self.clients[self.config.client_names[0]]

    @property
    def default_primary(self) -> ApplicationServer:
        """The default primary application server (``a1``)."""
        return self.app_servers[self.config.app_server_names[0]]

    @property
    def trace(self):
        """The shared trace recorder of this run."""
        return self.sim.trace

    def apply_faults(self, schedule: FaultSchedule) -> None:
        """Schedule a fault-injection plan against this deployment.

        In a distributed run each OS process injects only the faults it can
        act on locally (crashes/recoveries of its own processes, suspicions
        of its own observers); partitions apply everywhere, since each host
        drops its own outbound cross-group traffic.
        """
        if self.config.runtime.distributed:
            schedule = schedule.restricted_to(set(self.config.runtime.only))
        reshard = (self.reshard_coordinator.request
                   if self.reshard_coordinator is not None else None)
        schedule.apply(self.sim, self.network, self.failure_detector,
                       reshard=reshard)

    def saturation_stats(self) -> dict[str, int]:
        """Admission-control counters of the application tier.

        ``shed_messages`` counts messages refused at a full mailbox across all
        application servers; ``mailbox_peak`` is the highest backlog any one
        of them reached.  Both are zero when no bound is configured.
        """
        return {
            "shed_messages": sum(s.shed_messages for s in self.app_servers.values()),
            "mailbox_peak": max((s.mailbox_peak for s in self.app_servers.values()),
                                default=0),
        }

    def close(self) -> None:
        """Release runtime resources (TCP sockets, event loop); idempotent."""
        self.network.close()
        self.sim.close()

    # --------------------------------------------------------------- execution

    def issue(self, request: Request, client: Optional[str] = None) -> IssuedRequest:
        """Issue a request from the named (or first) client."""
        validate_participants(request, self._spec_db_names)
        target = self.clients[client] if client is not None else self.client
        return target.issue(request)

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation (until the event queue drains or ``until``)."""
        return self.sim.run(until=until)

    def run_until_delivered(self, issued: IssuedRequest, horizon: float = 1_000_000.0) -> bool:
        """Run until ``issued`` delivers its committed result (or the horizon)."""
        return self.sim.run_until(lambda: issued.delivered, until=horizon)

    def run_request(self, request: Request, client: Optional[str] = None,
                    horizon: float = 1_000_000.0) -> IssuedRequest:
        """Issue ``request`` and run until its result is delivered."""
        issued = self.issue(request, client)
        self.run_until_delivered(issued, horizon=horizon)
        return issued

    # -------------------------------------------------------------------- spec

    def spec_checker(self) -> SpecificationChecker:
        """A post-hoc specification checker bound to this run's stored trace.

        Needs ``full`` retention; prefer :attr:`spec_monitor` (the online
        checker), which works under any retention policy.
        """
        return SpecificationChecker(self.trace, self._spec_db_names,
                                    self.config.client_names)

    def check_spec(self, check_termination: bool = True) -> SpecReport:
        """Check the e-Transaction properties of the run so far.

        Answered by the online :class:`~repro.core.spec.SpecMonitor`, which
        has been folding the event stream in since the deployment was built
        -- byte-identical to replaying the full trace through
        :func:`~repro.core.spec.check_run`, but independent of trace
        retention and O(transactions) instead of O(events squared).

        A distributed run observes only the trace slice of its locally
        hosted processes; the safety properties quantify over events (votes,
        commits, computations) that happened in peer OS processes, so
        checking them here would report phantom violations.  Such a run
        returns an explicitly empty verdict: nothing checked, nothing
        claimed.  Spec-check distributed runs by hosting every process in
        one OS process (the default) or by merging the peers' traces.
        """
        if self.config.runtime.distributed:
            return SpecReport(checked_properties=[])
        return self.spec_monitor.report(check_termination=check_termination)
