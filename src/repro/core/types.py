"""Domain types of the e-Transaction protocol.

The paper's model (Section 2) uses a ``Request`` domain (what the client
issues), a ``Result`` domain (what the business logic computes and the client
eventually delivers), ``Vote = {yes, no}`` and ``Outcome = {commit, abort}``,
plus the pair ``Decision = (result, outcome)`` stored in the ``regD``
wo-registers.  Result identifiers ``j`` number the (possibly aborted)
intermediate results of one client; we scope them by client name so several
clients can share a deployment (the paper's single-client presentation is the
special case of one client).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

COMMIT = "commit"
ABORT = "abort"

VOTE_YES = "yes"
VOTE_NO = "no"

_request_counter = itertools.count(1)


def reset_request_counter(start: int = 1) -> None:
    """Restart the auto-assigned ``request_id`` sequence at ``start``.

    Request identifiers only need to be unique within one deployment's trace;
    the sweep executor resets the counter before every scenario so a run's
    identifiers do not depend on how many requests earlier runs in the same
    process happened to create -- that is what makes a serial sweep and a
    process-pool sweep of the same grid produce identical results.
    """
    global _request_counter
    _request_counter = itertools.count(start)


@dataclass(frozen=True)
class Request:
    """A client request (e.g. one travel booking or one account payment).

    ``operation`` and ``params`` are interpreted by the workload's business
    logic; the protocol never looks inside them.  ``participants`` is the set
    of database servers (shards) the request touches: the empty tuple means
    "every database" (the protocol's historical full fan-out), a non-empty
    tuple restricts execution, voting and decision to exactly those shards --
    the application servers route the whole commit protocol through it.

    ``keys`` optionally names the storage keys the request touches.  Under a
    static placement it is redundant with ``participants``; under online
    resharding it is what lets an application server *re-derive* the
    participant set against the placement epoch that is current at claim
    time, instead of trusting a routing decision taken an epoch ago.
    """

    operation: str
    params: dict[str, Any] = field(default_factory=dict)
    request_id: str = field(default_factory=lambda: f"req-{next(_request_counter)}")
    participants: tuple[str, ...] = ()
    keys: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "participants", tuple(self.participants))
        object.__setattr__(self, "keys", tuple(self.keys))

    def describe(self) -> str:
        """Short human-readable form used in traces and reports."""
        return f"{self.operation}({self.request_id})"


@dataclass(frozen=True)
class Result:
    """A result computed by an application server for one request.

    ``value`` is the business payload (reservation number, new balance, ...);
    user-level aborts are regular values here, as in the paper's model.
    """

    value: Any
    request_id: str
    computed_by: str

    def __repr__(self) -> str:
        return f"Result({self.value!r}, request={self.request_id}, by={self.computed_by})"


@dataclass(frozen=True)
class Decision:
    """The pair (result, outcome) stored in ``regD`` and returned to the client."""

    result: Optional[Result]
    outcome: str

    def __post_init__(self) -> None:
        if self.outcome not in (COMMIT, ABORT):
            raise ValueError(f"invalid outcome {self.outcome!r}")

    @property
    def committed(self) -> bool:
        """Whether this decision commits its result."""
        return self.outcome == COMMIT


ABORT_DECISION = Decision(result=None, outcome=ABORT)
"""The decision written by the cleaning thread (the paper's ``(nil, abort)``)."""


ResultKey = tuple[str, int]
"""Identifier of one intermediate result: ``(client name, j)``."""
