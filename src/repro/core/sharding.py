"""Key placement: which database server (shard) owns which key.

The paper's deployment already supports several database servers, but treats
them as replicas of one logical database: every transaction is executed,
voted on and decided at *all* of them, so adding databases adds coordination
cost instead of capacity.  This module introduces the alternative reading --
a **partitioned** data tier -- as plain data:

* a :class:`Sharding` maps every storage key to its owning shard (database
  server) under a *placement policy*;
* the transaction path (application servers, baselines, spec checker) routes
  each request to its **participant set**: the owners of the keys the request
  touches, carried on :attr:`repro.core.types.Request.participants`;
* the storage layer (:mod:`repro.storage.kvstore`) asserts that a shard only
  ever manipulates keys it owns.

Placement policies
------------------

``replicate``
    The historical behaviour: every database owns every key, every request's
    participant set is the full database tier.  This is the default and keeps
    multi-database deployments byte-compatible with earlier versions.
``hash``
    A key belongs to ``shards[crc32(shard_key) % len(shards)]``.
``mod``
    Like ``hash`` but keyed on the trailing integer of the shard key
    (``account:{17}`` -> shard ``17 % d``), giving a predictable layout for
    index-structured key spaces; keys without a trailing integer fall back to
    the CRC-32 rule.

Shard keys use Redis-cluster-style *hash tags*: when a key contains a
``{...}`` substring, only that substring is hashed, so a workload can colocate
related keys (``flight:{PAR}:seats`` and ``hotel:{PAR}:rooms`` always land on
the same shard).  Keys without a tag hash as a whole.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

PLACEMENT_REPLICATE = "replicate"
PLACEMENT_HASH = "hash"
PLACEMENT_MOD = "mod"

KNOWN_PLACEMENTS = (PLACEMENT_REPLICATE, PLACEMENT_HASH, PLACEMENT_MOD)

_HASH_TAG = re.compile(r"\{([^{}]+)\}")
_TRAILING_INT = re.compile(r"(\d+)$")


def shard_key(key: str) -> str:
    """The part of ``key`` that placement hashes (its hash tag, if any)."""
    match = _HASH_TAG.search(key)
    return match.group(1) if match else key


@dataclass(frozen=True)
class Sharding:
    """Key -> shard ownership for one deployment's database tier.

    ``shards`` is the ordered tuple of database-server names; ``placement``
    selects the policy (see the module docstring).  The object is immutable
    and cheap, so every layer that needs routing decisions can hold its own
    reference.
    """

    shards: tuple[str, ...]
    placement: str = PLACEMENT_REPLICATE

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a sharding needs at least one shard")
        if len(set(self.shards)) != len(self.shards):
            raise ValueError(f"duplicate shard names in {self.shards!r}")
        if self.placement not in KNOWN_PLACEMENTS:
            raise ValueError(f"unknown placement {self.placement!r}; known: "
                             f"{', '.join(KNOWN_PLACEMENTS)}")
        object.__setattr__(self, "shards", tuple(self.shards))

    # ------------------------------------------------------------- ownership

    @property
    def partitioned(self) -> bool:
        """Whether keys have a single owner (as opposed to full replication)."""
        return self.placement != PLACEMENT_REPLICATE

    def owner(self, key: str) -> Optional[str]:
        """The single owning shard of ``key``, or ``None`` under replication."""
        if not self.partitioned:
            return None
        return self.shards[self._index_of(key)]

    def _index_of(self, key: str) -> int:
        tag = shard_key(key)
        if self.placement == PLACEMENT_MOD:
            match = _TRAILING_INT.search(tag)
            if match is not None:
                return int(match.group(1)) % len(self.shards)
        return zlib.crc32(tag.encode("utf-8")) % len(self.shards)

    def owns(self, shard: str, key: str) -> bool:
        """Whether ``shard`` holds (a copy of) ``key``."""
        if not self.partitioned:
            return shard in self.shards
        return self.owner(key) == shard

    def participants(self, keys: Iterable[str]) -> tuple[str, ...]:
        """The participant set of a transaction touching ``keys``.

        Returns the owners of the keys, in shard order -- or the empty tuple
        under replication, which on :class:`~repro.core.types.Request` means
        "every database" (the protocol's historical fan-out).
        """
        if not self.partitioned:
            return ()
        owners = {self.owner(key) for key in keys}
        return tuple(shard for shard in self.shards if shard in owners)

    # ------------------------------------------------------------------ data

    def shard_data(self, shard: str, data: dict[str, Any]) -> dict[str, Any]:
        """The slice of ``data`` that ``shard`` should hold initially."""
        if not self.partitioned:
            return dict(data)
        return {key: value for key, value in data.items() if self.owner(key) == shard}

    def owner_predicate(self, shard: str) -> Optional[Callable[[str], bool]]:
        """A ``key -> owned?`` predicate for ``shard`` (``None`` = owns all).

        Installed on the shard's :class:`~repro.storage.kvstore.TransactionalKVStore`
        so misrouted reads/writes fail loudly instead of silently diverging.
        """
        if not self.partitioned:
            return None
        return lambda key: self.owner(key) == shard


# -------------------------------------------------------- request routing

# One implementation of the request->participants routing rules, shared by
# the e-Transaction application server and the three comparison middle tiers
# so partitioned-tier comparisons stay apples-to-apples by construction.


def request_participants(request: Any, db_server_names: Sequence[str]) -> list[str]:
    """The database servers taking part in ``request``'s transaction.

    An empty :attr:`~repro.core.types.Request.participants` tuple means every
    database; a non-empty one is filtered through ``db_server_names`` order so
    all servers iterate participants identically.
    """
    if request.participants:
        return [name for name in db_server_names if name in request.participants]
    return list(db_server_names)


def merge_participant_values(values: dict[str, Any],
                             participants: Sequence[str]) -> Any:
    """One business value out of the per-participant answers.

    With a single participant (the common case on a partitioned tier) the
    value passes through; with several, identical answers collapse to one and
    divergent answers are kept per database so the caller can see each
    shard's part.
    """
    if len(participants) == 1:
        return values[participants[0]]
    distinct = list(values.values())
    if all(value == distinct[0] for value in distinct[1:]):
        return distinct[0]
    return values


def validate_participants(request: Any, db_server_names: Sequence[str]) -> None:
    """Reject a request naming participants outside the deployment."""
    unknown = set(request.participants) - set(db_server_names)
    if unknown:
        raise ValueError(f"request {request.request_id} names unknown "
                         f"participant(s) {sorted(unknown)}; this deployment "
                         f"has databases {list(db_server_names)}")
