"""Key placement: which database server (shard) owns which key.

The paper's deployment already supports several database servers, but treats
them as replicas of one logical database: every transaction is executed,
voted on and decided at *all* of them, so adding databases adds coordination
cost instead of capacity.  This module introduces the alternative reading --
a **partitioned** data tier -- as plain data:

* a :class:`Sharding` maps every storage key to its owning shard (database
  server) under a *placement policy*;
* the transaction path (application servers, baselines, spec checker) routes
  each request to its **participant set**: the owners of the keys the request
  touches, carried on :attr:`repro.core.types.Request.participants`;
* the storage layer (:mod:`repro.storage.kvstore`) asserts that a shard only
  ever manipulates keys it owns.

Placement policies
------------------

``replicate``
    The historical behaviour: every database owns every key, every request's
    participant set is the full database tier.  This is the default and keeps
    multi-database deployments byte-compatible with earlier versions.
``hash``
    A key belongs to ``shards[crc32(shard_key) % len(shards)]``.
``mod``
    Like ``hash`` but keyed on the trailing integer of the shard key
    (``account:{17}`` -> shard ``17 % d``), giving a predictable layout for
    index-structured key spaces; keys without a trailing integer fall back to
    the CRC-32 rule.

Shard keys use Redis-cluster-style *hash tags*: when a key contains a
``{...}`` substring, only that substring is hashed, so a workload can colocate
related keys (``flight:{PAR}:seats`` and ``hotel:{PAR}:rooms`` always land on
the same shard).  Keys without a tag hash as a whole.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

PLACEMENT_REPLICATE = "replicate"
PLACEMENT_HASH = "hash"
PLACEMENT_MOD = "mod"

KNOWN_PLACEMENTS = (PLACEMENT_REPLICATE, PLACEMENT_HASH, PLACEMENT_MOD)

_HASH_TAG = re.compile(r"\{([^{}]+)\}")
_TRAILING_INT = re.compile(r"(\d+)$")


def shard_key(key: str) -> str:
    """The part of ``key`` that placement hashes (its hash tag, if any)."""
    match = _HASH_TAG.search(key)
    return match.group(1) if match else key


@dataclass(frozen=True)
class Sharding:
    """Key -> shard ownership for one deployment's database tier.

    ``shards`` is the ordered tuple of database-server names; ``placement``
    selects the policy (see the module docstring).  The object is immutable
    and cheap, so every layer that needs routing decisions can hold its own
    reference.

    ``epoch`` stamps one *generation* of the placement: online reconfiguration
    replaces a sharding with a successor carrying ``epoch + 1`` (see
    :class:`ShardDirectory`), so traces, ``regA`` claims and the specification
    checker can tell which placement a transaction routed against.
    """

    shards: tuple[str, ...]
    placement: str = PLACEMENT_REPLICATE
    epoch: int = 0

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a sharding needs at least one shard")
        if len(set(self.shards)) != len(self.shards):
            raise ValueError(f"duplicate shard names in {self.shards!r}")
        if self.placement not in KNOWN_PLACEMENTS:
            raise ValueError(f"unknown placement {self.placement!r}; known: "
                             f"{', '.join(KNOWN_PLACEMENTS)}")
        if self.epoch < 0:
            raise ValueError(f"negative sharding epoch {self.epoch}")
        object.__setattr__(self, "shards", tuple(self.shards))

    def resized(self, shards: Sequence[str]) -> "Sharding":
        """The successor placement over ``shards``, stamped ``epoch + 1``."""
        return Sharding(shards=tuple(shards), placement=self.placement,
                        epoch=self.epoch + 1)

    # ------------------------------------------------------------- ownership

    @property
    def partitioned(self) -> bool:
        """Whether keys have a single owner (as opposed to full replication)."""
        return self.placement != PLACEMENT_REPLICATE

    def owner(self, key: str) -> Optional[str]:
        """The single owning shard of ``key``, or ``None`` under replication."""
        if not self.partitioned:
            return None
        return self.shards[self._index_of(key)]

    def _index_of(self, key: str) -> int:
        tag = shard_key(key)
        if self.placement == PLACEMENT_MOD:
            match = _TRAILING_INT.search(tag)
            if match is not None:
                return int(match.group(1)) % len(self.shards)
        return zlib.crc32(tag.encode("utf-8")) % len(self.shards)

    def owns(self, shard: str, key: str) -> bool:
        """Whether ``shard`` holds (a copy of) ``key``."""
        if not self.partitioned:
            return shard in self.shards
        return self.owner(key) == shard

    def participants(self, keys: Iterable[str]) -> tuple[str, ...]:
        """The participant set of a transaction touching ``keys``.

        Returns the owners of the keys, in shard order -- or the empty tuple
        under replication, which on :class:`~repro.core.types.Request` means
        "every database" (the protocol's historical fan-out).
        """
        if not self.partitioned:
            return ()
        owners = {self.owner(key) for key in keys}
        return tuple(shard for shard in self.shards if shard in owners)

    # ------------------------------------------------------------------ data

    def shard_data(self, shard: str, data: dict[str, Any]) -> dict[str, Any]:
        """The slice of ``data`` that ``shard`` should hold initially."""
        if not self.partitioned:
            return dict(data)
        return {key: value for key, value in data.items() if self.owner(key) == shard}

    def owner_predicate(self, shard: str) -> Optional[Callable[[str], bool]]:
        """A ``key -> owned?`` predicate for ``shard`` (``None`` = owns all).

        Installed on the shard's :class:`~repro.storage.kvstore.TransactionalKVStore`
        so misrouted reads/writes fail loudly instead of silently diverging.
        """
        if not self.partitioned:
            return None
        return lambda key: self.owner(key) == shard


# -------------------------------------------------------- request routing

# One implementation of the request->participants routing rules, shared by
# the e-Transaction application server and the three comparison middle tiers
# so partitioned-tier comparisons stay apples-to-apples by construction.


def request_participants(request: Any, db_server_names: Sequence[str]) -> list[str]:
    """The database servers taking part in ``request``'s transaction.

    An empty :attr:`~repro.core.types.Request.participants` tuple means every
    database; a non-empty one is filtered through ``db_server_names`` order so
    all servers iterate participants identically.
    """
    if request.participants:
        return [name for name in db_server_names if name in request.participants]
    return list(db_server_names)


def merge_participant_values(values: dict[str, Any],
                             participants: Sequence[str]) -> Any:
    """One business value out of the per-participant answers.

    With a single participant (the common case on a partitioned tier) the
    value passes through; with several, identical answers collapse to one and
    divergent answers are kept per database so the caller can see each
    shard's part.
    """
    if len(participants) == 1:
        return values[participants[0]]
    distinct = list(values.values())
    if all(value == distinct[0] for value in distinct[1:]):
        return distinct[0]
    return values


def validate_participants(request: Any, db_server_names: Sequence[str]) -> None:
    """Reject a request naming participants outside the deployment."""
    unknown = set(request.participants) - set(db_server_names)
    if unknown:
        raise ValueError(f"request {request.request_id} names unknown "
                         f"participant(s) {sorted(unknown)}; this deployment "
                         f"has databases {list(db_server_names)}")


# ------------------------------------------------------ online reconfiguration


class ShardDirectory:
    """The live, mutable view of a deployment's placement across epochs.

    A deployment that supports online resharding holds exactly one directory;
    every router (application servers, the storage ownership predicates, the
    reconfiguration coordinator) shares it by reference.  The directory always
    exposes a *current* :class:`Sharding` and, during a reconfiguration
    window, a *pending* successor:

    * :meth:`begin` opens the window -- traffic keeps routing against the
      current epoch, but keys whose owner changes under the pending placement
      are reported :meth:`moving` so the application tier can defer them;
    * :meth:`commit` atomically installs the pending placement as current
      (epoch advances by one) and closes the window.

    Ownership checks at the storage layer are deliberately *permissive during
    the window* (:meth:`owns`): a shard owns a key if either epoch says so,
    which lets migration install keys at their new owner before the switch
    without tripping :class:`~repro.storage.kvstore.ShardOwnershipError`.
    """

    def __init__(self, initial: Sharding):
        self.current = initial
        self.pending: Optional[Sharding] = None
        self.reshard_count = 0
        # Keys of transactions currently in flight at the application tier
        # (a refcount per key).  The migration snapshot refuses to run while
        # a *moving* key is retained, so a transaction that routed against
        # the old epoch always finishes against the old owner before its
        # data moves -- the drain half of "in-flight transactions drain on
        # the old epoch".
        self._retained: dict[str, int] = {}

    # ------------------------------------------------------------ transitions

    def begin(self, target: Sharding) -> None:
        """Open a reconfiguration window towards ``target``."""
        if self.pending is not None:
            raise ValueError("a reconfiguration is already in progress")
        if target.epoch != self.current.epoch + 1:
            raise ValueError(f"pending epoch {target.epoch} does not succeed "
                             f"current epoch {self.current.epoch}")
        if target.placement != self.current.placement:
            raise ValueError("reconfiguration cannot change the placement policy")
        self.pending = target

    def commit(self) -> Sharding:
        """Install the pending placement as current and close the window."""
        if self.pending is None:
            raise ValueError("no reconfiguration in progress")
        self.current, self.pending = self.pending, None
        self.reshard_count += 1
        return self.current

    # -------------------------------------------------------------- routing

    @property
    def epoch(self) -> int:
        """The epoch traffic currently routes against."""
        return self.current.epoch

    @property
    def reconfiguring(self) -> bool:
        """Whether a reconfiguration window is open."""
        return self.pending is not None

    def participants(self, keys: Iterable[str]) -> tuple[str, ...]:
        """Participant set of ``keys`` under the current epoch."""
        return self.current.participants(keys)

    def moving(self, keys: Iterable[str]) -> bool:
        """Whether any of ``keys`` changes owner under the pending placement."""
        if self.pending is None:
            return False
        return any(self.current.owner(key) != self.pending.owner(key)
                   for key in keys)

    def owns(self, shard: str, key: str) -> bool:
        """Whether ``shard`` may hold ``key`` (either epoch during a window)."""
        if self.current.owns(shard, key):
            return True
        return self.pending is not None and self.pending.owns(shard, key)

    def owner_predicate(self, shard: str) -> Optional[Callable[[str], bool]]:
        """A live ``key -> owned?`` predicate for ``shard`` (``None`` = all)."""
        if not self.current.partitioned:
            return None
        return lambda key: self.owns(shard, key)

    # ------------------------------------------------------------- draining

    def retain(self, keys: Iterable[str]) -> None:
        """Mark ``keys`` as touched by an in-flight transaction."""
        for key in keys:
            self._retained[key] = self._retained.get(key, 0) + 1

    def release(self, keys: Iterable[str]) -> None:
        """Drop one in-flight reference per key (transaction finished)."""
        for key in keys:
            count = self._retained.get(key, 0) - 1
            if count <= 0:
                self._retained.pop(key, None)
            else:
                self._retained[key] = count

    def retained(self, keys: Iterable[str]) -> bool:
        """Whether any of ``keys`` belongs to an in-flight transaction."""
        return any(key in self._retained for key in keys)

    def migration_plan(self, source: str,
                       held_keys: Iterable[str]) -> dict[str, list[str]]:
        """Which of ``source``'s keys move where under the pending placement.

        Returns ``{destination shard: [keys]}`` for the keys ``source`` holds
        that the pending placement assigns elsewhere; empty outside a window.
        """
        plan: dict[str, list[str]] = {}
        if self.pending is None:
            return plan
        for key in held_keys:
            dest = self.pending.owner(key)
            if dest is not None and dest != source:
                plan.setdefault(dest, []).append(key)
        for keys in plan.values():
            keys.sort()
        return plan
