"""Timing parameters of the protocol actors.

Two groups of knobs:

* :class:`DatabaseTiming` -- how long the database engine spends in each phase
  (transaction start, SQL work, prepare, commit, abort, transaction end).  The
  defaults are calibrated so that the *baseline* column of the paper's
  Figure 8 comes out of the simulator: start 3.4 ms, SQL 187 ms, commit
  18.6 ms (6.1 ms CPU + one 12.5 ms forced log write), end 3.4 ms.
* :class:`ProtocolTiming` -- protocol-level delays: the client's back-off
  period before re-sending a request to all application servers, the cleaning
  thread's scan interval, and the retransmission intervals used while waiting
  for database votes and acknowledgements.

All values are virtual milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DatabaseTiming:
    """Per-phase processing cost at a database server."""

    start: float = 3.4
    sql: float = 187.0
    end: float = 3.4
    prepare_cpu: float = 6.5
    commit_cpu: float = 6.1
    abort_cpu: float = 1.0
    forced_write: float = 12.5

    def scaled(self, factor: float) -> "DatabaseTiming":
        """A copy with every cost multiplied by ``factor`` (used by sweeps)."""
        return DatabaseTiming(
            start=self.start * factor,
            sql=self.sql * factor,
            end=self.end * factor,
            prepare_cpu=self.prepare_cpu * factor,
            commit_cpu=self.commit_cpu * factor,
            abort_cpu=self.abort_cpu * factor,
            forced_write=self.forced_write * factor,
        )

    @property
    def commit_total(self) -> float:
        """Total commit-phase cost (CPU plus the forced commit-record write)."""
        return self.commit_cpu + self.forced_write

    @property
    def prepare_total(self) -> float:
        """Total prepare-phase cost (CPU plus the forced prepare-record write)."""
        return self.prepare_cpu + self.forced_write


@dataclass
class ProtocolTiming:
    """Protocol-level timeouts and intervals."""

    client_backoff: float = 2_000.0
    """The client's back-off period before re-sending the request to *all*
    application servers (Figure 2, line 7).  The paper expects Internet
    clients, hence a generous default."""

    client_rebroadcast: float = 4_000.0
    """Interval at which an already-broadcast request is re-sent while the
    client is still waiting.  Keeps the client live under message loss; set
    very large to match the paper's pseudo-code literally."""

    clean_interval: float = 25.0
    """Pacing of the cleaning thread's scan loop (Figure 6 loops continuously;
    we pace it to keep simulations cheap)."""

    decide_retry: float = 250.0
    """Retransmission interval of ``Decide`` while waiting for ``AckDecide``
    from every database server (the repeat loop of Figure 4's terminate())."""

    prepare_retry: float = 500.0
    """Retransmission interval of ``Prepare`` while waiting for votes."""

    execute_retry: float = 500.0
    """Retransmission interval of ``Execute`` while waiting for the business
    logic's reply from a database server."""

    fast_write_latency: float = 4.5
    """Latency charged per wo-register write by the *local* (ideal) register
    implementation; the consensus-backed implementation derives its latency
    from real message exchanges instead and ignores this value."""
