"""Experiment E3 -- reproduce Figure 1 (executions of the e-Transaction protocol).

Figure 1 shows four executions of the asynchronous-replication protocol:

(a) failure-free run with commit,
(b) failure-free run with abort (a database refuses the result),
(c) fail-over with commit  -- the primary crashes *after* writing the decision,
    a backup finishes the commitment and answers the client,
(d) fail-over with abort   -- the primary crashes *before* writing the
    decision, a backup aborts the result on its behalf (the client then retries
    a fresh result, which commits).

``run()`` reproduces each execution with an explicit fault schedule and checks
the structural facts the figure conveys (who answered the client, whether the
first result aborted, whether the databases stayed consistent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import api
from repro.core import Request
from repro.experiments import calibration
from repro.failure.injection import FaultSchedule
from repro.metrics.steps import CommunicationProfile, profile_from_trace


@dataclass
class ScenarioResult:
    """Outcome of one Figure 1 scenario."""

    name: str
    delivered: bool
    attempts: int
    aborted_results: list[int]
    answered_by: set[str]
    committed_balance: Optional[int]
    spec_ok: bool
    profile: CommunicationProfile
    latency: Optional[float] = None
    notes: str = ""

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.name}: delivered={self.delivered} attempts={self.attempts} "
                f"aborted={self.aborted_results} answered_by={sorted(self.answered_by)} "
                f"spec_ok={self.spec_ok}")


@dataclass
class Figure1Report:
    """All four scenarios."""

    scenarios: dict[str, ScenarioResult] = field(default_factory=dict)

    def scenario(self, name: str) -> ScenarioResult:
        """Look up one scenario by its Figure 1 label ('a', 'b', 'c', 'd')."""
        return self.scenarios[name]

    def all_spec_ok(self) -> bool:
        """Whether every scenario satisfied the e-Transaction specification."""
        return all(result.spec_ok for result in self.scenarios.values())

    def to_text(self) -> str:
        """Per-scenario summaries."""
        return "\n".join(result.summary() for result in self.scenarios.values())


def _build(seed: int) -> tuple[api.RunningSystem, Request]:
    scenario = calibration.paper_scenario("etx", seed=seed, num_app_servers=3,
                                          detection_delay=10.0)
    system = api.build(scenario)
    return system, system.standard_request()


def _scenario(name: str, deployment: api.RunningSystem, request: Request,
              horizon: float = 1_000_000.0) -> ScenarioResult:
    issued = deployment.run_request(request, horizon=horizon)
    deployment.run(until=deployment.sim.now + 5_000.0)
    answered_by = {event.process for event in deployment.trace.select("as_result_sent")}
    balance = deployment.db_servers["d1"].committed_value("account:0")
    report = deployment.check_spec(check_termination=False)
    profile = profile_from_trace(deployment.trace, f"figure1-{name}")
    return ScenarioResult(
        name=name,
        delivered=issued.delivered,
        attempts=issued.attempts,
        aborted_results=list(issued.aborted_results),
        answered_by=answered_by,
        committed_balance=balance,
        spec_ok=report.ok,
        profile=profile,
        latency=issued.latency,
    )


def run(seed: int = 0) -> Figure1Report:
    """Reproduce the four executions of Figure 1."""
    report = Figure1Report()

    # (a) failure-free run with commit.
    deployment, request = _build(seed)
    report.scenarios["a"] = _scenario("a", deployment, request)

    # (b) failure-free run with abort: the database refuses to vote yes for the
    # first intermediate result (here because another transaction holds the
    # account's lock), the protocol aborts it and the client's retry commits
    # once the lock is free again.
    deployment_b, request_b = _build(seed)
    blocker_store = deployment_b.db_servers["d1"].store
    blocker_store.begin("interactive-session")
    blocker_store.write("interactive-session", "account:0", 0)
    deployment_b.sim.schedule(350.0, lambda: blocker_store.abort("interactive-session"),
                              name="release-blocking-lock")
    result_b = _scenario("b", deployment_b, request_b)
    result_b.notes = ("the database votes no for the first intermediate result "
                      "(lock held by another session); the retry commits")
    report.scenarios["b"] = result_b

    # (c) fail-over with commit: crash the primary just after it wrote the
    # decision into regD (~243 ms into the run with the calibrated timing).
    deployment_c, request_c = _build(seed)
    deployment_c.apply_faults(FaultSchedule().crash(244.0, "a1"))
    report.scenarios["c"] = _scenario("c", deployment_c, request_c)

    # (d) fail-over with abort: crash the primary mid-computation, long before
    # any decision exists; a backup aborts the orphaned result.
    deployment_d, request_d = _build(seed)
    deployment_d.apply_faults(FaultSchedule().crash(60.0, "a1"))
    report.scenarios["d"] = _scenario("d", deployment_d, request_d)

    return report
