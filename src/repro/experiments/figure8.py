"""Experiment E1 / E4 -- reproduce Figure 8 (latency of baseline vs AR vs 2PC).

The paper measures the client-observed response time of repeated identical
bank-account transactions in the failure- and suspicion-free steady state and
allocates it to protocol components.  ``run()`` does the same against the
simulated three-tier stack: it drives ``requests_per_protocol`` transactions
through each protocol, builds the per-component breakdown and the "cost of
reliability" row, and can compare the result against the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.api import sweep as sweep_api
from repro.experiments import calibration
from repro.metrics.latency import LatencyTable
from repro.metrics.percentiles import summarise
from repro.workload.generator import RunStatistics


@dataclass
class Figure8Report:
    """The reproduced Figure 8 plus comparison helpers."""

    table: LatencyTable
    statistics: dict[str, RunStatistics] = field(default_factory=dict)

    def overheads(self) -> dict[str, float]:
        """Measured 'cost of reliability' per protocol (fractions, baseline = 0)."""
        return self.table.overheads()

    def to_table(self) -> str:
        """Figure 8 as a fixed-width text table."""
        return self.table.to_table()

    def compare_with_paper(self) -> str:
        """Side-by-side text comparison of measured vs paper totals and overheads."""
        lines = ["protocol      paper total   measured total   paper overhead   measured overhead"]
        overheads = self.overheads()
        for protocol in ("baseline", "AR", "2PC"):
            column = self.table.column(protocol)
            if column is None:
                continue
            paper_total = calibration.PAPER_FIGURE8[protocol]["total"]
            paper_overhead = calibration.PAPER_OVERHEAD[protocol]
            lines.append(
                f"{protocol:<12}{paper_total:>12.1f}{column.total:>17.1f}"
                f"{paper_overhead * 100:>16.0f}%{overheads.get(protocol, 0.0) * 100:>19.0f}%")
        return "\n".join(lines)

    def percentile_summary(self) -> dict[str, dict[str, float]]:
        """p50/p95/p99 of each protocol's client-observed latency."""
        return {protocol: summarise(stats.latencies)
                for protocol, stats in self.statistics.items()}

    def shape_holds(self, tolerance: float = 0.10) -> bool:
        """The qualitative claim of the paper:

        baseline < AR < 2PC, with the AR overhead in the neighbourhood of the
        paper's 16 % and the 2PC overhead in the neighbourhood of 23 %
        (``tolerance`` is an absolute band on the overhead fractions).
        """
        overheads = self.overheads()
        if not {"baseline", "AR", "2PC"} <= set(overheads):
            return False
        ordering = 0.0 < overheads["AR"] < overheads["2PC"]
        ar_close = abs(overheads["AR"] - calibration.PAPER_OVERHEAD["AR"]) <= tolerance
        twopc_close = abs(overheads["2PC"] - calibration.PAPER_OVERHEAD["2PC"]) <= tolerance
        return ordering and ar_close and twopc_close


_COLUMN_LABELS = {"baseline": "baseline", "etx": "AR", "2pc": "2PC", "pb": "PB"}


def run(requests_per_protocol: int = 5, seed: int = 0,
        num_app_servers: int = 3, include_primary_backup: bool = False,
        workers: int = 1) -> Figure8Report:
    """Reproduce Figure 8 (one sweep over the protocol axis).

    Parameters
    ----------
    requests_per_protocol:
        Closed-loop transactions measured per protocol (the paper ran "multiple
        identical transactions"; 5 is enough in a deterministic simulator).
    seed:
        Simulation seed.
    num_app_servers:
        Replication degree of the AR protocol (3 tolerates one crash, as in the
        paper's analytic setting).
    include_primary_backup:
        Also measure the primary-backup comparator (the paper discusses it but
        reports no numbers because its components match the AR column).
    workers:
        Worker processes for the protocol columns (results are identical at
        any worker count; 1 measures in-process).
    """
    protocol_axis: list[dict] = [
        {"protocol": "baseline", "num_app_servers": 1},
        {"protocol": "etx", "num_app_servers": num_app_servers},
        {"protocol": "2pc", "num_app_servers": 1},
    ]
    if include_primary_backup:
        protocol_axis.append({"protocol": "pb", "num_app_servers": 2})
    grid = sweep_api.Sweep.over(calibration.paper_scenario("baseline", seed=seed),
                                protocol=protocol_axis)
    result = sweep_api.run_sweep(grid, requests=requests_per_protocol,
                                 workers=workers)

    table = LatencyTable()
    statistics: dict[str, RunStatistics] = {}
    for row in result:
        label = _COLUMN_LABELS[row.scenario.protocol]
        statistics[label] = row.statistics
        table.add(replace(row.breakdown, protocol=label))
    return Figure8Report(table=table, statistics=statistics)
