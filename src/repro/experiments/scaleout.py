"""Experiment E9 -- scale-out curve of the partitioned data tier.

The paper's protocol supports multiple database servers but its evaluation
treats them as replicas: every transaction involves all of them, so databases
add coordination cost, not capacity.  This experiment measures the
partitioned alternative: throughput versus the number of database servers
``d`` at a **fixed offered load**, with the cross-shard fraction ``xshard``
as a family of curves.

* At ``xshard=0`` every transaction touches one shard; the back-end work
  spreads over ``d`` serial database engines, so committed throughput grows
  with ``d`` until the offered load is absorbed.
* Each cross-shard transaction occupies two shards, so higher ``xshard``
  bends the curve back toward the replicated behaviour.

Built on the declarative sweep executor, so a parallel run (``workers > 1``)
is byte-identical to a serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.api.runner import ScenarioResult
from repro.api.scenario import Scenario
from repro.api.sweep import Sweep, run_sweep


@dataclass
class ScaleoutPoint:
    """One (d, xshard) grid point of the scale-out sweep."""

    dsn: str
    db_servers: int
    xshard: float
    throughput: float
    delivered: int
    requested: int
    mean_latency: float
    p95_latency: float
    spec_ok: bool
    commits_by_database: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Everything delivered and the specification held."""
        return self.delivered == self.requested and self.spec_ok


@dataclass
class ScaleoutReport:
    """The measured scale-out surface plus its comparison helpers."""

    points: list[ScaleoutPoint]
    rate: float
    clients: int
    requests_per_client: int
    seed: int

    @property
    def ok(self) -> bool:
        """Whether every grid point delivered everything spec-clean."""
        return all(point.ok for point in self.points)

    def curve(self, xshard: float) -> list[ScaleoutPoint]:
        """The throughput-vs-d curve at one cross-shard fraction."""
        return sorted((p for p in self.points if p.xshard == xshard),
                      key=lambda p: p.db_servers)

    def xshard_values(self) -> list[float]:
        """The cross-shard fractions measured, ascending."""
        return sorted({p.xshard for p in self.points})

    def speedup(self, xshard: float = 0.0) -> dict[int, float]:
        """Throughput of each ``d`` relative to ``d=1`` at one fraction."""
        curve = self.curve(xshard)
        base = next((p.throughput for p in curve if p.db_servers == 1), None)
        if not base:
            return {}
        return {p.db_servers: p.throughput / base for p in curve}

    def scaling_holds(self, at_db_servers: int = 4, min_speedup: float = 2.5,
                      xshard: float = 0.0) -> bool:
        """The headline claim: ``d`` shards sustain >= ``min_speedup`` x the
        ``d=1`` committed throughput at the same offered load."""
        return self.speedup(xshard).get(at_db_servers, 0.0) >= min_speedup

    def to_table(self) -> str:
        """Fixed-width text table: one row per d, one column per xshard."""
        fractions = self.xshard_values()
        header = f"{'d':>3} " + " ".join(f"xshard={f:<4g} tput".rjust(16)
                                         for f in fractions)
        lines = [header]
        for d in sorted({p.db_servers for p in self.points}):
            cells = []
            for fraction in fractions:
                match = [p for p in self.curve(fraction) if p.db_servers == d]
                cells.append(f"{match[0].throughput:>16.2f}" if match
                             else " " * 16)
            lines.append(f"{d:>3} " + " ".join(cells))
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable form (the BENCH artifact schema)."""
        return {
            "benchmark": "scaleout",
            "offered_rate_per_s": self.rate,
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "seed": self.seed,
            "points": [
                {
                    "dsn": p.dsn,
                    "db_servers": p.db_servers,
                    "xshard": p.xshard,
                    "throughput_per_s": round(p.throughput, 4),
                    "delivered": p.delivered,
                    "requested": p.requested,
                    "mean_latency_ms": round(p.mean_latency, 3),
                    "p95_latency_ms": round(p.p95_latency, 3),
                    "spec_ok": p.spec_ok,
                    "commits_by_database": p.commits_by_database,
                }
                for p in self.points
            ],
            "speedup_vs_d1_at_xshard0": {
                str(d): round(s, 4) for d, s in self.speedup(0.0).items()
            },
        }


def _point(row: ScenarioResult) -> ScaleoutPoint:
    stats = row.statistics
    return ScaleoutPoint(
        dsn=row.dsn,
        db_servers=row.scenario.num_db_servers,
        xshard=row.scenario.xshard,
        throughput=stats.throughput,
        delivered=row.delivered,
        requested=row.requested,
        mean_latency=stats.mean_latency,
        p95_latency=stats.p95,
        spec_ok=row.spec.ok,
        commits_by_database={name: db.commits
                             for name, db in stats.by_database.items()},
    )


def run(db_counts: Sequence[int] = (1, 2, 4, 8),
        xshard_fractions: Sequence[float] = (0.0, 0.25),
        rate: float = 16.0, clients: int = 12, requests: int = 4,
        seed: int = 0, workers: Optional[int] = 1,
        workload: str = "bank", placement: str = "hash") -> ScaleoutReport:
    """Measure throughput vs ``d`` at fixed offered load.

    Parameters
    ----------
    db_counts:
        Database-tier sizes to measure (include 1 for the speed-up baseline).
    xshard_fractions:
        Cross-shard fractions, one curve each.
    rate:
        Offered load in requests per second of virtual time (uniform
        arrivals), held constant across every grid point.
    clients:
        Open-loop clients the arrivals are dealt over.
    requests:
        Arrivals per client (total offered = ``requests * clients``).
    seed, workload, placement:
        Forwarded to the scenario grid.
    workers:
        Worker processes for the grid (results identical at any count).
    """
    base = Scenario(protocol="etx", num_clients=clients, seed=seed,
                    workload=workload, placement=placement,
                    rate=rate, arrival="uniform")
    sweep = Sweep.over(base, xshard=list(xshard_fractions), d=list(db_counts))
    result = run_sweep(sweep, requests=requests, workers=workers)
    return ScaleoutReport(points=[_point(row) for row in result.rows],
                          rate=rate, clients=clients,
                          requests_per_client=requests, seed=seed)
