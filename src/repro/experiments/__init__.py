"""Reproduction harnesses: one module per paper figure/table plus ablations.

* :mod:`repro.experiments.figure8` -- E1/E4: the latency table and the
  "cost of reliability" row.
* :mod:`repro.experiments.figure7` -- E2: communication steps of the four
  protocols in failure-free runs.
* :mod:`repro.experiments.figure1` -- E3: the four executions of the
  e-Transaction protocol (commit, abort, fail-over with commit/abort).
* :mod:`repro.experiments.ablations` -- E5/E7/E8: asynchrony of the
  replication scheme, forced-log cost sweep, replication-degree scaling.
* :mod:`repro.experiments.fault_sweep` -- E6: correctness under random faults.
* :mod:`repro.experiments.scaleout` -- E9: throughput vs database-tier size
  for the partitioned data tier, at a fixed offered load.
* :mod:`repro.experiments.soak` -- E10: sustained open-loop load, online
  spec-checked, with measured flat observability memory.
* :mod:`repro.experiments.calibration` -- the paper's measured numbers and the
  calibrated deployment builders shared by all of the above.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    calibration,
    fault_sweep,
    figure1,
    figure7,
    figure8,
    scaleout,
    soak,
)

__all__ = ["calibration", "figure1", "figure7", "figure8", "ablations",
           "fault_sweep", "scaleout", "soak"]
