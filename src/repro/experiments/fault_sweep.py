"""Experiment E6 -- correctness under randomised failures.

Section 5 argues that the termination-related assumptions are only needed for
liveness: violating them can block the protocol but never violates agreement
or validity.  The fault sweep quantifies that claim operationally: it runs
many randomly generated fault schedules (respecting the stated assumptions)
and reports how many runs delivered, how many aborted intermediate results
were needed, and whether any run violated any property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import api
from repro.experiments import calibration
from repro.failure.injection import RandomFaultPlan


@dataclass
class FaultSweepResult:
    """Aggregate outcome of the random fault sweep."""

    runs: int = 0
    delivered: int = 0
    total_aborted_results: int = 0
    violations: list[str] = field(default_factory=list)
    client_crash_runs: int = 0

    @property
    def all_safe(self) -> bool:
        """No property violations anywhere in the sweep."""
        return not self.violations

    @property
    def delivery_rate(self) -> float:
        """Fraction of runs (with a live client) that delivered a result."""
        live_runs = self.runs - self.client_crash_runs
        return self.delivered / live_runs if live_runs else 1.0

    def summary(self) -> str:
        """One-paragraph summary."""
        return (f"{self.runs} runs, {self.delivered} delivered, "
                f"{self.total_aborted_results} aborted intermediate results, "
                f"{len(self.violations)} property violations")


def run(num_runs: int = 20, seed: int = 0, num_db_servers: int = 1,
        allow_client_crash: bool = False, horizon: float = 300_000.0) -> FaultSweepResult:
    """Run ``num_runs`` randomly faulted executions and check every property."""
    result = FaultSweepResult()
    for index in range(num_runs):
        run_seed = seed * 10_000 + index
        scenario = calibration.paper_scenario(
            "etx", seed=run_seed, num_app_servers=3,
            num_db_servers=num_db_servers, detection_delay=10.0)
        deployment = api.build(scenario)
        plan = RandomFaultPlan(
            app_servers=scenario.app_server_names,
            db_servers=scenario.db_server_names,
            client="c1" if allow_client_crash else None,
            horizon=1_500.0,
            client_crash_probability=0.4 if allow_client_crash else 0.0,
        )
        deployment.apply_faults(plan.generate(run_seed))
        issued = deployment.issue(deployment.standard_request())
        deployment.sim.run_until(lambda: issued.delivered, until=horizon)
        deployment.run(until=deployment.sim.now + 20_000.0)
        client_crashed = deployment.trace.count("crash", "c1") > 0
        report = deployment.check_spec(check_termination=not client_crashed)
        result.runs += 1
        result.client_crash_runs += int(client_crashed)
        result.delivered += int(issued.delivered)
        result.total_aborted_results += len(issued.aborted_results)
        if not report.ok:
            result.violations.extend(
                f"seed={run_seed}: {violation}" for violation in report.violations)
    return result
