"""Experiment E6 -- correctness under randomised failures.

Section 5 argues that the termination-related assumptions are only needed for
liveness: violating them can block the protocol but never violates agreement
or validity.  The fault sweep quantifies that claim operationally: it expands
one scenario per random fault schedule (respecting the stated assumptions)
and executes the grid through the sweep executor -- optionally over worker
processes -- reporting how many runs delivered, how many aborted intermediate
results were needed, and whether any run violated any property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import api
from repro.api import sweep as sweep_api
from repro.core.types import reset_request_counter
from repro.experiments import calibration
from repro.failure import injection
from repro.failure.injection import FaultSchedule, RandomFaultPlan


@dataclass
class FaultSweepResult:
    """Aggregate outcome of the random fault sweep."""

    runs: int = 0
    delivered: int = 0
    total_aborted_results: int = 0
    violations: list[str] = field(default_factory=list)
    client_crash_runs: int = 0

    @property
    def all_safe(self) -> bool:
        """No property violations anywhere in the sweep."""
        return not self.violations

    @property
    def delivery_rate(self) -> float:
        """Fraction of runs (with a live client) that delivered a result."""
        live_runs = self.runs - self.client_crash_runs
        return self.delivered / live_runs if live_runs else 1.0

    def summary(self) -> str:
        """One-paragraph summary."""
        return (f"{self.runs} runs, {self.delivered} delivered, "
                f"{self.total_aborted_results} aborted intermediate results, "
                f"{len(self.violations)} property violations")


def fault_specs(schedule: FaultSchedule) -> tuple[api.FaultSpec, ...]:
    """A :class:`FaultSchedule`'s actions as DSN-expressible fault specs.

    Every fault kind (including partitions and heals) now has a DSN form;
    this is :func:`repro.api.schedule_to_specs`, kept under its historical
    name for the experiment harnesses.
    """
    return api.schedule_to_specs(schedule)


@dataclass(frozen=True)
class _FaultedJob:
    """Picklable unit: one randomly faulted scenario."""

    scenario: api.Scenario
    horizon: float


@dataclass(frozen=True)
class _FaultedRow:
    seed: int
    delivered: bool
    aborted_results: int
    client_crashed: bool
    violations: tuple[str, ...]


def _execute_faulted(job: _FaultedJob) -> _FaultedRow:
    scenario = job.scenario
    client_crashed = any(
        fault.kind in (injection.CRASH, injection.CRASH_FOR)
        and fault.target in scenario.client_names
        for fault in scenario.faults)
    reset_request_counter()
    result = api.run_scenario(scenario, requests=1,
                              horizon_per_request=job.horizon,
                              settle=20_000.0,
                              check_termination=not client_crashed)
    return _FaultedRow(
        seed=scenario.seed,
        delivered=result.delivered > 0,
        aborted_results=result.statistics.aborted_results,
        client_crashed=client_crashed,
        violations=tuple(f"seed={scenario.seed}: {violation}"
                         for violation in result.spec.violations),
    )


def run(num_runs: int = 20, seed: int = 0, num_db_servers: int = 1,
        allow_client_crash: bool = False, horizon: float = 300_000.0,
        workers: Optional[int] = 1) -> FaultSweepResult:
    """Run ``num_runs`` randomly faulted executions and check every property.

    Each run is one scenario whose fault schedule is baked in as DSN fault
    specs, so the whole sweep is a reproducible grid; ``workers > 1`` fans the
    grid out over processes with identical results.
    """
    jobs = []
    for index in range(num_runs):
        run_seed = seed * 10_000 + index
        scenario = calibration.paper_scenario(
            "etx", seed=run_seed, num_app_servers=3,
            num_db_servers=num_db_servers, detection_delay=10.0)
        plan = RandomFaultPlan(
            app_servers=scenario.app_server_names,
            db_servers=scenario.db_server_names,
            client="c1" if allow_client_crash else None,
            horizon=1_500.0,
            client_crash_probability=0.4 if allow_client_crash else 0.0,
        )
        scenario = scenario.with_(faults=fault_specs(plan.generate(run_seed)))
        jobs.append(_FaultedJob(scenario=scenario, horizon=horizon))

    result = FaultSweepResult()
    for row in sweep_api.map_jobs(_execute_faulted, jobs, workers=workers):
        result.runs += 1
        result.client_crash_runs += int(row.client_crashed)
        result.delivered += int(row.delivered)
        result.total_aborted_results += row.aborted_results
        result.violations.extend(row.violations)
    return result
