"""Experiment E10 -- soak run: sustained open-loop load with flat memory.

Before the streaming observability refactor this experiment was impossible:
the trace grew by dozens of events per request and the spec checker re-scanned
the whole history, so a 100k-request run both exhausted memory and spent its
wall-clock in post-hoc scanning.  With the event-bus pipeline the run keeps

* the **stored trace** bounded (``trace=ring:N`` keeps a flight-recorder
  suffix, ``off`` stores nothing),
* the **online spec monitor** at O(in-flight) heavy state, retiring
  transactions as they terminally resolve, while still producing the full
  e-Transaction verdict at the end,
* the metrics (throughput, percentiles, per-database outcomes, latency
  components) streaming off the same bus.

The experiment samples the observability state at checkpoints during the run
(stored-trace size, spec-monitor in-flight transactions) so flat memory is a
measured fact in the report, not a claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.api.drivers import build
from repro.api.runner import load_generator_for
from repro.api.scenario import Scenario
from repro.core.types import reset_request_counter
from repro.sim.tracing import RETENTION_RING, parse_retention

# Eight shards absorb ~42 committed transactions per virtual second (each
# database's execute stage costs ~190 ms of simulated engine time), so an
# offered load of 32/s soaks the stack at ~76% utilisation without the
# unbounded queueing an over-saturated open loop would build up.
DEFAULT_SOAK_DSN = ("etx://a3.d8.c64?rate=32&arrival=poisson&seed=11"
                    "&workload=bank&placement=hash&xshard=0.1&trace=off")


@dataclass
class SoakSample:
    """One observability checkpoint taken during the run."""

    time: float                 # virtual ms since the run started
    events_processed: int       # simulator callbacks so far
    trace_stored: int           # events currently held by the recorder
    spec_in_flight: int         # transactions the monitor has not retired
    spec_retired: int           # transactions whose state machines were freed
    mailbox_backlog: int        # buffered messages across every process


@dataclass
class SoakReport:
    """Everything one soak run measured."""

    dsn: str
    requested: int
    delivered: int
    undelivered: int
    throughput: float           # committed requests per virtual second
    p50: float
    p95: float
    p99: float
    elapsed_virtual_ms: float
    wall_seconds: float
    events_processed: int
    events_per_second: float    # simulator callbacks per wall second
    spec_ok: bool
    spec_summary: str
    checked_properties: list[str] = field(default_factory=list)
    trace_retention: str = "off"
    trace_stored_final: int = 0
    samples: list[SoakSample] = field(default_factory=list)
    parallel: Optional[dict] = None  # round-engine counters (jobs>0 runs)

    @property
    def trace_bounded(self) -> bool:
        """Whether the stored trace stayed within its retention bound."""
        mode, capacity = parse_retention(self.trace_retention)
        if mode == "off":
            bound = 0
        elif mode == RETENTION_RING:
            bound = capacity
        else:
            return False  # full retention grows with the run, by design
        return all(sample.trace_stored <= bound for sample in self.samples) \
            and self.trace_stored_final <= bound

    @property
    def spec_memory_flat(self) -> bool:
        """Whether the monitor's in-flight table stayed flat (no leak).

        "Flat" = the largest in-flight population seen at any checkpoint in
        the second half of the run is no bigger than twice the largest seen
        in the first half (plus a small allowance for ramp-up) -- a growing
        table would trend with the request count instead.
        """
        if len(self.samples) < 4:
            return True
        half = len(self.samples) // 2
        first = max(s.spec_in_flight for s in self.samples[:half])
        second = max(s.spec_in_flight for s in self.samples[half:])
        return second <= 2 * max(first, 8)

    @property
    def ok(self) -> bool:
        """Spec-clean, everything delivered, memory demonstrably bounded."""
        return self.spec_ok and self.undelivered == 0 \
            and self.trace_bounded and self.spec_memory_flat

    def to_json(self) -> dict:
        """Machine-readable BENCH payload (written to benchmarks/out)."""
        return {
            "dsn": self.dsn,
            "requested": self.requested,
            "delivered": self.delivered,
            "undelivered": self.undelivered,
            "throughput_per_s": round(self.throughput, 1),
            "p50_ms": round(self.p50, 2),
            "p95_ms": round(self.p95, 2),
            "p99_ms": round(self.p99, 2),
            "elapsed_virtual_s": round(self.elapsed_virtual_ms / 1000.0, 1),
            "wall_seconds": round(self.wall_seconds, 3),
            "events_processed": self.events_processed,
            "events_per_second": round(self.events_per_second),
            "spec_ok": self.spec_ok,
            "checked_properties": list(self.checked_properties),
            "trace_retention": self.trace_retention,
            "trace_stored_final": self.trace_stored_final,
            "trace_bounded": self.trace_bounded,
            "spec_memory_flat": self.spec_memory_flat,
            "max_spec_in_flight": max((s.spec_in_flight for s in self.samples),
                                      default=0),
            "max_trace_stored": max((s.trace_stored for s in self.samples),
                                    default=0),
            "max_mailbox_backlog": max((s.mailbox_backlog for s in self.samples),
                                       default=0),
            "parallel": self.parallel,
            "samples": [
                {"t_virtual_ms": round(s.time, 1),
                 "events": s.events_processed,
                 "trace_stored": s.trace_stored,
                 "spec_in_flight": s.spec_in_flight,
                 "spec_retired": s.spec_retired,
                 "mailbox_backlog": s.mailbox_backlog}
                for s in self.samples
            ],
        }

    def summary(self) -> str:
        """Compact multi-line report (what the CLI prints)."""
        lines = [
            f"soak       {self.dsn}",
            f"requests   {self.delivered}/{self.requested} delivered"
            f"   throughput {self.throughput:.1f} req/s of virtual time",
            f"latency    p50 {self.p50:.1f}   p95 {self.p95:.1f}"
            f"   p99 {self.p99:.1f} ms",
            f"engine     {self.events_processed} events in"
            f" {self.wall_seconds:.1f}s wall"
            f" ({self.events_per_second:,.0f} events/s)",
            f"memory     trace[{self.trace_retention}] stored"
            f" {self.trace_stored_final}"
            f" (bounded: {self.trace_bounded})   spec in-flight max "
            f"{max((s.spec_in_flight for s in self.samples), default=0)}"
            f" (flat: {self.spec_memory_flat})   mailbox backlog max "
            f"{max((s.mailbox_backlog for s in self.samples), default=0)}",
            f"spec       {self.spec_summary}",
        ]
        if self.parallel:
            par = self.parallel
            lines.append(
                f"parallel   {par['jobs']} job(s), {par['workers']} worker(s)"
                f"   {par['rounds']} rounds ({par['stalled_windows']} stalled)"
                f"   balance {par['balance']:.2f}")
        return "\n".join(lines)


def run(dsn: Union[str, Scenario] = DEFAULT_SOAK_DSN, requests: int = 100_000,
        checkpoints: int = 20, settle: float = 5_000.0,
        max_events: Optional[int] = None) -> SoakReport:
    """Soak one scenario with ``requests`` total open-loop arrivals.

    ``requests`` is the total offered load, dealt round-robin over the
    scenario's clients; the scenario must be an open loop (``rate > 0``) --
    a closed loop adapts its offered load to the system and cannot soak it.
    """
    scenario = Scenario.from_dsn(dsn) if isinstance(dsn, str) else dsn
    if scenario.rate <= 0:
        raise ValueError("a soak run needs an open-loop scenario (rate > 0)")
    per_client, remainder = divmod(requests, scenario.num_clients)
    if remainder:
        per_client += 1
    total = per_client * scenario.num_clients
    if max_events is None:
        max_events = max(5_000_000, 200 * total)

    reset_request_counter()
    system = build(scenario)
    sim = system.sim
    monitor = system.spec_monitor
    trace = system.trace

    samples: list[SoakSample] = []
    start_virtual = sim.now
    expected_duration = total / scenario.rate * 1000.0  # virtual ms
    interval = expected_duration / max(checkpoints, 1)

    processes = system.network.processes

    def sample() -> None:
        samples.append(SoakSample(
            time=sim.now - start_virtual,
            events_processed=sim.events_processed,
            trace_stored=len(trace),
            spec_in_flight=monitor.in_flight,
            spec_retired=monitor.retired,
            mailbox_backlog=sum(p.mailbox_size for p in processes.values()),
        ))

    for checkpoint in range(1, checkpoints + 1):
        sim.schedule(checkpoint * interval, sample, name="soak:sample")

    generator = load_generator_for(scenario, max_events=max_events)
    wall_start = time.perf_counter()
    statistics = generator.run(system, per_client)
    if settle > 0:
        system.run(until=sim.now + settle)
    wall = time.perf_counter() - wall_start
    sample()  # final checkpoint after the drain

    report = system.check_spec(
        check_termination=statistics.undelivered == 0)
    return SoakReport(
        dsn=scenario.to_dsn(),
        requested=total,
        delivered=statistics.count,
        undelivered=statistics.undelivered,
        throughput=statistics.throughput,
        p50=statistics.p50,
        p95=statistics.p95,
        p99=statistics.p99,
        elapsed_virtual_ms=statistics.elapsed,
        wall_seconds=wall,
        events_processed=sim.events_processed,
        events_per_second=sim.events_processed / wall if wall > 0 else 0.0,
        spec_ok=report.ok,
        spec_summary=report.summary(),
        checked_properties=list(report.checked_properties),
        trace_retention=scenario.trace,
        trace_stored_final=len(trace),
        samples=samples,
        parallel=statistics.parallel,
    )
