"""Experiment E2 -- reproduce Figure 7 (communication steps in failure-free runs).

Figure 7 contrasts the message-sequence diagrams of the four protocols in a
failure-free execution: the unreliable baseline, presumed-nothing 2PC,
primary-backup replication, and the paper's asynchronous replication.  The
experiment runs one request through each stack and extracts the communication
profile (ordered message sequence, counts per message type, client-visible
steps) from the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import api
from repro.api import sweep as sweep_api
from repro.experiments import calibration
from repro.metrics.steps import CommunicationProfile, StepComparison, StreamingProfile


@dataclass
class Figure7Report:
    """The reproduced Figure 7: one communication profile per protocol."""

    comparison: StepComparison
    latencies: dict[str, float] = field(default_factory=dict)

    def profile(self, protocol: str) -> CommunicationProfile:
        """The message profile of one protocol."""
        return self.comparison.profiles[protocol]

    def message_counts(self) -> dict[str, int]:
        """Total protocol messages per protocol (excluding consensus internals)."""
        return self.comparison.message_counts()

    def to_table(self) -> str:
        """Per-protocol message counts by type."""
        return self.comparison.to_table()

    def sequence_diagrams(self) -> str:
        """Concatenated message-sequence listings (the content of the figure)."""
        return "\n\n".join(profile.sequence_diagram()
                           for profile in self.comparison.profiles.values())

    def expected_structure_holds(self) -> bool:
        """Qualitative checks on the four diagrams:

        * the baseline exchanges no Prepare/Vote messages,
        * 2PC and AR and PB all run the voting phase,
        * only PB exchanges the start/outcome replication messages,
        * AR (with its in-memory replication) sends no more client-visible
          protocol messages than 2PC plus the replication traffic.
        """
        baseline = self.profile("baseline")
        twopc = self.profile("2PC")
        primary_backup = self.profile("PB")
        asynchronous = self.profile("AR")
        checks = [
            baseline.count("Prepare") == 0,
            baseline.count("CommitOnePhase") >= 1,
            twopc.count("Prepare") >= 1 and twopc.count("Vote") >= 1,
            asynchronous.count("Prepare") >= 1 and asynchronous.count("Vote") >= 1,
            primary_backup.count("PBStart") >= 1 and primary_backup.count("PBOutcome") >= 1,
            asynchronous.count("PBStart") == 0,
            asynchronous.consensus_messages > 0,
            baseline.consensus_messages == 0,
        ]
        return all(checks)


def _profile_stack(job: tuple[str, api.Scenario]
                   ) -> tuple[str, CommunicationProfile, Optional[float]]:
    """One sweep job: run one failure-free request, stream out the profile.

    The profile accumulates over the event bus while the run executes
    (subscribed right after build), so the extraction works under any trace
    retention policy instead of re-scanning a fully stored trace.
    """
    label, scenario = job
    system = api.build(scenario)
    streaming = StreamingProfile(system.trace, label)
    issued = system.run_request(system.standard_request())
    latency = issued.latency if issued.delivered else None
    return label, streaming.detach(), latency


def run(seed: int = 0, workers: int = 1) -> Figure7Report:
    """Run one failure-free request through each of the four protocols
    (fanned out over ``workers`` processes when asked; same results)."""
    jobs = [
        ("baseline", calibration.paper_scenario("baseline", seed=seed)),
        ("2PC", calibration.paper_scenario("2pc", seed=seed)),
        ("PB", calibration.paper_scenario("pb", seed=seed)),
        ("AR", calibration.paper_scenario("etx", seed=seed)),
    ]
    comparison = StepComparison()
    latencies: dict[str, float] = {}
    for label, profile, latency in sweep_api.map_jobs(_profile_stack, jobs,
                                                      workers=workers):
        if latency is not None:
            latencies[label] = latency
        comparison.add(profile)
    return Figure7Report(comparison=comparison, latencies=latencies)
