"""Ablation experiments (E5, E7, E8) around the paper's design discussion.

* :func:`asynchrony_sweep` (E5) -- Section 5, "on the asynchrony of the
  replication scheme": with a patient client and reliable suspicions the
  protocol behaves like primary-backup (one active primary, no wasted work);
  with an impatient client or false suspicions several servers may try to
  terminate the same result concurrently.  The sweep varies the client
  back-off and injected false suspicions and measures duplicate claims and
  aborted intermediate results.
* :func:`log_cost_sweep` (E7) -- Appendix 3, the forced-log argument: the AR
  protocol wins because it replaces two forced disk writes with two in-memory
  replicated register writes.  Sweeping the forced-write latency shows where
  the two protocols cross over.
* :func:`scaling_sweep` (E8) -- replication degree: latency and message count
  of the AR protocol with 1, 3, 5, 7 application servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import api
from repro.experiments import calibration
from repro.metrics.steps import profile_from_trace
from repro.workload.generator import ClosedLoop


# --------------------------------------------------------------------- E5


@dataclass
class AsynchronyPoint:
    """One configuration of the asynchrony sweep."""

    label: str
    client_backoff: float
    false_suspicion: bool
    delivered: bool
    attempts: int
    aborted_results: int
    distinct_claimers: int
    duplicate_result_messages: int
    spec_ok: bool


def asynchrony_sweep(seed: int = 0) -> list[AsynchronyPoint]:
    """Vary client patience and failure-detector reliability (E5)."""
    scenarios = [
        ("patient client, reliable FD", 2_000.0, False),
        ("impatient client, reliable FD", 40.0, False),
        ("patient client, false suspicion", 2_000.0, True),
        ("impatient client, false suspicion", 40.0, True),
    ]
    points = []
    for label, backoff, false_suspicion in scenarios:
        faults = (api.FaultSpec("false_suspicion", 15.0, "a1",
                                observer="a2", duration=200.0),) \
            if false_suspicion else ()
        scenario = calibration.paper_scenario(
            "etx", seed=seed, num_app_servers=3, detection_delay=10.0,
            client_backoff=backoff, faults=faults)
        deployment = api.build(scenario)
        issued = deployment.run_request(deployment.standard_request())
        deployment.run(until=deployment.sim.now + 10_000.0)
        claimers = {event.process for event in deployment.trace.select("as_claim")}
        result_messages = deployment.trace.count("as_result_sent")
        report = deployment.check_spec(check_termination=False)
        points.append(AsynchronyPoint(
            label=label,
            client_backoff=backoff,
            false_suspicion=false_suspicion,
            delivered=issued.delivered,
            attempts=issued.attempts,
            aborted_results=len(issued.aborted_results),
            distinct_claimers=len(claimers),
            duplicate_result_messages=max(0, result_messages - issued.attempts),
            spec_ok=report.ok,
        ))
    return points


# --------------------------------------------------------------------- E7


@dataclass
class LogCostPoint:
    """AR vs 2PC totals at one forced-log latency."""

    forced_write_latency: float
    ar_total: float
    twopc_total: float

    @property
    def ar_wins(self) -> bool:
        """Whether the asynchronous-replication protocol is faster at this point."""
        return self.ar_total < self.twopc_total


def log_cost_sweep(latencies: Optional[list[float]] = None, seed: int = 0,
                   requests: int = 2) -> list[LogCostPoint]:
    """Sweep the forced-log latency and compare AR vs 2PC totals (E7).

    The coordinator's forced log writes are what the AR protocol eliminates;
    the database's own forced writes are kept at the calibrated 12.5 ms so the
    comparison isolates the transaction-manager log.
    """
    if latencies is None:
        latencies = [0.0, 2.0, 5.0, 12.5, 25.0]
    points = []
    for log_latency in latencies:
        ar = api.build(calibration.paper_scenario("etx", seed=seed))
        ar_stats = ClosedLoop().run(ar, requests)
        twopc = api.build(calibration.paper_scenario(
            "2pc", seed=seed, coordinator_log_latency=log_latency))
        twopc_stats = ClosedLoop().run(twopc, requests)
        points.append(LogCostPoint(
            forced_write_latency=log_latency,
            ar_total=ar_stats.mean_latency,
            twopc_total=twopc_stats.mean_latency,
        ))
    return points


# --------------------------------------------------------------------- E8


@dataclass
class ScalingPoint:
    """AR latency and traffic at one replication degree."""

    num_app_servers: int
    mean_latency: float
    total_messages: int
    consensus_messages: int
    delivered: bool


def scaling_sweep(degrees: Optional[list[int]] = None, seed: int = 0,
                  requests: int = 2) -> list[ScalingPoint]:
    """Latency and message count of the AR protocol versus replication degree (E8)."""
    if degrees is None:
        degrees = [1, 3, 5, 7]
    points = []
    for degree in degrees:
        deployment = api.build(calibration.paper_scenario(
            "etx", seed=seed, num_app_servers=degree))
        stats = ClosedLoop().run(deployment, requests)
        profile = profile_from_trace(deployment.trace, f"ar-{degree}")
        points.append(ScalingPoint(
            num_app_servers=degree,
            mean_latency=stats.mean_latency,
            total_messages=profile.total_messages,
            consensus_messages=profile.consensus_messages,
            delivered=stats.count == requests,
        ))
    return points
