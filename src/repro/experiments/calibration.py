"""Calibration data: the paper's measured numbers and our standard configurations.

``PAPER_FIGURE8`` is the table of Appendix 3 (Figure 8) verbatim, in
milliseconds.  The deployment helpers below build the three protocol stacks
with identical database timing and network topology so that the *only*
differences between the measured columns are the protocols themselves --
exactly the paper's methodology (same SQL work, same machines, same network).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.baselines.baseline import BaselineDeployment
from repro.baselines.common import BaselineConfig
from repro.baselines.primary_backup import PrimaryBackupDeployment
from repro.baselines.twopc import TwoPCDeployment
from repro.core.deployment import DeploymentConfig, EtxDeployment
from repro.core.timing import DatabaseTiming, ProtocolTiming
from repro.core.types import Request
from repro.workload.bank import BankWorkload

PAPER_FIGURE8: dict[str, dict[str, float]] = {
    "baseline": {"start": 3.4, "end": 3.4, "commit": 18.6, "prepare": 0.0, "SQL": 187.0,
                 "log-start": 0.0, "log-outcome": 0.0, "other": 5.0, "total": 217.4},
    "AR": {"start": 3.5, "end": 3.5, "commit": 18.8, "prepare": 19.0, "SQL": 193.2,
           "log-start": 4.5, "log-outcome": 4.7, "other": 5.1, "total": 252.3},
    "2PC": {"start": 3.5, "end": 3.4, "commit": 17.5, "prepare": 21.2, "SQL": 190.6,
            "log-start": 12.5, "log-outcome": 12.7, "other": 5.1, "total": 266.5},
}
"""Figure 8 of the paper, milliseconds, HP C180 + Orbix 2.3 + Oracle 8.0.3."""

PAPER_OVERHEAD = {"baseline": 0.0, "AR": 0.16, "2PC": 0.23}
"""The paper's headline 'cost of reliability' percentages."""


def paper_database_timing() -> DatabaseTiming:
    """Database timing calibrated to the paper's baseline column."""
    return DatabaseTiming(start=3.4, sql=187.0, end=3.4, prepare_cpu=6.5,
                          commit_cpu=6.1, abort_cpu=1.0, forced_write=12.5)


def default_workload() -> BankWorkload:
    """The measured workload: update a bank account on a single database."""
    return BankWorkload(num_accounts=4, initial_balance=100_000)


def standard_request(workload: Optional[BankWorkload] = None) -> Request:
    """The repeated transaction of the measurement: a small debit."""
    workload = workload or default_workload()
    return workload.debit(0, 10)


def build_ar_deployment(seed: int = 0, num_app_servers: int = 3, num_db_servers: int = 1,
                        workload: Optional[BankWorkload] = None,
                        db_timing: Optional[DatabaseTiming] = None,
                        register_mode: str = "consensus",
                        protocol_timing: Optional[ProtocolTiming] = None) -> EtxDeployment:
    """The asynchronous-replication (e-Transaction) stack, paper-calibrated."""
    workload = workload or default_workload()
    config = DeploymentConfig(
        num_app_servers=num_app_servers,
        num_db_servers=num_db_servers,
        register_mode=register_mode,
        seed=seed,
        db_timing=db_timing or paper_database_timing(),
        protocol_timing=protocol_timing or ProtocolTiming(),
        business_logic=workload.business_logic,
        initial_data=workload.initial_data(),
    )
    return EtxDeployment(config)


def _baseline_config(seed: int, num_app_servers: int, num_db_servers: int,
                     workload: BankWorkload, db_timing: Optional[DatabaseTiming],
                     coordinator_log_latency: float = 12.5) -> BaselineConfig:
    return BaselineConfig(
        num_app_servers=num_app_servers,
        num_db_servers=num_db_servers,
        seed=seed,
        db_timing=db_timing or paper_database_timing(),
        coordinator_log_latency=coordinator_log_latency,
        business_logic=workload.business_logic,
        initial_data=workload.initial_data(),
    )


def build_baseline_deployment(seed: int = 0, num_db_servers: int = 1,
                              workload: Optional[BankWorkload] = None,
                              db_timing: Optional[DatabaseTiming] = None) -> BaselineDeployment:
    """The unreliable baseline stack (Figure 7a)."""
    workload = workload or default_workload()
    return BaselineDeployment(_baseline_config(seed, 1, num_db_servers, workload, db_timing))


def build_twopc_deployment(seed: int = 0, num_db_servers: int = 1,
                           workload: Optional[BankWorkload] = None,
                           db_timing: Optional[DatabaseTiming] = None,
                           log_latency: float = 12.5) -> TwoPCDeployment:
    """The presumed-nothing 2PC stack (Figure 7b)."""
    workload = workload or default_workload()
    return TwoPCDeployment(_baseline_config(seed, 1, num_db_servers, workload, db_timing,
                                            coordinator_log_latency=log_latency))


def build_primary_backup_deployment(seed: int = 0, num_db_servers: int = 1,
                                    workload: Optional[BankWorkload] = None,
                                    db_timing: Optional[DatabaseTiming] = None,
                                    failure_detector_override: Any = None
                                    ) -> PrimaryBackupDeployment:
    """The primary-backup stack (Figure 7c)."""
    workload = workload or default_workload()
    config = _baseline_config(seed, 2, num_db_servers, workload, db_timing)
    return PrimaryBackupDeployment(config,
                                   failure_detector_override=failure_detector_override)
