"""Calibration data: the paper's measured numbers and our standard scenarios.

``PAPER_FIGURE8`` is the table of Appendix 3 (Figure 8) verbatim, in
milliseconds.  The deployment helpers below build the protocol stacks through
the unified scenario API (:mod:`repro.api`) with identical database timing and
network topology, so that the *only* differences between the measured columns
are the protocols themselves -- exactly the paper's methodology (same SQL
work, same machines, same network).
"""

from __future__ import annotations

from typing import Any, Optional

from repro import api
from repro.core.timing import DatabaseTiming, ProtocolTiming
from repro.core.types import Request
from repro.workload.bank import BankWorkload

PAPER_FIGURE8: dict[str, dict[str, float]] = {
    "baseline": {"start": 3.4, "end": 3.4, "commit": 18.6, "prepare": 0.0, "SQL": 187.0,
                 "log-start": 0.0, "log-outcome": 0.0, "other": 5.0, "total": 217.4},
    "AR": {"start": 3.5, "end": 3.5, "commit": 18.8, "prepare": 19.0, "SQL": 193.2,
           "log-start": 4.5, "log-outcome": 4.7, "other": 5.1, "total": 252.3},
    "2PC": {"start": 3.5, "end": 3.4, "commit": 17.5, "prepare": 21.2, "SQL": 190.6,
            "log-start": 12.5, "log-outcome": 12.7, "other": 5.1, "total": 266.5},
}
"""Figure 8 of the paper, milliseconds, HP C180 + Orbix 2.3 + Oracle 8.0.3."""

PAPER_OVERHEAD = {"baseline": 0.0, "AR": 0.16, "2PC": 0.23}
"""The paper's headline 'cost of reliability' percentages."""


def paper_database_timing() -> DatabaseTiming:
    """Database timing calibrated to the paper's baseline column."""
    return DatabaseTiming(start=3.4, sql=187.0, end=3.4, prepare_cpu=6.5,
                          commit_cpu=6.1, abort_cpu=1.0, forced_write=12.5)


def default_workload() -> BankWorkload:
    """The measured workload: update a bank account on a single database."""
    return api.bind_workload("bank").instance


def standard_request(workload: Optional[BankWorkload] = None) -> Request:
    """The repeated transaction of the measurement: a small debit."""
    workload = workload or default_workload()
    return workload.debit(0, 10)


def paper_scenario(protocol: str, seed: int = 0, num_app_servers: int = 0,
                   num_db_servers: int = 1, **fields: Any) -> api.Scenario:
    """A paper-calibrated scenario for ``protocol`` (bank workload, Figure 8
    timing); ``num_app_servers=0`` keeps the protocol's standard tier size."""
    return api.Scenario(protocol=protocol, seed=seed,
                        num_app_servers=num_app_servers,
                        num_db_servers=num_db_servers,
                        workload="bank", timing="paper", **fields)


def build_ar_deployment(seed: int = 0, num_app_servers: int = 3, num_db_servers: int = 1,
                        workload: Optional[BankWorkload] = None,
                        db_timing: Optional[DatabaseTiming] = None,
                        register_mode: str = "consensus",
                        protocol_timing: Optional[ProtocolTiming] = None
                        ) -> api.RunningSystem:
    """The asynchronous-replication (e-Transaction) stack, paper-calibrated."""
    scenario = paper_scenario("etx", seed=seed, num_app_servers=num_app_servers,
                              num_db_servers=num_db_servers,
                              register_mode=register_mode)
    return api.build(scenario, workload=workload, db_timing=db_timing,
                     protocol_timing=protocol_timing)


def build_baseline_deployment(seed: int = 0, num_db_servers: int = 1,
                              workload: Optional[BankWorkload] = None,
                              db_timing: Optional[DatabaseTiming] = None
                              ) -> api.RunningSystem:
    """The unreliable baseline stack (Figure 7a)."""
    scenario = paper_scenario("baseline", seed=seed, num_db_servers=num_db_servers)
    return api.build(scenario, workload=workload, db_timing=db_timing)


def build_twopc_deployment(seed: int = 0, num_db_servers: int = 1,
                           workload: Optional[BankWorkload] = None,
                           db_timing: Optional[DatabaseTiming] = None,
                           log_latency: float = 12.5) -> api.RunningSystem:
    """The presumed-nothing 2PC stack (Figure 7b)."""
    scenario = paper_scenario("2pc", seed=seed, num_db_servers=num_db_servers,
                              coordinator_log_latency=log_latency)
    return api.build(scenario, workload=workload, db_timing=db_timing)


def build_primary_backup_deployment(seed: int = 0, num_db_servers: int = 1,
                                    workload: Optional[BankWorkload] = None,
                                    db_timing: Optional[DatabaseTiming] = None,
                                    failure_detector_override: Any = None
                                    ) -> api.RunningSystem:
    """The primary-backup stack (Figure 7c)."""
    scenario = paper_scenario("pb", seed=seed, num_db_servers=num_db_servers)
    system = api.build(scenario, workload=workload, db_timing=db_timing)
    if failure_detector_override is not None:
        # Reproduce the paper's warning: give the backup an unreliable
        # detector instead of the perfect one.
        system.deployment.backup.failure_detector = failure_detector_override
    return system
