"""Experiment E11 -- elastic resharding under live traffic.

The tentpole question: can the data tier grow online -- ``d=4`` to ``d=8``
while an open-loop workload keeps arriving -- without the client tier
noticing?  Two measurements answer it:

* **Throughput flatness.**  The same scenario runs twice with the same seed:
  once with a ``reshard@T:d4->d8`` fault and once without.  Both runs stream
  their delivery instants off the trace bus into fixed-width windows; the
  report carries the window series and the overall throughput ratio.  The
  migration window itself is taken from the coordinator's ``reshard``
  begin/commit trace events, so "the dip" is attributable, not anecdotal.

* **Window-targeted faults.**  A fault campaign aims crash / transient-crash /
  partition atoms (the :mod:`repro.campaign.adversarial` assumption envelope)
  at the *reconfiguration window* recorded by a probe run -- the instants the
  :class:`~repro.campaign.windows.FaultWindowObserver` tags with the
  ``resharding`` phase.  Unlike :func:`repro.campaign.runner.run_campaign`,
  the reshard fault itself is part of every evaluated schedule: the campaign
  perturbs the migration, it does not replace it.  e-Transactions must come
  out spec-clean on every run.
"""

from __future__ import annotations

import random
import time
import zlib
from dataclasses import dataclass, field
from typing import Optional, Union

from repro import api
from repro.api.runner import load_generator_for
from repro.api.scenario import Scenario
from repro.api.sweep import map_jobs
from repro.campaign.adversarial import AdversarialFaultPlan, FaultAtom, atoms_to_specs
from repro.campaign.windows import PHASE_RESHARDING, FaultWindowObserver
from repro.core.types import reset_request_counter

# Three application servers absorb ~7.5 committed bank transactions per
# virtual second with the default engine timing, so 6/s offers ~80%
# utilisation -- loaded enough that a stalled migration would show up as a
# throughput hole, sustainable enough that the flat run has no backlog of
# its own.  The reshard fires mid-stream with live traffic on both sides.
DEFAULT_RESHARD_DSN = ("etx://a3.d4.c8?rate=6&arrival=poisson&seed=7"
                       "&workload=bank&placement=hash"
                       "&faults=reshard@5000:d4->d8")


@dataclass
class ThroughputWindow:
    """Delivered-request counts of one fixed-width window, both runs."""

    start: float                # virtual ms
    resharded: int
    flat: int


@dataclass
class ReshardReport:
    """Everything the online-growth measurement produced."""

    dsn: str
    flat_dsn: str
    requested: int
    delivered: int
    undelivered: int
    throughput: float           # resharded run, req/s of virtual time
    flat_throughput: float      # fault-free twin, req/s of virtual time
    p95: float
    flat_p95: float
    window_ms: float
    windows: list[ThroughputWindow] = field(default_factory=list)
    reshard_begin: float = 0.0  # coordinator trace instants (virtual ms)
    reshard_commit: float = 0.0
    final_epoch: int = 0
    final_shards: list[str] = field(default_factory=list)
    deferred_requests: int = 0  # claims parked while their keys migrated
    epoch_retries: int = 0      # claims re-routed against a newer epoch
    saturation: dict[str, int] = field(default_factory=dict)
    spec_ok: bool = False
    spec_summary: str = ""
    wall_seconds: float = 0.0
    campaign: Optional["ReshardCampaignReport"] = None

    @property
    def throughput_ratio(self) -> float:
        """Resharded throughput over the fault-free twin's."""
        if self.flat_throughput <= 0:
            return 0.0
        return self.throughput / self.flat_throughput

    @property
    def ok(self) -> bool:
        """Grew online, delivered everything, spec-clean, throughput flat."""
        grown = self.final_epoch >= 1 and self.reshard_commit > self.reshard_begin
        flat = self.throughput_ratio >= 0.85
        campaign_ok = self.campaign is None or self.campaign.clean
        return (self.spec_ok and self.undelivered == 0 and grown and flat
                and campaign_ok)

    def to_json(self) -> dict:
        """Machine-readable BENCH payload (written to benchmarks/out)."""
        payload = {
            "dsn": self.dsn,
            "flat_dsn": self.flat_dsn,
            "requested": self.requested,
            "delivered": self.delivered,
            "undelivered": self.undelivered,
            "throughput_per_s": round(self.throughput, 2),
            "flat_throughput_per_s": round(self.flat_throughput, 2),
            "throughput_ratio": round(self.throughput_ratio, 3),
            "p95_ms": round(self.p95, 2),
            "flat_p95_ms": round(self.flat_p95, 2),
            "reshard_begin_ms": round(self.reshard_begin, 1),
            "reshard_commit_ms": round(self.reshard_commit, 1),
            "reshard_window_ms": round(self.reshard_commit - self.reshard_begin, 1),
            "final_epoch": self.final_epoch,
            "final_shards": list(self.final_shards),
            "deferred_requests": self.deferred_requests,
            "epoch_retries": self.epoch_retries,
            "saturation": dict(self.saturation),
            "spec_ok": self.spec_ok,
            "wall_seconds": round(self.wall_seconds, 3),
            "window_ms": self.window_ms,
            "windows": [{"t_ms": round(w.start, 1), "resharded": w.resharded,
                         "flat": w.flat} for w in self.windows],
        }
        if self.campaign is not None:
            payload["campaign"] = self.campaign.to_json()
        return payload

    def summary(self) -> str:
        """Compact multi-line report (what the CLI prints)."""
        lines = [
            f"reshard    {self.dsn}",
            f"growth     d={len(self.final_shards)} at epoch {self.final_epoch}"
            f"   window {self.reshard_begin:.0f}..{self.reshard_commit:.0f} ms"
            f" ({self.reshard_commit - self.reshard_begin:.0f} ms)",
            f"requests   {self.delivered}/{self.requested} delivered"
            f"   deferred {self.deferred_requests}"
            f"   epoch retries {self.epoch_retries}",
            f"throughput {self.throughput:.2f} req/s vs flat "
            f"{self.flat_throughput:.2f} req/s"
            f"   ratio {self.throughput_ratio:.2f}"
            f"   p95 {self.p95:.0f} ms vs {self.flat_p95:.0f} ms",
            f"spec       {self.spec_summary}",
        ]
        if self.saturation.get("shed_messages"):
            lines.append(f"saturation {self.saturation['shed_messages']} "
                         f"message(s) shed   peak backlog "
                         f"{self.saturation['mailbox_peak']}")
        if self.campaign is not None:
            lines.append("")
            lines.append(self.campaign.summary())
        return "\n".join(lines)


def _delivery_times(system) -> list[float]:
    """Subscribe delivery instants off the trace bus; returns the live list."""
    times: list[float] = []
    system.trace.subscribe("client_deliver",
                           lambda event: times.append(event.time))
    return times


def run(dsn: Union[str, Scenario] = DEFAULT_RESHARD_DSN,
        requests: int = 15, window_ms: float = 2_000.0,
        settle: float = 5_000.0) -> ReshardReport:
    """Measure online growth: the scenario's reshard vs its fault-free twin.

    ``requests`` arrivals are offered per client (the scenario must be an
    open loop so the offered load is independent of what the system does).
    The flat twin is the same scenario with the reshard faults removed --
    same seed, same arrival process, same workload stream.
    """
    scenario = Scenario.from_dsn(dsn) if isinstance(dsn, str) else dsn
    reshards = [f for f in scenario.faults if f.kind == "reshard"]
    if not reshards:
        raise ValueError("the scenario needs a reshard@T:dX->dY fault "
                         "(that is the experiment)")
    if scenario.rate <= 0:
        raise ValueError("online growth needs an open-loop scenario "
                         "(rate > 0): a closed loop adapts its offered load "
                         "to the migration instead of stressing it")
    flat = scenario.with_(faults=tuple(f for f in scenario.faults
                                       if f.kind != "reshard"))

    wall_start = time.perf_counter()

    def one(which: Scenario):
        reset_request_counter()
        system = api.build(which)
        deliveries = _delivery_times(system)
        generator = load_generator_for(which)
        stats = generator.run(system, requests)
        if settle > 0:
            system.run(until=system.sim.now + settle)
        report = system.check_spec(check_termination=stats.undelivered == 0)
        return system, stats, report, deliveries

    system, stats, spec, deliveries = one(scenario)
    flat_system, flat_stats, flat_spec, flat_deliveries = one(flat)
    wall = time.perf_counter() - wall_start

    begin = commit = 0.0
    final_epoch = 0
    final_shards = list(scenario.sharding.shards)
    for event in system.trace.select("reshard"):
        if event.get("stage") == "begin":
            begin = event.time
        elif event.get("stage") == "commit":
            commit = event.time
            final_epoch = event.get("epoch")
            final_shards = list(event.get("shards"))

    horizon = max(deliveries + flat_deliveries, default=0.0)
    windows = []
    start = 0.0
    while start < horizon:
        end = start + window_ms
        windows.append(ThroughputWindow(
            start=start,
            resharded=sum(1 for t in deliveries if start <= t < end),
            flat=sum(1 for t in flat_deliveries if start <= t < end)))
        start = end

    return ReshardReport(
        dsn=scenario.to_dsn(),
        flat_dsn=flat.to_dsn(),
        requested=requests * scenario.num_clients,
        delivered=stats.count,
        undelivered=stats.undelivered,
        throughput=stats.throughput,
        flat_throughput=flat_stats.throughput,
        p95=stats.p95,
        flat_p95=flat_stats.p95,
        window_ms=window_ms,
        windows=windows,
        reshard_begin=begin,
        reshard_commit=commit,
        final_epoch=final_epoch,
        final_shards=final_shards,
        deferred_requests=len(system.trace.select("epoch_defer")),
        epoch_retries=len(system.trace.select("epoch_retry")),
        saturation=stats.saturation,
        spec_ok=spec.ok and flat_spec.ok,
        spec_summary=spec.summary(),
        wall_seconds=wall,
    )


# --------------------------------------------------- reconfiguration campaign


@dataclass(frozen=True)
class _ReshardEvalJob:
    """Picklable unit of campaign work: the reshard plus one fault schedule."""

    scenario: Scenario
    requests: int
    horizon: float
    settle: float


def _evaluate_reshard_schedule(job: _ReshardEvalJob) -> tuple[str, tuple[str, ...]]:
    """Run one schedule; returns ``(dsn, violations)`` (module-level: picklable).

    Termination checking is forced on, exactly as in the main campaign
    runner: every schedule stays inside the assumption envelope (transient
    database crashes, healing partitions, a minority of permanent
    application-server crashes), under which a migration that wedges the
    protocol *is* a specification violation.
    """
    reset_request_counter()
    system = api.build(job.scenario)
    generator = load_generator_for(job.scenario,
                                   horizon_per_request=job.horizon)
    generator.run(system, job.requests)
    if job.settle > 0:
        system.run(until=system.sim.now + job.settle)
    report = system.check_spec(check_termination=True)
    return job.scenario.to_dsn(), tuple(str(v) for v in report.violations)


@dataclass
class ReshardCampaignReport:
    """Outcome of the reconfiguration-window fault campaign."""

    dsn: str
    seed: int
    runs: int = 0
    windows: int = 0            # resharding-phase anchors from the probe run
    violating: list[tuple[str, tuple[str, ...]]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No schedule aimed at the migration window broke the spec."""
        return not self.violating

    def to_json(self) -> dict:
        return {
            "dsn": self.dsn,
            "seed": self.seed,
            "runs": self.runs,
            "windows": self.windows,
            "clean": self.clean,
            "violating": [{"dsn": dsn, "violations": list(violations)}
                          for dsn, violations in self.violating],
        }

    def summary(self) -> str:
        lines = [
            f"campaign   {self.runs} fault schedules aimed at "
            f"{self.windows} reconfiguration window(s), master seed {self.seed}",
        ]
        if self.violating:
            lines.append(f"violations {len(self.violating)} schedule(s) broke "
                         "the specification:")
            for dsn, violations in self.violating:
                lines.append(f"  {dsn}")
                for violation in violations:
                    lines.append(f"    {violation}")
        else:
            lines.append("violations none: every migration survived its "
                         "window's faults spec-clean")
        return "\n".join(lines)


def run_campaign(dsn: Union[str, Scenario] = DEFAULT_RESHARD_DSN,
                 runs: int = 200, seed: int = 0, requests: int = 4,
                 horizon: float = 240_000.0, settle: float = 20_000.0,
                 workers: Optional[int] = 1) -> ReshardCampaignReport:
    """Aim ``runs`` window-targeted fault schedules at the migration.

    A probe run (the scenario *with* its reshard, no other faults) records
    the ``resharding``-phase transitions -- the begin/commit instants of each
    epoch change; those anchor an :class:`AdversarialFaultPlan` whose jitter
    is widened to cover the whole migration window, so sampled faults land
    before, inside and just after the reconfiguration.  Every evaluated
    scenario keeps the reshard fault and adds the sampled atoms on top.
    Deterministic for a given ``(scenario, runs, seed)``, including under
    ``workers > 1``.
    """
    scenario = Scenario.from_dsn(dsn) if isinstance(dsn, str) else dsn
    reshard_specs = tuple(f for f in scenario.faults if f.kind == "reshard")
    if not reshard_specs:
        raise ValueError("the scenario needs a reshard@T:dX->dY fault "
                         "(the campaign perturbs it, it cannot invent one)")
    base = scenario.with_(faults=reshard_specs)

    reset_request_counter()
    probe = api.build(base)
    observer = FaultWindowObserver.attach(probe.trace)
    generator = load_generator_for(base, horizon_per_request=horizon)
    generator.run(probe, requests)
    probe.run(until=probe.sim.now + settle)
    observer.detach()
    # Epoch 0's init fires at t=0 with no migration in flight; the begin and
    # commit instants of each actual epoch change are the windows that matter.
    anchors = [t for t in observer.windows(phase=PHASE_RESHARDING) if t.time > 0]
    span = (max(t.time for t in anchors) - min(t.time for t in anchors)
            if len(anchors) >= 2 else 0.0)

    plan = AdversarialFaultPlan.for_scenario(
        base.with_(faults=()),
        anchors=anchors,
        # Half the window span of jitter around each begin/commit anchor
        # covers the whole migration (plus shoulders); the standby servers
        # are fair targets too -- a fresh shard crashing mid-install is
        # exactly the case the idempotent MIGRATE replay exists for.
        jitter=max(12.0, span / 2),
        db_servers=tuple(f"d{i + 1}" for i in range(scenario.max_db_servers)),
    )
    report = ReshardCampaignReport(dsn=base.to_dsn(), seed=seed,
                                   windows=len(anchors))
    rng = random.Random(zlib.crc32(f"reshard-campaign:{base.to_dsn()}:{seed}"
                                   .encode()))

    def job_for(atoms: tuple[FaultAtom, ...]) -> _ReshardEvalJob:
        faults = tuple(sorted(reshard_specs + atoms_to_specs(atoms),
                              key=lambda s: (s.time, s.kind, s.target)))
        return _ReshardEvalJob(scenario=base.with_(faults=faults),
                               requests=requests, horizon=horizon,
                               settle=settle)

    jobs = [job_for(plan.sample(rng)) for _ in range(runs)]
    for dsn_out, violations in map_jobs(_evaluate_reshard_schedule, jobs,
                                        workers=workers):
        report.runs += 1
        if violations:
            report.violating.append((dsn_out, violations))
    return report
