"""Strict exclusive lock manager for the transactional store.

The paper points out that a database server which voted *yes* for a result
holds locks on the corresponding resources until the result is committed or
aborted -- that is exactly why the non-blocking termination property (T.2)
matters.  The lock manager makes that behaviour concrete: locks are acquired
as a transaction writes, are *retained* while the transaction is prepared
(in doubt), and are only released by commit or abort.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional

TransactionId = Hashable


class LockConflict(Exception):
    """A lock could not be granted because another transaction holds it."""

    def __init__(self, key: str, holder: TransactionId, requester: TransactionId):
        super().__init__(f"lock on {key!r} held by {holder!r}, requested by {requester!r}")
        self.key = key
        self.holder = holder
        self.requester = requester


class LockManager:
    """Per-key exclusive locks with no blocking (conflicts are reported)."""

    def __init__(self) -> None:
        self._holders: dict[str, TransactionId] = {}
        self._held_by_txn: dict[TransactionId, set[str]] = {}
        self.conflicts = 0

    # ---------------------------------------------------------------- acquire

    def acquire(self, transaction_id: TransactionId, key: str) -> bool:
        """Grant the lock on ``key`` to ``transaction_id`` if possible.

        Returns ``True`` if the lock is granted (or already held by the same
        transaction) and ``False`` on conflict.
        """
        holder = self._holders.get(key)
        if holder is None:
            self._holders[key] = transaction_id
            self._held_by_txn.setdefault(transaction_id, set()).add(key)
            return True
        if holder == transaction_id:
            return True
        self.conflicts += 1
        return False

    def acquire_or_raise(self, transaction_id: TransactionId, key: str) -> None:
        """Like :meth:`acquire` but raises :class:`LockConflict` on conflict."""
        if not self.acquire(transaction_id, key):
            raise LockConflict(key, self._holders[key], transaction_id)

    # ---------------------------------------------------------------- release

    def release_all(self, transaction_id: TransactionId) -> int:
        """Release every lock held by ``transaction_id``; returns the count."""
        keys = self._held_by_txn.pop(transaction_id, set())
        for key in keys:
            if self._holders.get(key) == transaction_id:
                del self._holders[key]
        return len(keys)

    # ------------------------------------------------------------------ query

    def holder(self, key: str) -> Optional[TransactionId]:
        """The transaction currently holding ``key``, or ``None``."""
        return self._holders.get(key)

    def locks_held(self, transaction_id: TransactionId) -> set[str]:
        """Keys locked by ``transaction_id``."""
        return set(self._held_by_txn.get(transaction_id, set()))

    def locked_keys(self) -> set[str]:
        """All currently locked keys."""
        return set(self._holders)

    def clear(self) -> None:
        """Drop every lock (volatile state lost on crash)."""
        self._holders.clear()
        self._held_by_txn.clear()

    def reinstall(self, transaction_id: TransactionId, keys: Any) -> None:
        """Re-acquire ``keys`` for an in-doubt transaction during recovery."""
        for key in keys:
            self._holders[key] = transaction_id
            self._held_by_txn.setdefault(transaction_id, set()).add(key)
