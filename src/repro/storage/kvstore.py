"""Transactional key-value store -- the database engine behind each database server.

The engine provides exactly the surface the paper's model needs from a
third-party database:

* transient data manipulation on behalf of the business logic
  (:meth:`TransactionalKVStore.read` / :meth:`write` inside a transaction),
* the XA-style commitment surface: :meth:`prepare` (the paper's ``vote()``)
  and :meth:`commit` / :meth:`abort` (the paper's ``decide()``),
* crash/recovery with a write-ahead log: committed data survives, in-doubt
  (prepared) transactions are restored *with their locks*, and active
  (unprepared) transactions evaporate.

Durability and I/O cost live in :class:`~repro.storage.wal.WriteAheadLog` /
:class:`~repro.storage.stable.StableStorage`; every mutating call returns the
I/O cost it incurred so the hosting database-server process can charge that
time to the simulation clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional

from repro.storage.locks import LockConflict, LockManager
from repro.storage.stable import StableStorage
from repro.storage.wal import WriteAheadLog

TransactionId = Hashable

ACTIVE = "active"
PREPARED = "prepared"
COMMITTED = "committed"
ABORTED = "aborted"


class TransactionError(Exception):
    """An operation was applied to a transaction in an incompatible state."""


class ShardOwnershipError(TransactionError):
    """A transaction touched a key this shard does not own.

    Raised when the store was built with an ownership predicate (a partitioned
    deployment) and the business logic reads or writes a key that belongs to
    another shard -- always a routing bug (the request's participant set did
    not match the keys it touches), never a legitimate protocol state.
    """

    def __init__(self, shard: str, key: str):
        super().__init__(f"shard {shard!r} does not own key {key!r}")
        self.shard = shard
        self.key = key


@dataclass
class Transaction:
    """In-memory descriptor of one transaction."""

    transaction_id: TransactionId
    status: str = ACTIVE
    writes: dict[str, Any] = field(default_factory=dict)
    reads: set[str] = field(default_factory=set)


class TransactionalKVStore:
    """A crash-recoverable key-value store with two-phase commitment."""

    def __init__(self, name: str, storage: Optional[StableStorage] = None,
                 initial_data: Optional[dict[str, Any]] = None,
                 owns_key: Optional[Callable[[str], bool]] = None):
        self.name = name
        self.storage = storage if storage is not None else StableStorage(f"{name}.disk")
        self.wal = WriteAheadLog(self.storage)
        self.locks = LockManager()
        self._owns_key = owns_key
        self._committed: dict[str, Any] = dict(initial_data or {})
        self._transactions: dict[TransactionId, Transaction] = {}
        if initial_data:
            # Persist the initial data so recovery can rebuild it.
            self.storage.put("__initial__", dict(initial_data), forced=False)

    # --------------------------------------------------------------- lifecycle

    def begin(self, transaction_id: TransactionId) -> Transaction:
        """Start a transaction; re-beginning an active one is idempotent."""
        existing = self._transactions.get(transaction_id)
        if existing is not None:
            if existing.status in (ACTIVE, PREPARED):
                return existing
            raise TransactionError(
                f"transaction {transaction_id!r} already terminated ({existing.status})"
            )
        transaction = Transaction(transaction_id)
        self._transactions[transaction_id] = transaction
        return transaction

    def transaction(self, transaction_id: TransactionId) -> Optional[Transaction]:
        """The descriptor for ``transaction_id``, or ``None``."""
        return self._transactions.get(transaction_id)

    def status(self, transaction_id: TransactionId) -> Optional[str]:
        """Status string of the transaction, or ``None`` if unknown."""
        transaction = self._transactions.get(transaction_id)
        return None if transaction is None else transaction.status

    # -------------------------------------------------------- data manipulation

    def owns(self, key: str) -> bool:
        """Whether this store is responsible for ``key`` (always true when the
        deployment is not partitioned)."""
        return self._owns_key is None or self._owns_key(key)

    def _assert_owned(self, key: str) -> None:
        if not self.owns(key):
            raise ShardOwnershipError(self.name, key)

    def read(self, transaction_id: TransactionId, key: str, default: Any = None) -> Any:
        """Read ``key`` within the transaction (sees the transaction's own writes)."""
        self._assert_owned(key)
        transaction = self._require(transaction_id, ACTIVE, PREPARED)
        transaction.reads.add(key)
        if key in transaction.writes:
            return transaction.writes[key]
        return self._committed.get(key, default)

    def write(self, transaction_id: TransactionId, key: str, value: Any) -> None:
        """Write ``key`` within the transaction; acquires the exclusive lock."""
        self._assert_owned(key)
        transaction = self._require(transaction_id, ACTIVE)
        if not self.locks.acquire(transaction_id, key):
            raise LockConflict(key, self.locks.holder(key), transaction_id)
        transaction.writes[key] = value

    def get_committed(self, key: str, default: Any = None) -> Any:
        """Read the committed (durable) value of ``key`` outside any transaction."""
        return self._committed.get(key, default)

    def committed_snapshot(self) -> dict[str, Any]:
        """Copy of the whole committed state (tests and invariant checks)."""
        return dict(self._committed)

    # -------------------------------------------------------------- migration

    def migrate_install(self, epoch: int, data: dict[str, Any]) -> float:
        """Durably install committed values migrating onto this shard.

        Part of online resharding: the new owner accepts the moving keys'
        committed values *outside* any transaction (the reconfiguration
        window defers transactions touching them).  The install is logged, so
        it survives a crash and replays in order against later commits.
        Re-installing the same epoch's data is harmless (same values).
        """
        cost = self.wal.append_migrate_in(epoch, data, forced=True)
        self._committed.update(data)
        return cost

    def migrate_release(self, epoch: int, keys: tuple[str, ...]) -> float:
        """Durably drop committed keys that migrated off this shard."""
        cost = self.wal.append_migrate_out(epoch, tuple(keys), forced=True)
        for key in keys:
            self._committed.pop(key, None)
        return cost

    # ------------------------------------------------------------- commitment

    def prepare(self, transaction_id: TransactionId) -> tuple[str, float]:
        """Vote on the transaction: returns ``("yes"|"no", io_cost)``.

        A *yes* vote forces the transaction's write set to the log and keeps
        its locks; the transaction becomes in-doubt until a decision arrives.
        An unknown or already-aborted transaction votes *no*.
        """
        transaction = self._transactions.get(transaction_id)
        if transaction is None or transaction.status == ABORTED:
            return "no", 0.0
        if transaction.status == PREPARED:
            return "yes", 0.0
        if transaction.status == COMMITTED:
            raise TransactionError(f"cannot prepare committed transaction {transaction_id!r}")
        cost = self.wal.append_prepare(transaction_id, transaction.writes, forced=True)
        transaction.status = PREPARED
        return "yes", cost

    def commit(self, transaction_id: TransactionId, allow_one_phase: bool = False) -> float:
        """Apply the transaction's writes durably; returns the I/O cost.

        ``allow_one_phase`` permits committing straight from the active state
        (used by the unreliable baseline protocol, which skips the vote).
        """
        transaction = self._transactions.get(transaction_id)
        if transaction is None:
            raise TransactionError(f"cannot commit unknown transaction {transaction_id!r}")
        if transaction.status == COMMITTED:
            return 0.0
        if transaction.status == ABORTED:
            raise TransactionError(f"cannot commit aborted transaction {transaction_id!r}")
        if transaction.status == ACTIVE and not allow_one_phase:
            raise TransactionError(
                f"transaction {transaction_id!r} must be prepared before commit"
            )
        writes = transaction.writes if transaction.status == ACTIVE else None
        cost = self.wal.append_commit(transaction_id, writes, forced=True)
        self._committed.update(transaction.writes)
        transaction.status = COMMITTED
        self.locks.release_all(transaction_id)
        return cost

    def abort(self, transaction_id: TransactionId) -> float:
        """Discard the transaction's writes and release its locks.

        Aborting an unknown transaction installs an *aborted tombstone*
        (presumed abort): a later attempt to begin or execute work under the
        same identifier is refused, which prevents a slow business-logic call
        from resurrecting a transaction that a recovery path already aborted.
        """
        transaction = self._transactions.get(transaction_id)
        if transaction is None:
            self._transactions[transaction_id] = Transaction(transaction_id, status=ABORTED)
            return 0.0
        if transaction.status == COMMITTED:
            raise TransactionError(f"cannot abort committed transaction {transaction_id!r}")
        if transaction.status == ABORTED:
            return 0.0
        cost = self.wal.append_abort(transaction_id, forced=False)
        transaction.status = ABORTED
        transaction.writes.clear()
        self.locks.release_all(transaction_id)
        return cost

    # ----------------------------------------------------------- crash recovery

    def crash(self) -> None:
        """Lose all volatile state (active transactions, lock table, caches)."""
        self._transactions.clear()
        self.locks.clear()
        self._committed.clear()

    def recover(self) -> list[TransactionId]:
        """Rebuild state from the write-ahead log.

        Returns the list of in-doubt transaction identifiers (prepared but not
        yet committed or aborted); their locks are re-installed so the data
        they touched stays inaccessible until a decision arrives -- the
        situation property T.2 is about.
        """
        self._committed = dict(self.storage.get("__initial__", {}))
        replay = self.wal.replay()
        self._committed.update(replay.committed_state)
        # Migrated-away keys may predate the log (initial data) or have been
        # committed by transactions older than the migration; either way they
        # left this shard, so recovery must not resurrect them.
        for key in replay.released_keys:
            self._committed.pop(key, None)
        self._transactions = {}
        self.locks.clear()
        for transaction_id in replay.committed_transactions:
            self._transactions[transaction_id] = Transaction(transaction_id, status=COMMITTED)
        for transaction_id in replay.aborted_transactions:
            self._transactions[transaction_id] = Transaction(transaction_id, status=ABORTED)
        in_doubt = []
        for transaction_id, writes in replay.in_doubt.items():
            transaction = Transaction(transaction_id, status=PREPARED, writes=dict(writes))
            self._transactions[transaction_id] = transaction
            self.locks.reinstall(transaction_id, writes.keys())
            in_doubt.append(transaction_id)
        return in_doubt

    # ----------------------------------------------------------------- helpers

    def in_doubt(self) -> list[TransactionId]:
        """Transactions currently prepared but undecided."""
        return [t.transaction_id for t in self._transactions.values() if t.status == PREPARED]

    def _require(self, transaction_id: TransactionId, *statuses: str) -> Transaction:
        transaction = self._transactions.get(transaction_id)
        if transaction is None:
            raise TransactionError(f"unknown transaction {transaction_id!r}")
        if transaction.status not in statuses:
            raise TransactionError(
                f"transaction {transaction_id!r} is {transaction.status}, expected {statuses}"
            )
        return transaction
