"""Stable storage with explicit I/O cost accounting.

The paper's performance argument hinges on disk behaviour: the 2PC coordinator
performs two *forced* (synchronous) log writes per transaction (~12.5 ms each
in the paper's environment), while the asynchronous-replication protocol
performs none.  :class:`StableStorage` models a durable key/value device whose
write operations report their latency cost so the calling process can charge
that time to the simulation clock, and whose contents survive process crashes.

The storage object itself never advances the clock -- callers do, typically
with ``yield process.sleep(cost)`` -- which keeps the substrate usable from
both protocol code and plain unit tests.
"""

from __future__ import annotations

from typing import Any, Iterator


class StorageStats:
    """Counters of I/O operations performed on one storage device."""

    def __init__(self) -> None:
        self.forced_writes = 0
        self.lazy_writes = 0
        self.reads = 0
        self.total_write_cost = 0.0

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view (for reports and tests)."""
        return {
            "forced_writes": self.forced_writes,
            "lazy_writes": self.lazy_writes,
            "reads": self.reads,
            "total_write_cost": self.total_write_cost,
        }


class StableStorage:
    """A durable key/value device with forced and lazy writes.

    Parameters
    ----------
    name:
        Device name, used in traces (e.g. ``"oracle-1.disk"``).
    forced_write_latency:
        Cost (virtual milliseconds) of a synchronous write that must reach the
        platter before the call returns -- the paper's "eager IO".
    lazy_write_latency:
        Cost of a buffered write (defaults to 0: it only hits the OS cache).
    """

    def __init__(self, name: str, forced_write_latency: float = 12.5,
                 lazy_write_latency: float = 0.0):
        if forced_write_latency < 0 or lazy_write_latency < 0:
            raise ValueError("write latencies must be non-negative")
        self.name = name
        self.forced_write_latency = forced_write_latency
        self.lazy_write_latency = lazy_write_latency
        self.stats = StorageStats()
        self._data: dict[str, Any] = {}

    # ------------------------------------------------------------------ write

    def put(self, key: str, value: Any, forced: bool = True) -> float:
        """Durably store ``value`` under ``key`` and return the I/O cost."""
        self._data[key] = value
        return self._account(forced)

    def append(self, key: str, entry: Any, forced: bool = True) -> float:
        """Append ``entry`` to the list stored under ``key`` (creating it)."""
        self._data.setdefault(key, []).append(entry)
        return self._account(forced)

    def delete(self, key: str, forced: bool = False) -> float:
        """Remove ``key`` if present and return the I/O cost."""
        self._data.pop(key, None)
        return self._account(forced)

    def _account(self, forced: bool) -> float:
        if forced:
            self.stats.forced_writes += 1
            cost = self.forced_write_latency
        else:
            self.stats.lazy_writes += 1
            cost = self.lazy_write_latency
        self.stats.total_write_cost += cost
        return cost

    # ------------------------------------------------------------------- read

    def get(self, key: str, default: Any = None) -> Any:
        """Read the value stored under ``key`` (no cost model for reads)."""
        self.stats.reads += 1
        return self._data.get(key, default)

    def contains(self, key: str) -> bool:
        """Whether ``key`` is present."""
        return key in self._data

    def keys(self) -> Iterator[str]:
        """Iterate over stored keys."""
        return iter(list(self._data))

    def __len__(self) -> int:
        return len(self._data)

    # -------------------------------------------------------------- lifecycle

    def wipe(self) -> None:
        """Erase the device (used by tests; *not* called on crash -- crashes
        have no impact on stable storage, per the system model)."""
        self._data.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StableStorage {self.name} entries={len(self._data)}>"
