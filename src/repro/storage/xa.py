"""XA-style resource-manager facade.

The paper views each database server as an XA engine and only uses the
commitment surface of XA: ``prepare()`` (exposed to the protocol as ``vote()``)
and ``commit()``/``rollback()`` (exposed as ``decide()``).  This module wraps
the :class:`~repro.storage.kvstore.TransactionalKVStore` behind exactly that
surface, including the ``xa_recover``-style listing of in-doubt transactions a
transaction manager queries after a resource restart.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.storage.kvstore import ShardOwnershipError, TransactionalKVStore
from repro.storage.locks import LockConflict

TransactionId = Hashable

VOTE_YES = "yes"
VOTE_NO = "no"

OUTCOME_COMMIT = "commit"
OUTCOME_ABORT = "abort"

BusinessLogic = Callable[["TransactionView"], Any]


class TransactionView:
    """The handle the business logic uses to manipulate data inside a transaction."""

    def __init__(self, store: TransactionalKVStore, transaction_id: TransactionId):
        self._store = store
        self.transaction_id = transaction_id

    def read(self, key: str, default: Any = None) -> Any:
        """Read ``key`` within the transaction."""
        return self._store.read(self.transaction_id, key, default)

    def write(self, key: str, value: Any) -> None:
        """Write ``key`` within the transaction (may raise ``LockConflict``)."""
        self._store.write(self.transaction_id, key, value)

    def owns(self, key: str) -> bool:
        """Whether the executing shard owns ``key``.

        Shard-aware business logic guards each per-key block with this so a
        cross-shard transaction applies only its local part on each
        participant; on an unpartitioned deployment it is always true.
        """
        return self._store.owns(key)


class XAResource:
    """One database server's resource manager (vote / decide / recover)."""

    def __init__(self, store: TransactionalKVStore):
        self.store = store

    # ------------------------------------------------------------- execution

    def execute(self, transaction_id: TransactionId, logic: BusinessLogic) -> Any:
        """Run ``logic`` inside ``transaction_id`` and return its result.

        This is the transient data manipulation the paper abstracts behind
        ``compute()``: changes are made to the database but not committed.
        A lock conflict -- or a shard-ownership violation in a partitioned
        deployment -- aborts the transaction and re-raises; the caller (the
        application server) treats it like any other failed computation, and
        the abort guarantees this resource will vote no, so a misrouted
        transaction can never half-commit.
        """
        self.store.begin(transaction_id)
        view = TransactionView(self.store, transaction_id)
        try:
            return logic(view)
        except (LockConflict, ShardOwnershipError):
            self.store.abort(transaction_id)
            raise

    # ------------------------------------------------------------ commitment

    def vote(self, transaction_id: TransactionId) -> tuple[str, float]:
        """XA ``prepare``: returns ``(vote, io_cost)`` with vote in {yes, no}."""
        return self.store.prepare(transaction_id)

    def decide(self, transaction_id: TransactionId, outcome: str) -> tuple[str, float]:
        """XA ``commit``/``rollback``: apply ``outcome`` and return ``(final, io_cost)``.

        Follows the paper's contract for ``decide()``: an abort input always
        yields abort; a commit input yields commit only if this resource
        previously voted yes (otherwise the result is abort).
        """
        if outcome == OUTCOME_ABORT:
            cost = self.store.abort(transaction_id)
            return OUTCOME_ABORT, cost
        if outcome != OUTCOME_COMMIT:
            raise ValueError(f"unknown outcome {outcome!r}")
        status = self.store.status(transaction_id)
        if status == "committed":
            return OUTCOME_COMMIT, 0.0
        if status != "prepared":
            # Never voted yes (or already aborted): refuse to commit.
            cost = self.store.abort(transaction_id)
            return OUTCOME_ABORT, cost
        cost = self.store.commit(transaction_id)
        return OUTCOME_COMMIT, cost

    def commit_one_phase(self, transaction_id: TransactionId) -> float:
        """One-phase commit (used by the unreliable baseline): no vote, just commit."""
        return self.store.commit(transaction_id, allow_one_phase=True)

    # --------------------------------------------------------------- recovery

    def crash(self) -> None:
        """Forward a crash to the underlying store (volatile state is lost)."""
        self.store.crash()

    def recover(self) -> list[TransactionId]:
        """XA ``recover``: rebuild state and return the in-doubt transactions."""
        return self.store.recover()

    def in_doubt(self) -> list[TransactionId]:
        """Currently prepared-but-undecided transactions."""
        return self.store.in_doubt()
