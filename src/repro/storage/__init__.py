"""Database substrate: stable storage, WAL, locks, transactional store, XA facade."""

from repro.storage.kvstore import (
    ABORTED,
    ACTIVE,
    COMMITTED,
    PREPARED,
    Transaction,
    TransactionError,
    TransactionalKVStore,
)
from repro.storage.locks import LockConflict, LockManager
from repro.storage.stable import StableStorage, StorageStats
from repro.storage.wal import LogRecord, ReplayResult, WriteAheadLog
from repro.storage.xa import (
    OUTCOME_ABORT,
    OUTCOME_COMMIT,
    VOTE_NO,
    VOTE_YES,
    TransactionView,
    XAResource,
)

__all__ = [
    "StableStorage",
    "StorageStats",
    "WriteAheadLog",
    "LogRecord",
    "ReplayResult",
    "LockManager",
    "LockConflict",
    "TransactionalKVStore",
    "Transaction",
    "TransactionError",
    "ACTIVE",
    "PREPARED",
    "COMMITTED",
    "ABORTED",
    "XAResource",
    "TransactionView",
    "VOTE_YES",
    "VOTE_NO",
    "OUTCOME_COMMIT",
    "OUTCOME_ABORT",
]
