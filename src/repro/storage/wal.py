"""Write-ahead log for the transactional store.

The log is the database's single source of durability: transaction prepare
records (carrying the write set), commit records and abort records are
appended to it, and :meth:`WriteAheadLog.replay` reconstructs the committed
state and the set of in-doubt (prepared but undecided) transactions after a
crash.  The log lives on a :class:`~repro.storage.stable.StableStorage` device
so its I/O costs are accounted for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.storage.stable import StableStorage

PREPARE = "prepare"
COMMIT = "commit"
ABORT = "abort"
MIGRATE_IN = "migrate_in"
MIGRATE_OUT = "migrate_out"

_VALID_KINDS = {PREPARE, COMMIT, ABORT, MIGRATE_IN, MIGRATE_OUT}


@dataclass(frozen=True)
class LogRecord:
    """One WAL entry."""

    kind: str
    transaction_id: Any
    writes: dict[str, Any] = field(default_factory=dict)
    removes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown log record kind {self.kind!r}")


@dataclass
class ReplayResult:
    """Outcome of replaying the log after a crash."""

    committed_state: dict[str, Any]
    in_doubt: dict[Any, dict[str, Any]]
    committed_transactions: list[Any]
    aborted_transactions: list[Any]
    # Keys migrated off this shard (and not written again later): recovery
    # must delete them even when they predate the log (initial data), so they
    # ride next to the replayed state rather than inside it.
    released_keys: set[str] = field(default_factory=set)


class WriteAheadLog:
    """Append-only transaction log stored on stable storage."""

    LOG_KEY = "__wal__"

    def __init__(self, storage: StableStorage):
        self.storage = storage

    # ----------------------------------------------------------------- append

    def append_prepare(self, transaction_id: Any, writes: dict[str, Any],
                       forced: bool = True) -> float:
        """Log the write set of a prepared transaction; returns the I/O cost."""
        record = LogRecord(PREPARE, transaction_id, dict(writes))
        return self.storage.append(self.LOG_KEY, record, forced=forced)

    def append_commit(self, transaction_id: Any, writes: Optional[dict[str, Any]] = None,
                      forced: bool = True) -> float:
        """Log a commit decision.

        ``writes`` is only needed for one-phase commits (no prior prepare
        record); two-phase commits reference the prepare record's write set.
        """
        record = LogRecord(COMMIT, transaction_id, dict(writes or {}))
        return self.storage.append(self.LOG_KEY, record, forced=forced)

    def append_abort(self, transaction_id: Any, forced: bool = False) -> float:
        """Log an abort decision (lazily by default: aborts need no durability)."""
        record = LogRecord(ABORT, transaction_id)
        return self.storage.append(self.LOG_KEY, record, forced=forced)

    def append_migrate_in(self, epoch: int, data: dict[str, Any],
                          forced: bool = True) -> float:
        """Log committed values installed by an epoch-``epoch`` migration."""
        record = LogRecord(MIGRATE_IN, ("migrate", epoch), dict(data))
        return self.storage.append(self.LOG_KEY, record, forced=forced)

    def append_migrate_out(self, epoch: int, keys: tuple[str, ...],
                           forced: bool = True) -> float:
        """Log keys released to another shard by an epoch-``epoch`` migration."""
        record = LogRecord(MIGRATE_OUT, ("migrate", epoch), removes=tuple(keys))
        return self.storage.append(self.LOG_KEY, record, forced=forced)

    # ------------------------------------------------------------------- read

    def records(self) -> list[LogRecord]:
        """All records in append order."""
        return list(self.storage.get(self.LOG_KEY, []))

    def __len__(self) -> int:
        return len(self.storage.get(self.LOG_KEY, []))

    def replay(self) -> ReplayResult:
        """Rebuild committed state and in-doubt transactions from the log."""
        committed_state: dict[str, Any] = {}
        prepared: dict[Any, dict[str, Any]] = {}
        committed: list[Any] = []
        aborted: list[Any] = []
        released: set[str] = set()
        for record in self.records():
            if record.kind == PREPARE:
                prepared[record.transaction_id] = dict(record.writes)
            elif record.kind == COMMIT:
                writes = record.writes or prepared.get(record.transaction_id, {})
                committed_state.update(writes)
                released.difference_update(writes)
                prepared.pop(record.transaction_id, None)
                committed.append(record.transaction_id)
            elif record.kind == ABORT:
                prepared.pop(record.transaction_id, None)
                aborted.append(record.transaction_id)
            elif record.kind == MIGRATE_IN:
                committed_state.update(record.writes)
                released.difference_update(record.writes)
            elif record.kind == MIGRATE_OUT:
                for key in record.removes:
                    committed_state.pop(key, None)
                released.update(record.removes)
        return ReplayResult(
            committed_state=committed_state,
            in_doubt=prepared,
            committed_transactions=committed,
            aborted_transactions=aborted,
            released_keys=released,
        )
