"""Conservative parallel simulation: one run, many cores, byte-identical traces.

A :class:`ShardedKernel` partitions a deployment's processes into shards, runs
one wheel-kernel :class:`~repro.sim.scheduler.Simulator` per shard, and
advances them in lookahead-bounded rounds:

1. compute ``T``, the earliest pending event time across all shards;
2. every shard runs its events with ``time < T + L`` (``L`` is the minimum
   cross-shard link latency from :func:`repro.net.latency.min_cross_latency`)
   -- safe because no message sent at or after ``T`` can arrive before
   ``T + L``;
3. at the barrier, cross-shard messages are exchanged and re-injected into
   their destination kernels at the exact ``(time, seq)`` position the serial
   kernel would have given them (:meth:`Simulator.inject`), then the merged
   trace is committed up to the proven-complete bound.

Shard 0 always holds every client (the workload generators drive client
objects directly); the server tier is split round-robin over ``jobs`` shards.
With ``workers=0`` all shards interleave in this OS process -- the
determinism oracle.  With ``workers=N`` the server shards execute in ``N``
forked worker processes talking length-delimited pickles over pipes, with
messages crossing the boundary via the :meth:`Message.to_wire` codec.

Determinism rests on three per-source refactors in the serial stack (network
RNG streams, message-id counters, thread ids) plus the seq-mark staircase in
the scheduler; ``tests/test_trace_equivalence.py`` holds the merged trace
byte-identical to the serial wheel kernel across seeds, schemes and fault
corpus artifacts.

Known, documented limitations:

* ``run_until`` predicates that read *server*-shard state are only
  re-evaluated at round barriers (client-state predicates -- the common case
  -- keep per-event granularity via shard 0);
* with ``workers>0``, programmatic overrides (custom workload objects,
  business logic) and post-build ``apply_faults`` are rejected -- encode the
  configuration in the scenario DSN;
* reliable channels are unsupported (rejected at scenario validation);
* mid-run ``issue()`` between two ``run_until`` calls can order a pair of
  messages that arrive at the same destination at the same instant
  differently from the serial kernel; generator-driven runs (closed/open
  loop) never hit this.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import traceback
from bisect import bisect_left
from contextlib import contextmanager
from functools import partial
from typing import Any, Callable, Iterable, Optional

from repro.net.latency import min_cross_latency, three_tier_latency
from repro.net.message import Message
from repro.net.network import Network, NetworkStats
from repro.runtime.base import RUNTIME_SIM, Kernel, RuntimeSpec
from repro.sim.scheduler import (
    GENESIS_CTX,
    Ctx,
    SimulationLimitExceeded,
)
from repro.sim.tracing import RETENTION_OFF, TraceEvent, TraceRecorder, parse_retention

__all__ = ["ShardNetwork", "ShardedDeployment", "ShardedKernel", "build_sharded",
           "plan_shards"]


# ------------------------------------------------------------------ planning


def plan_shards(scenario: Any) -> list[list[str]]:
    """Partition a scenario's processes into ``jobs + 1`` shards.

    Shard 0 is every client: the workload generators mutate client objects
    synchronously, so clients must live in the coordinating OS process.  The
    server tier (app servers, then database servers) is dealt round-robin
    over shards ``1..jobs``.  Under local registers all app servers share
    in-memory register stores and are pinned together in shard 1.
    """
    from repro.api.scenario import ScenarioError
    from repro.core.deployment import REGISTER_LOCAL

    jobs = scenario.jobs
    shards: list[list[str]] = [list(scenario.client_names)]
    shards.extend([] for _ in range(jobs))
    apps = list(scenario.app_server_names)
    dbs = list(scenario.db_server_names)
    if getattr(scenario, "register_mode", None) == REGISTER_LOCAL:
        # Local register stores are plain shared objects between the app
        # servers; they cannot straddle two kernels.
        shards[1].extend(apps)
        for i, name in enumerate(dbs):
            shards[1 + i % jobs].append(name)
    else:
        for i, name in enumerate(apps + dbs):
            shards[1 + i % jobs].append(name)
    for index, names in enumerate(shards[1:], start=1):
        if not names:
            raise ScenarioError(
                f"jobs={jobs} leaves server shard {index} empty for this "
                "deployment shape; every server shard needs at least one "
                "app or database server")
    return shards


def _scenario_latency(scenario: Any):
    """The scenario's three-tier latency topology (for the lookahead bound)."""
    return three_tier_latency(
        list(scenario.client_names), list(scenario.app_server_names),
        list(scenario.db_server_names),
        client_app_latency=scenario.client_app_latency,
        app_app_latency=scenario.app_app_latency,
        app_db_latency=scenario.app_db_latency)


@contextmanager
def _force_wheel():
    """Pin sub-builds to the wheel kernel (shard mode lives only there)."""
    previous = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = "wheel"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = previous


# ------------------------------------------------------------ shard network


class ShardNetwork(Network):
    """The in-memory fabric of one shard of a sharded run.

    Local destinations behave exactly like the serial network (with the
    delivery event's context discriminator stamped by the triggering
    message's id, feeding the seq-mark staircase).  Remote destinations get
    their latency sampled from the *same* per-source RNG stream the serial
    kernel would have used, then the message is parked in ``outbox`` for
    the round loop to carry to its destination shard; the tuple layout is::

        (send_time, chain, source_index, outbox_seq,
         destination, arrival_time, message)

    where ``chain`` is the dispatch context the delivery event would carry
    in the serial kernel -- ``(send_time, sender_dispatch_ctx, msg_id)`` --
    and the prefix ``[:4]`` is the global tie-break key that recovers the
    serial kernel's scheduling order for same-instant cross-shard sends.
    """

    def __init__(self, sim: Kernel, latency: Any = None,
                 loss_probability: float = 0.0,
                 local_names: Optional[Iterable[str]] = None):
        super().__init__(sim, latency=latency, loss_probability=loss_probability)
        self.local_names = set(local_names or ())
        self.outbox: list[tuple] = []
        self._outbox_seq = 0
        #: Only the coordinator shard records partition/heal trace events;
        #: every shard *applies* them, so without this gate the merged trace
        #: would carry one duplicate per shard.
        self.record_global = False

    def hosts(self, name: str) -> bool:
        return not self.local_names or name in self.local_names

    def _transmit(self, message: Message, destination: str, tracing: bool):
        if not self.local_names or destination in self.local_names:
            event = super()._transmit(message, destination, tracing)
            if event is not None:
                ctx = event.ctx
                event.ctx = Ctx((ctx[0], ctx[1], message.msg_id))
            return event
        delay = self.latency.sample(self._rng_for(message.sender), message.sender,
                                    destination)
        now = self.sim.now
        self._outbox_seq += 1
        parent = getattr(self.sim, "_dispatch_trunc", GENESIS_CTX)
        self.outbox.append((
            now,
            Ctx((now, parent, message.msg_id)),
            self._source_index.get(message.sender, 1 << 30),
            self._outbox_seq,
            destination,
            now + delay,
            message,
        ))
        return None

    def take_outbox(self) -> list[tuple]:
        entries, self.outbox = self.outbox, []
        return entries

    def partition(self, *groups: Iterable[str]) -> None:
        if self.record_global:
            super().partition(*groups)
            return
        trace = self.sim.trace
        enabled = trace.enabled
        trace.enabled = False
        try:
            super().partition(*groups)
        finally:
            trace.enabled = enabled

    def heal_partition(self) -> None:
        if self.record_global:
            super().heal_partition()
            return
        trace = self.sim.trace
        enabled = trace.enabled
        trace.enabled = False
        try:
            super().heal_partition()
        finally:
            trace.enabled = enabled


# ------------------------------------------------------------- shadow faults


def _shadow_crash(process: Any, detector: Any, sim: Kernel) -> None:
    """Mirror a remote process's crash: flip ``up``, update detector clocks.

    No trace record and no thread teardown -- the owning shard does the real
    crash; this keeps the *view* other shards have of the process honest
    (``Network._deliver`` down-checks, failure-detector ``suspect`` reads).
    """
    if not process.up:
        return
    process.up = False
    crash_times = getattr(detector, "_crash_times", None)
    if crash_times is not None:
        crash_times[process.name] = sim.now


def _shadow_recover(process: Any, detector: Any, sim: Kernel) -> None:
    if process.up:
        return
    process.up = True
    recover_times = getattr(detector, "_recover_times", None)
    if recover_times is not None:
        recover_times[process.name] = sim.now


def _apply_shadow_faults(deployment: Any, schedule: Any, local_names: set[str]) -> None:
    """Schedule shadow up/down flips for faults targeting *remote* processes.

    ``restricted_to`` gave this shard only its local crashes/recoveries (and
    all partitions); the complement still matters locally -- a remote crash
    must flip the remote process object's ``up`` flag so deliveries drop and
    detectors suspect, exactly as in the serial run.
    """
    from repro.failure.injection import CRASH, CRASH_FOR, RECOVER

    sim = deployment.sim
    detector = deployment.failure_detector
    network = deployment.network
    for action in schedule:
        if action.kind not in (CRASH, RECOVER, CRASH_FOR) \
                or action.target in local_names:
            continue
        process = network.processes[action.target]
        if action.kind == CRASH:
            sim.schedule_at(action.time, partial(_shadow_crash, process, detector, sim),
                            name=f"shadow:crash:{action.target}")
        elif action.kind == RECOVER:
            sim.schedule_at(action.time, partial(_shadow_recover, process, detector, sim),
                            name=f"shadow:recover:{action.target}")
        else:
            downtime = action.params["downtime"]
            sim.schedule_at(action.time, partial(_shadow_crash, process, detector, sim),
                            name=f"shadow:crash:{action.target}")
            sim.schedule_at(action.time + downtime,
                            partial(_shadow_recover, process, detector, sim),
                            name=f"shadow:recover:{action.target}")


# ------------------------------------------------------------ trace shipping


def _event_time(event: TraceEvent) -> float:
    return event.time


class _TraceCollector:
    """Per-shard staging buffer feeding the merged central trace.

    Two shipping modes: when the central recorder *stores* events (retention
    ``full``/``ring``) the shard keeps full retention and the collector
    drains its store each commit (``ship is None``); when the central
    retention is ``off`` only the categories with central subscribers matter,
    so the collector subscribes those and the shard stores nothing.
    """

    def __init__(self, trace: TraceRecorder, ship: Optional[list[str]]):
        self.buffer: list[TraceEvent] = []
        self._trace: Optional[TraceRecorder] = None
        if ship is None:
            trace.set_retention("full")
            self._trace = trace
        else:
            for category in ship:
                trace.subscribe(category, self.buffer.append)

    def _drain_store(self) -> None:
        trace = self._trace
        if trace is not None and len(trace):
            self.buffer.extend(trace.events)
            trace.clear()

    def take(self, bound: float) -> list[TraceEvent]:
        """Remove and return buffered events with ``time < bound``."""
        self._drain_store()
        buffer = self.buffer
        cut = bisect_left(buffer, bound, key=_event_time)
        taken, self.buffer = buffer[:cut], buffer[cut:]
        return taken

    def take_all(self) -> list[TraceEvent]:
        self._drain_store()
        taken, self.buffer = self.buffer, []
        return taken


# ------------------------------------------------------------------- shards


def _build_shard(scenario: Any, plan: list[list[str]], index: int,
                 ship: Optional[list[str]], overrides: dict[str, Any]) -> "_LocalShard":
    """Build one shard: a full deployment hosting only its local names."""
    from repro.api import drivers

    spec = RuntimeSpec(kind=RUNTIME_SIM, only=tuple(plan[index]))
    with _force_wheel():
        system = drivers.build(scenario, runtime=spec, **overrides)
    system.sim.enable_shard_mode()
    collector = _TraceCollector(system.sim.trace, ship)
    schedule = scenario.fault_schedule()
    if len(schedule):
        _apply_shadow_faults(system.deployment, schedule, set(plan[index]))
    return _LocalShard(index, set(plan[index]), system, collector)


class _LocalShard:
    """A shard executing in this OS process."""

    local = True

    def __init__(self, index: int, names: set[str], system: Any,
                 collector: _TraceCollector):
        self.index = index
        self.names = names
        self.system = system
        self.sim = system.sim
        self.network = system.network
        self.collector = collector

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def events_processed(self) -> int:
        return self.sim.events_processed

    @property
    def pending(self) -> int:
        return self.sim.pending_events

    def next_time(self) -> Optional[float]:
        return self.sim.next_event_time()

    def inject(self, arrival: float, chain: tuple, destination: str,
               message: Message) -> None:
        # The chain already carries the message id as its discriminator, so
        # the injected delivery becomes the dispatch context of whatever the
        # destination sends in response -- the same (time, ctx) key the
        # serial kernel would use.
        self.sim.inject(
            arrival, chain,
            partial(self.network._deliver_bound, message),
            name="xshard")

    def run_window(self, stop: float, budget: int) -> int:
        before = self.sim.events_processed
        self.sim.run_window(stop, max_events=budget)
        return self.sim.events_processed - before

    def take_outbox(self) -> list[tuple]:
        return self.network.take_outbox()

    def take_trace(self, bound: float) -> list[TraceEvent]:
        return self.collector.take(bound)

    def prune(self, before: float) -> None:
        self.sim.prune_marks(before)


class _WorkerShard:
    """Coordinator-side proxy of a shard hosted by a worker process."""

    local = False

    def __init__(self, index: int, names: set[str], worker: "_WorkerHandle"):
        self.index = index
        self.names = names
        self.worker = worker
        #: Injections awaiting the next round command, in injection order:
        #: ``(arrival, chain, destination, wire_bytes)``.
        self.queued: list[tuple[float, tuple, str, bytes]] = []
        self.trace_buffer: list[TraceEvent] = []
        self.cached_next: Optional[float] = None
        self.cached_now = 0.0
        self.cached_processed = 0
        self.cached_pending = 0
        self.prune_before: Optional[float] = None

    @property
    def now(self) -> float:
        return self.cached_now

    @property
    def events_processed(self) -> int:
        return self.cached_processed

    @property
    def pending(self) -> int:
        return self.cached_pending + len(self.queued)

    def next_time(self) -> Optional[float]:
        nearest = self.cached_next
        for arrival, _chain, _destination, _wire in self.queued:
            if nearest is None or arrival < nearest:
                nearest = arrival
        return nearest

    def inject(self, arrival: float, chain: tuple, destination: str,
               wire: bytes) -> None:
        self.queued.append((arrival, chain, destination, wire))

    def take_trace(self, bound: float) -> list[TraceEvent]:
        buffer = self.trace_buffer
        cut = bisect_left(buffer, bound, key=_event_time)
        taken, self.trace_buffer = buffer[:cut], buffer[cut:]
        return taken

    def absorb(self, reply: tuple) -> tuple[list[tuple], int]:
        """Fold one round reply into the cached view; returns (outbox, spent)."""
        next_time, now, outbox, trace_events, processed, pending = reply
        self.cached_next = next_time
        self.cached_now = now
        self.cached_processed += processed
        self.cached_pending = pending
        self.trace_buffer.extend(trace_events)
        return outbox, processed


# ----------------------------------------------------------- worker process


def _probe_shard(shard: _LocalShard) -> dict[str, Any]:
    stats = shard.network.stats
    return {
        "now": shard.sim.now,
        "processed": shard.sim.events_processed,
        "pending": shard.sim.pending_events,
        "stats": stats.snapshot(),
        "by_type_sent": dict(stats.by_type_sent),
        "by_type_delivered": dict(stats.by_type_delivered),
        "in_doubt": {name: list(server.in_doubt())
                     for name, server in shard.system.db_servers.items()
                     if name in shard.names},
    }


def _worker_main(conn: Any, scenario: Any, plan: list[list[str]],
                 indices: list[int], ship: Optional[list[str]]) -> None:
    """Entry point of a worker OS process hosting one or more server shards."""
    os.environ["REPRO_KERNEL"] = "wheel"
    shards: dict[int, _LocalShard] = {}
    try:
        for index in indices:
            shards[index] = _build_shard(scenario, plan, index, ship, {})
        conn.send(("ready", {index: (shard.next_time(), shard.pending)
                             for index, shard in shards.items()}))
        while True:
            try:
                cmd = conn.recv()
            except EOFError:
                return
            op = cmd[0]
            if op == "round":
                reply = {}
                for index, (stop, prune_before, budget, injections) in cmd[1].items():
                    shard = shards[index]
                    for arrival, chain, destination, wire in injections:
                        shard.inject(arrival, chain, destination,
                                     Message.from_wire(wire))
                    processed = shard.run_window(stop, budget)
                    if prune_before is not None:
                        shard.prune(prune_before)
                    outbox = [entry[:6] + (entry[6].to_wire(),)
                              for entry in shard.take_outbox()]
                    reply[index] = (shard.next_time(), shard.sim.now, outbox,
                                    shard.collector.take_all(), processed,
                                    shard.pending)
                conn.send(("ok", reply))
            elif op == "probe":
                conn.send(("ok", {index: _probe_shard(shard)
                                  for index, shard in shards.items()}))
            elif op == "stop":
                conn.close()
                return
            else:
                raise RuntimeError(f"unknown worker command {op!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):
            pass


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork (Windows)
        return multiprocessing.get_context("spawn")


class _WorkerHandle:
    """One worker OS process and its command pipe."""

    def __init__(self, ctx: Any, scenario: Any, plan: list[list[str]],
                 indices: list[int], ship: Optional[list[str]]):
        self.conn, child = ctx.Pipe()
        self.indices = list(indices)
        self.process = ctx.Process(
            target=_worker_main, args=(child, scenario, plan, self.indices, ship),
            daemon=True)
        self.process.start()
        child.close()

    def request(self, payload: tuple) -> None:
        self.conn.send(payload)

    def collect(self) -> Any:
        kind, body = self.conn.recv()
        if kind == "error":
            raise RuntimeError(f"parallel simulation worker failed:\n{body}")
        return body

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (OSError, ValueError, BrokenPipeError):
            pass
        try:
            self.conn.close()
        except (OSError, ValueError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)


# ------------------------------------------------------------------- kernel


def _entry_key(entry: tuple) -> tuple:
    # (send_time, chain, source_index, outbox_seq): the serial kernel's
    # scheduling order for cross-shard deliveries.  The chain recovers
    # same-instant cross-sender order through the senders' causal ancestry;
    # the source index is only reached when two *different* senders share an
    # identical (truncated) chain -- a documented approximation.
    return entry[:4]


class ShardedKernel(Kernel):
    """The :class:`Kernel` facade over a set of shard simulators.

    Time, timers, RNG streams and idle scheduling all delegate to shard 0
    (the client shard), which is what the workload generators drive; ``run``
    and ``run_until`` execute the conservative round loop.
    """

    realtime = False

    def __init__(self, shards: list[Any], workers: list[_WorkerHandle],
                 trace: TraceRecorder, lookahead: float, seed: int):
        self._shards = shards
        self._shard0 = shards[0]
        self._local_servers = [s for s in shards[1:] if s.local]
        self._workers = workers
        self._worker_shards = {worker: [shards[i] for i in worker.indices]
                               for worker in workers}
        self._owner = {name: shard for shard in shards for name in shard.names}
        self._lookahead = lookahead
        self.trace = trace
        self.seed = seed
        # Exclusive bounds of completed execution: ``_frontier`` for the
        # server shards, ``_frontier0`` for shard 0 (lower only after a
        # mid-window predicate stop), ``_committed`` for the merged trace.
        self._frontier = 0.0
        self._frontier0 = 0.0
        self._committed = 0.0
        # Cross-shard sends produced beyond a predicate-stop time: they are
        # serial-future and may only be injected once shard 0 has executed
        # past their send time.
        self._deferred: list[tuple] = []
        self.rounds = 0
        self.stalled_windows = 0

    # ------------------------------------------------------------ delegation

    @property
    def now(self) -> float:
        return self._shard0.sim.now

    def rng(self, stream: str):
        return self._shard0.sim.rng(stream)

    def next_thread_id(self) -> int:
        return self._shard0.sim.next_thread_id()

    def next_message_id(self) -> int:
        return self._shard0.sim.next_message_id()

    def schedule(self, delay: float, callback: Callable[[], None],
                 name: str = "event") -> Any:
        return self._shard0.sim.schedule(delay, callback, name)

    def schedule_at(self, time: float, callback: Callable[[], None],
                    name: str = "event") -> Any:
        return self._shard0.sim.schedule_at(time, callback, name)

    def call_soon(self, callback: Callable[[], None], name: str = "soon") -> Any:
        return self._shard0.sim.call_soon(callback, name)

    @property
    def pending_events(self) -> int:
        return sum(shard.pending for shard in self._shards) + len(self._deferred)

    @property
    def events_processed(self) -> int:
        return sum(shard.events_processed for shard in self._shards)

    # ------------------------------------------------------------ round loop

    def run(self, until: Optional[float] = None, max_events: int = 5_000_000) -> float:
        self._drive(None, until, max_events)
        return self.now

    def run_until(self, predicate: Callable[[], bool], *,
                  until: Optional[float] = None,
                  max_events: int = 5_000_000) -> bool:
        return bool(self._drive(predicate, until, max_events))

    def _drive(self, predicate: Optional[Callable[[], bool]],
               until: Optional[float], max_events: int) -> bool:
        if predicate is not None and predicate():
            return True
        shard0 = self._shard0
        # Exclusive window bound: events at exactly ``until`` must run (the
        # serial kernels execute ``time <= until``), so the bound is the next
        # float above it.
        bound = math.inf if until is None else math.nextafter(until, math.inf)
        remaining = max_events
        self._route_idle_sends()

        # ---- catch-up: shard 0 lags after a mid-window predicate stop
        while self._frontier0 < self._frontier:
            stop = min(self._frontier, bound)
            if stop <= self._frontier0:
                break  # the horizon ends inside already-executed territory
            hit, spent = self._run_shard0(predicate, stop, remaining)
            remaining -= spent
            self._check_budget(remaining, max_events)
            self._frontier0 = shard0.sim.now if hit else stop
            entries = shard0.take_outbox()
            entries.extend(self._take_deferred(self._frontier0))
            self._inject_sorted(entries)
            self._commit_and_prune(min(self._frontier0, self._frontier))
            if hit:
                self._commit_hit_tail()
                self._sync_idle()
                return True

        # ---- steady state: lookahead-bounded rounds
        while True:
            if predicate is not None and predicate():
                self._sync_idle()
                return True
            t_next = self._min_next_time()
            if t_next is None:
                # Globally drained: commit everything; the clock lands on the
                # last executed event anywhere, like the serial kernel's.
                self._commit_and_prune(math.inf)
                last = max(shard.now for shard in self._shards)
                if last > shard0.sim.now:
                    shard0.sim.now = last
                if until is not None and until > shard0.sim.now:
                    shard0.sim.now = until
                self._sync_idle()
                return predicate() if predicate is not None else False
            if t_next >= bound:
                # Horizon: nothing left at or below ``until``.
                self._frontier = max(self._frontier, bound)
                self._frontier0 = min(max(self._frontier0, bound), self._frontier)
                self._commit_and_prune(min(self._frontier0, self._frontier))
                if until is not None and until > shard0.sim.now:
                    shard0.sim.now = until
                self._sync_idle()
                return False
            stop = min(t_next + self._lookahead, bound)
            hit, spent = self._round(predicate, stop, remaining)
            remaining -= spent
            self._check_budget(remaining, max_events)
            if hit:
                self._sync_idle()
                return True

    def _round(self, predicate: Optional[Callable[[], bool]], stop: float,
               budget: int) -> tuple[bool, int]:
        """One conservative round: all shards run ``< stop``, then exchange."""
        self.rounds += 1
        shard0 = self._shard0
        # Dispatch worker rounds first so they execute concurrently with the
        # local shards below.
        for worker in self._workers:
            payload = {}
            for shard in self._worker_shards[worker]:
                injections, shard.queued = shard.queued, []
                payload[shard.index] = (stop, shard.prune_before, budget, injections)
                shard.prune_before = None
            worker.request(("round", payload))
        spent = 0
        server_entries: list[tuple] = []
        for shard in self._local_servers:
            delta = shard.run_window(stop, budget)
            spent += delta
            if delta == 0:
                self.stalled_windows += 1
            server_entries.extend(shard.take_outbox())
        hit, spent0 = self._run_shard0(predicate, stop, budget)
        spent += spent0
        shard0_entries = shard0.take_outbox()
        for worker in self._workers:
            for index, reply in worker.collect().items():
                outbox, processed = self._shards[index].absorb(reply)
                spent += processed
                if processed == 0:
                    self.stalled_windows += 1
                server_entries.extend(outbox)
        if hit:
            # Sends at or beyond the stop time are serial-future: hold them
            # until shard 0 has executed past their send time.
            t_star = shard0.sim.now
            eager = [e for e in server_entries if e[0] < t_star]
            self._deferred.extend(e for e in server_entries if e[0] >= t_star)
            eager.extend(shard0_entries)
            self._inject_sorted(eager)
            self._frontier = stop
            self._frontier0 = t_star
            self._commit_and_prune(min(self._frontier0, self._frontier))
            self._commit_hit_tail()
        else:
            server_entries.extend(shard0_entries)
            self._inject_sorted(server_entries)
            self._frontier = self._frontier0 = stop
            self._commit_and_prune(stop)
        return hit, spent

    def _run_shard0(self, predicate: Optional[Callable[[], bool]], stop: float,
                    budget: int) -> tuple[bool, int]:
        sim = self._shard0.sim
        before = sim.events_processed
        if predicate is None:
            sim.run_window(stop, max_events=budget)
            return False, sim.events_processed - before
        hit = sim.run_until_window(predicate, stop, max_events=budget)
        return hit, sim.events_processed - before

    # ------------------------------------------------------------- exchange

    def _route_idle_sends(self) -> None:
        """Carry sends made while no run was active (e.g. ``issue()`` at t=0)."""
        entries = self._shard0.take_outbox()
        if entries:
            self._inject_sorted(entries)

    def _take_deferred(self, bound: float) -> list[tuple]:
        if not self._deferred:
            return []
        ready = [e for e in self._deferred if e[0] < bound]
        if ready:
            self._deferred = [e for e in self._deferred if e[0] >= bound]
        return ready

    def _inject_sorted(self, entries: list[tuple]) -> None:
        entries.sort(key=_entry_key)
        owner = self._owner
        for _send_time, chain, _src, _seq, destination, arrival, payload in entries:
            shard = owner[destination]
            if shard.local:
                message = payload if isinstance(payload, Message) \
                    else Message.from_wire(payload)
                shard.inject(arrival, chain, destination, message)
            else:
                wire = payload if isinstance(payload, bytes) else payload.to_wire()
                shard.inject(arrival, chain, destination, wire)

    def _commit_hit_tail(self) -> None:
        """Flush shard 0's records at exactly the predicate-stop instant.

        The triggering event's own trace records carry time ``frontier0``,
        which the exclusive commit bound just excluded; shard 0 executed
        nothing beyond the hit, so they are serial-past and the caller must
        see them.  Server-shard records at that instant stay buffered -- they
        may be serial-future -- and commit on the next advance.
        """
        tail = self._shard0.take_trace(math.nextafter(self._frontier0, math.inf))
        ingest = self.trace.ingest
        for event in tail:
            ingest(event)

    def _commit_and_prune(self, bound: float) -> None:
        """Merge per-shard trace slices below ``bound`` into the central trace.

        Every process's events live in exactly one shard, so a stable sort
        by ``(time, process)`` leaves each process's events in its shard's
        record order -- the canonical form both sides of the equivalence
        tests are compared in.
        """
        merged: list[TraceEvent] = []
        for shard in self._shards:
            merged.extend(shard.take_trace(bound))
        if merged:
            merged.sort(key=lambda e: (e.time, e.process))
            ingest = self.trace.ingest
            for event in merged:
                ingest(event)
        if bound > self._committed:
            self._committed = bound
        prune = self._committed
        for shard in self._shards:
            if shard.local:
                shard.prune(prune)
            else:
                shard.prune_before = prune

    # -------------------------------------------------------------- plumbing

    def _min_next_time(self) -> Optional[float]:
        nearest: Optional[float] = None
        for shard in self._shards:
            candidate = shard.next_time()
            if candidate is not None and (nearest is None or candidate < nearest):
                nearest = candidate
        return nearest

    def _check_budget(self, remaining: int, max_events: int) -> None:
        if remaining < 0:
            raise SimulationLimitExceeded(
                f"simulation exceeded {max_events} events (possible livelock)")

    def _sync_idle(self) -> None:
        # Sends made between runs (client ``issue()``) must carry a context
        # anchored at the current time, not that of the last executed event.
        sim = self._shard0.sim
        sim._dispatch_ctx = sim._dispatch_trunc = Ctx((sim.now, (), 0))


# ------------------------------------------------------------------- facade


class _RemoteDbHandle:
    """Read-only stand-in for a database server hosted by a worker process."""

    def __init__(self, deployment: "ShardedDeployment", name: str):
        self._deployment = deployment
        self.name = name

    def in_doubt(self) -> list:
        return self._deployment._probe(self.name).get("in_doubt", {}).get(self.name, [])


class _NetworkFacade:
    """Merged network view over all shards.

    ``processes`` maps every name to the process object of its *owning*
    in-process shard (worker-hosted names fall back to shard 0's non-started
    shadow objects, whose mailboxes stay empty -- backlog probes under-report
    for those).  ``stats`` sums the per-shard counters; cross-shard messages
    count ``sent`` at the source shard and ``delivered`` at the destination
    shard, so nothing is double-counted.
    """

    def __init__(self, deployment: "ShardedDeployment"):
        self._deployment = deployment
        shards = deployment._shards
        shard0 = shards[0]
        self.sim = deployment.sim
        self.latency = shard0.network.latency
        self.processes: dict[str, Any] = dict(shard0.network.processes)
        for shard in shards[1:]:
            if shard.local:
                for name in shard.names:
                    self.processes[name] = shard.network.processes[name]

    def hosts(self, name: str) -> bool:
        return True

    def names(self) -> list[str]:
        return list(self.processes)

    def process(self, name: str) -> Any:
        return self.processes[name]

    @property
    def stats(self) -> NetworkStats:
        merged = NetworkStats()
        for shard in self._deployment._shards:
            if not shard.local:
                continue
            stats = shard.network.stats
            merged.sent += stats.sent
            merged.delivered += stats.delivered
            merged.dropped_loss += stats.dropped_loss
            merged.dropped_partition += stats.dropped_partition
            merged.dropped_dest_down += stats.dropped_dest_down
            for key, value in stats.by_type_sent.items():
                merged.by_type_sent[key] = merged.by_type_sent.get(key, 0) + value
            for key, value in stats.by_type_delivered.items():
                merged.by_type_delivered[key] = \
                    merged.by_type_delivered.get(key, 0) + value
        for probe in self._deployment._probe_workers().values():
            snapshot = probe["stats"]
            merged.sent += snapshot["sent"]
            merged.delivered += snapshot["delivered"]
            merged.dropped_loss += snapshot["dropped_loss"]
            merged.dropped_partition += snapshot["dropped_partition"]
            merged.dropped_dest_down += snapshot["dropped_dest_down"]
            for key, value in probe["by_type_sent"].items():
                merged.by_type_sent[key] = merged.by_type_sent.get(key, 0) + value
            for key, value in probe["by_type_delivered"].items():
                merged.by_type_delivered[key] = \
                    merged.by_type_delivered.get(key, 0) + value
        return merged

    def partition(self, *groups: Iterable[str]) -> None:
        deployment = self._deployment
        if deployment._workers:
            raise RuntimeError(
                "direct partition() is not supported with workers>0; declare "
                "the partition in the scenario's fault schedule instead")
        for shard in deployment._shards:
            shard.network.partition(*groups)

    def heal_partition(self) -> None:
        deployment = self._deployment
        if deployment._workers:
            raise RuntimeError(
                "direct heal_partition() is not supported with workers>0; "
                "declare the heal in the scenario's fault schedule instead")
        for shard in deployment._shards:
            shard.network.heal_partition()

    def close(self) -> None:
        """Transport resources are owned by the shard networks; no-op."""


class ShardedDeployment:
    """The deployment facade of a sharded run.

    Exposes the same surface as :class:`~repro.core.deployment.EtxDeployment`
    (and the baseline deployments): ``sim``/``trace``/``network``/``clients``/
    ``app_servers``/``db_servers``/``issue``/``run``/``run_until_delivered``/
    ``run_request``/``apply_faults``/``check_spec``/``close``.  Spec checking
    and the metric streams fold the *merged* trace, so their verdicts are the
    serial run's verdicts.
    """

    def __init__(self, scenario: Any, shards: list[Any],
                 workers: list[_WorkerHandle], kernel: ShardedKernel,
                 trace: TraceRecorder, spec_monitor: Any, db_outcomes: Any,
                 latency_components: Any):
        self.scenario = scenario
        self._shards = shards
        self._workers = workers
        self.sim = kernel
        self._trace = trace
        self.spec_monitor = spec_monitor
        self.db_outcomes = db_outcomes
        self.latency_components = latency_components
        shard0 = shards[0]
        self.config = shard0.system.deployment.config
        self.sharding = shard0.system.deployment.sharding
        self.clients = shard0.system.clients
        self.app_servers: dict[str, Any] = {}
        self.db_servers: dict[str, Any] = {}
        owner = kernel._owner
        for name in self.config.app_server_names:
            shard = owner[name]
            self.app_servers[name] = shard.network.processes[name] if shard.local \
                else shard0.system.app_servers[name]
        for name in self.config.db_server_names:
            shard = owner[name]
            self.db_servers[name] = shard.network.processes[name] if shard.local \
                else _RemoteDbHandle(self, name)
        self.network = _NetworkFacade(self)
        self._probe_cache: Optional[dict[int, dict[str, Any]]] = None
        self._probe_round = -1
        self._closed = False

    # ------------------------------------------------------------ shortcuts

    @property
    def trace(self) -> TraceRecorder:
        return self._trace

    @property
    def client(self) -> Any:
        return self.clients[self.config.client_names[0]]

    @property
    def default_primary(self) -> Any:
        return self.app_servers[self.config.app_server_names[0]]

    # ------------------------------------------------------------ execution

    def issue(self, request: Any, client: Optional[str] = None) -> Any:
        return self._shards[0].system.deployment.issue(request, client)

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def run_until_delivered(self, issued: Any, horizon: float = 1_000_000.0) -> bool:
        return self.sim.run_until(lambda: issued.delivered, until=horizon)

    def run_request(self, request: Any, client: Optional[str] = None,
                    horizon: float = 1_000_000.0) -> Any:
        issued = self.issue(request, client)
        self.run_until_delivered(issued, horizon=horizon)
        return issued

    # --------------------------------------------------------------- faults

    def apply_faults(self, schedule: Any) -> None:
        """Apply a programmatic fault schedule across every shard.

        Each shard schedules the faults it can act on locally (as in a
        distributed run) plus shadow up/down flips for the rest, so remote
        views stay honest.  Requires ``workers=0``: worker shards built their
        schedules at construction time from the scenario.
        """
        if self._workers:
            raise RuntimeError(
                "programmatic apply_faults is not supported with workers>0; "
                "declare the faults in the scenario (faults=...) instead")
        for shard in self._shards:
            shard.system.deployment.apply_faults(schedule)
            _apply_shadow_faults(shard.system.deployment, schedule, shard.names)

    # ----------------------------------------------------------------- spec

    def check_spec(self, check_termination: bool = True) -> Any:
        return self.spec_monitor.report(check_termination=check_termination)

    def spec_checker(self) -> Any:
        from repro.core.spec import SpecificationChecker

        return SpecificationChecker(self._trace, self.config.db_server_names,
                                    self.config.client_names)

    # ---------------------------------------------------------------- stats

    def _probe_workers(self) -> dict[int, dict[str, Any]]:
        """Snapshot worker-shard state; cached per round to bound pipe trips."""
        if not self._workers:
            return {}
        if self._probe_cache is not None and self._probe_round == self.sim.rounds:
            return self._probe_cache
        merged: dict[int, dict[str, Any]] = {}
        for worker in self._workers:
            worker.request(("probe",))
        for worker in self._workers:
            merged.update(worker.collect())
        self._probe_cache = merged
        self._probe_round = self.sim.rounds
        return merged

    def _probe(self, name: str) -> dict[str, Any]:
        shard = self.sim._owner[name]
        return self._probe_workers().get(shard.index, {})

    def parallel_stats(self) -> dict[str, Any]:
        """Per-shard execution counters of the round engine (for reports)."""
        kernel = self.sim
        events = {f"shard{shard.index}": shard.events_processed
                  for shard in self._shards}
        total = sum(events.values())
        server_events = [shard.events_processed for shard in self._shards[1:]]
        peak = max(server_events) if server_events else 0
        return {
            "jobs": len(self._shards) - 1,
            "workers": len(self._workers),
            "rounds": kernel.rounds,
            "stalled_windows": kernel.stalled_windows,
            "events": events,
            "balance": (sum(server_events) / (len(server_events) * peak))
            if peak else 1.0,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.stop()
        for shard in self._shards:
            if shard.local:
                shard.system.close()


# -------------------------------------------------------------------- build


def build_sharded(scenario: Any, *, workload: Any = None,
                  business_logic: Any = None,
                  initial_data: Optional[dict[str, Any]] = None,
                  db_timing: Any = None,
                  protocol_timing: Any = None) -> ShardedDeployment:
    """Build the sharded deployment a ``jobs>0`` scenario describes.

    Called by :func:`repro.api.drivers.build`; the keyword overrides mirror
    its own and are forwarded into every shard's sub-build (rejected under
    ``workers>0``, where shards are built in other OS processes).
    """
    from repro.api.scenario import ScenarioError
    from repro.core.spec import SpecMonitor
    from repro.metrics.latency import LatencyComponentStream
    from repro.metrics.stream import DatabaseOutcomeStream

    overrides = {"workload": workload, "business_logic": business_logic,
                 "initial_data": initial_data, "db_timing": db_timing,
                 "protocol_timing": protocol_timing}
    given = {key: value for key, value in overrides.items() if value is not None}
    if scenario.workers > 0 and given:
        raise ScenarioError(
            "workers>0 builds shards in separate OS processes and cannot "
            f"carry programmatic overrides ({', '.join(sorted(given))}); "
            "use workers=0 or encode the configuration in the scenario")
    plan = plan_shards(scenario)
    lookahead = min_cross_latency(_scenario_latency(scenario), plan)
    central = TraceRecorder()
    central.set_retention(scenario.trace)
    db_names = list(scenario.db_server_names)
    spec_monitor = SpecMonitor.attach(central, db_names,
                                      list(scenario.client_names))
    db_outcomes = DatabaseOutcomeStream(central, db_names)
    latency_components = LatencyComponentStream(central)
    mode, _capacity = parse_retention(scenario.trace)
    ship = None if mode != RETENTION_OFF \
        else sorted(central.subscribed_categories())
    shards: list[Any] = [None] * len(plan)
    workers: list[_WorkerHandle] = []
    try:
        shards[0] = _build_shard(scenario, plan, 0, ship, given)
        shards[0].network.record_global = True
        if scenario.workers > 0:
            ctx = _mp_context()
            assignments: list[list[int]] = [[] for _ in range(scenario.workers)]
            for offset, index in enumerate(range(1, len(plan))):
                assignments[offset % scenario.workers].append(index)
            for indices in assignments:
                worker = _WorkerHandle(ctx, scenario, plan, indices, ship)
                workers.append(worker)
                for index in indices:
                    shards[index] = _WorkerShard(index, set(plan[index]), worker)
            for worker in workers:
                for index, (next_time, pending) in worker.collect().items():
                    shards[index].cached_next = next_time
                    shards[index].cached_pending = pending
        else:
            for index in range(1, len(plan)):
                shards[index] = _build_shard(scenario, plan, index, ship, given)
    except BaseException:
        for worker in workers:
            worker.stop()
        for shard in shards:
            if shard is not None and shard.local:
                shard.system.close()
        raise
    kernel = ShardedKernel(shards, workers, central, lookahead, scenario.seed)
    central.bind_clock(lambda: kernel.now)
    return ShardedDeployment(scenario, shards, workers, kernel, central,
                             spec_monitor, db_outcomes, latency_components)
