"""Frozen heap-based simulator kernel: the trace-equivalence oracle.

This module is a verbatim preservation of the binary-heap discrete-event
kernel that :mod:`repro.sim.scheduler` shipped before the timer-wheel
rewrite.  It exists for exactly two purposes:

* **Regression oracle.**  The timer-wheel kernel must produce byte-identical
  traces for every seed; ``tests/test_trace_equivalence.py`` runs each
  scenario under both kernels and compares event-by-event.  Keeping the old
  kernel importable makes that check a permanent part of the suite instead
  of a one-off migration script.
* **Benchmark baseline.**  ``python -m repro kernelbench`` measures both
  kernels on the same machine so the wheel-vs-heap speedup ratio is
  machine-independent, unlike raw events/sec numbers.

Select it at deployment level with ``REPRO_KERNEL=heap`` (see
:func:`repro.runtime.base.create_kernel`).  Do not "improve" this module:
its value is that it does not change.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.runtime.base import Kernel
from repro.sim.errors import InvalidScheduling, SimulationLimitExceeded
from repro.sim.tracing import TraceRecorder


class HeapScheduledEvent:
    """Handle to a scheduled callback on the legacy heap kernel."""

    __slots__ = ("time", "seq", "callback", "name", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None], name: str):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False

    def cancel(self) -> bool:
        """Prevent the callback from firing (idempotent tombstone)."""
        if self.cancelled:
            return False
        self.cancelled = True
        return True

    def __lt__(self, other: "HeapScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<HeapScheduledEvent {self.name!r} at {self.time:.3f} ({state})>"


class HeapSimulator(Kernel):
    """The pre-wheel discrete-event simulator: one binary heap, tombstoned
    cancellation, pop-one-event-at-a-time dispatch.

    Semantics (FIFO within a timestamp, ``run``/``run_until`` horizon
    behaviour, ``max_events`` accounting) are the contract the timer-wheel
    kernel reproduces byte-for-byte.
    """

    def __init__(self, seed: int = 0, trace: Optional[TraceRecorder] = None):
        self.now: float = 0.0
        self._init_kernel(seed, trace, lambda: self.now)
        # The heap holds (time, seq, event) tuples so ordering uses C-level
        # tuple comparison instead of a Python __lt__ per sift step.
        self._queue: list[tuple[float, int, HeapScheduledEvent]] = []
        self._seq = 0
        self._events_processed = 0

    # ------------------------------------------------------------ scheduling

    def schedule(self, delay: float, callback: Callable[[], None], name: str = "event") -> HeapScheduledEvent:
        if delay < 0:
            raise InvalidScheduling(f"negative delay {delay!r} for event {name!r}")
        event = HeapScheduledEvent(self.now + delay, self._seq, callback, name)
        self._seq += 1
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return event

    def schedule_at(self, time: float, callback: Callable[[], None], name: str = "event") -> HeapScheduledEvent:
        if time < self.now:
            raise InvalidScheduling(f"cannot schedule {name!r} in the past ({time} < {self.now})")
        return self.schedule(time - self.now, callback, name)

    def call_soon(self, callback: Callable[[], None], name: str = "soon") -> HeapScheduledEvent:
        return self.schedule(0.0, callback, name)

    # --------------------------------------------------------------- running

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(n) scan)."""
        return sum(1 for _, _, e in self._queue if not e.cancelled)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)[2]
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 5_000_000) -> float:
        processed = 0
        while self._queue:
            event = self._queue[0][2]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = event.time
            self._events_processed += 1
            processed += 1
            if processed > max_events:
                raise SimulationLimitExceeded(
                    f"simulation exceeded {max_events} events (possible livelock)"
                )
            event.callback()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_until(self, predicate: Callable[[], bool], *, until: Optional[float] = None,
                  max_events: int = 5_000_000) -> bool:
        processed = 0
        if predicate():
            return True
        while self._queue:
            event = self._queue[0][2]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                self.now = until
                return predicate()
            heapq.heappop(self._queue)
            self.now = event.time
            self._events_processed += 1
            processed += 1
            if processed > max_events:
                raise SimulationLimitExceeded(
                    f"simulation exceeded {max_events} events (possible livelock)"
                )
            event.callback()
            if predicate():
                return True
        return predicate()
