"""Hierarchical timer wheel: the event queue behind the simulator kernel.

The workload that dominates a protocol run is short-delay timer churn:
retransmit/backoff timers armed a few (virtual) milliseconds out, most of
which are cancelled before they fire because the acknowledgement arrives
first.  A binary heap charges ``O(log n)`` sift work for every insert and
leaves cancelled entries in place as tombstones until they reach the top;
this wheel makes both operations O(1):

* **L0** -- 256 buckets of one virtual millisecond each (``int(time)`` is
  the tick).  Covers the next 256 ms, which is where essentially all
  retransmit, backoff and paper-timing delays land.
* **L1** -- 64 buckets of 256 ms each, covering ~16.4 virtual seconds.
  When the L0 window moves past its end, the next L1 bucket is cascaded
  into L0.
* **far heap** -- everything beyond the L1 horizon sits in a plain
  ``(time, seq, event)`` heap and is fed into the wheel as the window
  advances.  Cancellation tombstones the heap entry, and the heap is
  compacted (filter + re-heapify) whenever dead entries outnumber live
  ones, so a cancel-heavy run cannot bloat it.

Cancellation of a wheel-resident event is *true removal*: cancelling
writes ``None`` over the event's bucket slot -- no tombstone survives to
be re-sorted or cascaded later.

Dispatch is batched by window: :meth:`TimerWheel.drain_next` hands the
simulator the current 256-tick window's events as one list, sorted by
``(time, seq)`` so dispatch order is exactly the heap kernel's.  One
Python-level drain call and one sort amortise over every event in the
window, instead of a heap's per-event pop.  The simulator keeps the list
as its *ready run* and merges late inserts that land inside the drained
window into it by binary insertion; see
:class:`repro.sim.scheduler.Simulator`.

The wheel knows nothing about the simulator: entries are any objects with
``time`` (float), ``seq`` (int), ``cancelled`` (bool) and the two
placement slots ``_slots``/``_pos`` that cancellation uses for true
removal.
"""

from __future__ import annotations

import heapq
from operator import attrgetter

L0_BITS = 8
L0_SLOTS = 1 << L0_BITS     #: 256 one-tick (1 virtual ms) buckets.
L0_MASK = L0_SLOTS - 1
L1_SLOTS = 64               #: 64 buckets of 256 ticks each.
L1_MASK = L1_SLOTS - 1
L1_SPAN = L0_SLOTS * L1_SLOTS  #: Ticks from the window base to the far horizon.

#: Placement sentinel for events that left the wheel's bucket arrays: they
#: sit in the simulator's ready run, where cancellation is flag-only (the
#: dispatch loop skips flagged events; true removal would shift positions
#: under the dispatch cursor).
DRAINED = object()

_SORT_KEY = attrgetter("time", "seq")


class TimerWheel:
    """Two-level timer wheel with a far-future heap and windowed drains."""

    __slots__ = ("_l0", "_l1", "_far", "_far_dead", "_base", "_n0", "_n1")

    def __init__(self) -> None:
        self._l0: list[list] = [[] for _ in range(L0_SLOTS)]
        self._l1: list[list] = [[] for _ in range(L1_SLOTS)]
        self._far: list[tuple] = []   # heap of (time, seq, event)
        self._far_dead = 0            # cancelled entries still in the far heap
        self._base = 0                # first tick of the L0 window, 256-aligned
        self._n0 = 0                  # entries sitting in L0 (cancel holes included)
        self._n1 = 0

    # -------------------------------------------------------------- insertion

    def insert(self, event, tick: int) -> None:
        """Place ``event`` (at integer tick ``tick``) into the wheel, O(1).

        Precondition (maintained by the simulator): ``tick`` is at or beyond
        the window base -- events landing inside an already-drained window
        merge into the simulator's ready run instead.
        """
        offset = tick - self._base
        if offset < L0_SLOTS:
            bucket = self._l0[tick & L0_MASK]
            self._n0 += 1
        elif offset < L1_SPAN:
            bucket = self._l1[(tick >> L0_BITS) & L1_MASK]
            self._n1 += 1
        else:
            event._slots = None  # far heap: tombstone on cancel, compacted
            heapq.heappush(self._far, (event.time, event.seq, event))
            return
        event._slots = bucket
        event._pos = len(bucket)
        bucket.append(event)

    def note_far_cancel(self) -> None:
        """Record a far-heap cancellation; compact once dead entries win."""
        self._far_dead += 1
        if self._far_dead > len(self._far) // 2:
            self._far = [entry for entry in self._far if not entry[2].cancelled]
            heapq.heapify(self._far)
            self._far_dead = 0

    # --------------------------------------------------------------- draining

    def drain_next(self):
        """Remove and return the current window as ``(last_tick, events)``.

        ``events`` is every live event in the current 256-tick L0 window,
        sorted by ``(time, seq)``; ``last_tick`` is the window's final tick
        (events scheduled later at or before it belong in the returned run,
        not the wheel).  The window is advanced past the drained span, so
        the next call serves the following window.  Returns ``None`` when
        the wheel holds no live events at all.
        """
        while True:
            if self._n0:
                l0 = self._l0
                events = []
                extend = events.extend
                for cursor in range(L0_SLOTS):
                    bucket = l0[cursor]
                    if bucket:
                        extend(bucket)
                        l0[cursor] = []
                self._n0 = 0
                # Cancelled entries were overwritten with None by
                # ScheduledEvent.cancel (true removal).
                if None in events:
                    events = [e for e in events if e is not None]
                    if not events:
                        continue
                events.sort(key=_SORT_KEY)
                for e in events:
                    e._slots = DRAINED
                last_tick = self._base + L0_SLOTS - 1
                self._advance_window()
                return (last_tick, events)
            if self._n1:
                self._advance_window()
                continue
            # L0 and L1 are empty: jump the window straight to the first
            # live far-heap entry instead of cascading through dead time.
            far = self._far
            while far and far[0][2].cancelled:
                heapq.heappop(far)
                self._far_dead -= 1
            if not far:
                return None
            self._base = ((int(far[0][0]) >> L0_BITS) << L0_BITS) - L0_SLOTS
            self._advance_window()

    # -------------------------------------------------------------- internals

    def _advance_window(self) -> None:
        """Move the L0 window forward one span: cascade L1, feed the far heap."""
        base = self._base + L0_SLOTS
        self._base = base
        l0 = self._l0
        bucket = self._l1[(base >> L0_BITS) & L1_MASK]
        if bucket:
            self._n1 -= len(bucket)
            for e in bucket:
                if e is not None:
                    slot = l0[int(e.time) & L0_MASK]
                    e._slots = slot
                    e._pos = len(slot)
                    slot.append(e)
                    self._n0 += 1
            bucket.clear()
        far = self._far
        if far:
            horizon = base + L1_SPAN
            while far and far[0][0] < horizon:
                e = heapq.heappop(far)[2]
                if e.cancelled:
                    self._far_dead -= 1
                    continue
                tick = int(e.time)
                if tick - base < L0_SLOTS:
                    slot = l0[tick & L0_MASK]
                    self._n0 += 1
                else:
                    slot = self._l1[(tick >> L0_BITS) & L1_MASK]
                    self._n1 += 1
                e._slots = slot
                e._pos = len(slot)
                slot.append(e)
