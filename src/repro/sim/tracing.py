"""Structured event tracing.

Every significant action in a run -- message send/delivery, crash, recovery,
vote, decision, result delivery, disk write -- is recorded as a
:class:`TraceEvent`.  The trace is the single source of truth used by

* the specification checker (``repro.core.spec``) to verify the e-Transaction
  properties on a concrete execution,
* the metrics package to count communication steps (Figures 1 and 7) and to
  attribute latency to protocol components (Figure 8),
* tests, which assert on the presence/absence/ordering of events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes
    ----------
    time:
        Virtual time at which the event occurred.
    category:
        Machine-readable event kind, e.g. ``"msg_send"``, ``"crash"``,
        ``"db_commit"``, ``"client_deliver"``.
    process:
        Name of the process the event is attributed to ("" for global events).
    data:
        Free-form payload describing the event.
    """

    time: float
    category: str
    process: str
    data: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Shorthand for ``event.data.get(key, default)``."""
        return self.data.get(key, default)


class TraceRecorder:
    """Append-only recorder of :class:`TraceEvent` objects with query helpers."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._events: list[TraceEvent] = []
        self.enabled = True

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach (or re-attach) the virtual-clock accessor used for timestamps."""
        self._clock = clock

    # --------------------------------------------------------------- record

    def record(self, category: str, process: str = "", **data: Any) -> Optional[TraceEvent]:
        """Record an event at the current virtual time and return it."""
        if not self.enabled:
            return None
        event = TraceEvent(time=self._clock(), category=category, process=process, data=data)
        self._events.append(event)
        return event

    # ---------------------------------------------------------------- query

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> list[TraceEvent]:
        """The full event list (do not mutate)."""
        return self._events

    def select(self, category: Optional[str] = None, process: Optional[str] = None,
               **data_filters: Any) -> list[TraceEvent]:
        """Return events matching the given category/process/data filters."""
        out = []
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if process is not None and event.process != process:
                continue
            if any(event.data.get(k) != v for k, v in data_filters.items()):
                continue
            out.append(event)
        return out

    def count(self, category: Optional[str] = None, process: Optional[str] = None,
              **data_filters: Any) -> int:
        """Number of events matching the filters."""
        return len(self.select(category, process, **data_filters))

    def first(self, category: Optional[str] = None, process: Optional[str] = None,
              **data_filters: Any) -> Optional[TraceEvent]:
        """First matching event, or ``None``."""
        matches = self.select(category, process, **data_filters)
        return matches[0] if matches else None

    def last(self, category: Optional[str] = None, process: Optional[str] = None,
             **data_filters: Any) -> Optional[TraceEvent]:
        """Last matching event, or ``None``."""
        matches = self.select(category, process, **data_filters)
        return matches[-1] if matches else None

    def categories(self) -> set[str]:
        """The set of distinct categories recorded so far."""
        return {e.category for e in self._events}

    def between(self, start: float, end: float) -> list[TraceEvent]:
        """Events with ``start <= time <= end``."""
        return [e for e in self._events if start <= e.time <= end]

    def summary(self) -> dict[str, int]:
        """Histogram of event counts per category."""
        hist: dict[str, int] = {}
        for event in self._events:
            hist[event.category] = hist.get(event.category, 0) + 1
        return hist

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Append pre-built events (used by tests and replay tooling)."""
        self._events.extend(events)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
