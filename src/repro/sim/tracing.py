"""Structured event tracing: a publish/subscribe event bus with retention.

Every significant action in a run -- message send/delivery, crash, recovery,
vote, decision, result delivery, disk write -- is recorded as a
:class:`TraceEvent`.  Consumers attach in two ways:

* **streaming** -- ``trace.subscribe(category, callback)`` delivers each event
  of that category as it is recorded.  The online specification monitor
  (:class:`repro.core.spec.SpecMonitor`) and the streaming metrics
  accumulators work this way, so they see every event even when the recorder
  stores nothing;
* **post-hoc** -- the query helpers (``select``/``count``/``first``/``last``/
  ``between``) read back the *stored* events.  How many events are stored is
  the recorder's **retention policy**:

  - ``full`` (default) -- keep everything; all queries see the whole history.
  - ``ring:N`` -- keep only the most recent ``N`` events (a flight recorder);
    memory is bounded, queries see a suffix of the history.
  - ``off`` -- store nothing; :meth:`record` is a near-no-op for categories
    nobody subscribed to (the event object is not even constructed).

Hot paths ask :meth:`wants` before assembling expensive event payloads, so a
category that is neither stored nor subscribed costs one dictionary probe.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional, Union

RETENTION_FULL = "full"
RETENTION_OFF = "off"
RETENTION_RING = "ring"


def parse_retention(policy: str) -> tuple[str, Optional[int]]:
    """Parse a retention policy string into ``(mode, capacity)``.

    Accepted forms: ``"full"``, ``"off"``, ``"ring:N"`` with ``N >= 1``.
    """
    if policy == RETENTION_FULL:
        return RETENTION_FULL, None
    if policy == RETENTION_OFF:
        return RETENTION_OFF, None
    if policy.startswith("ring:"):
        try:
            capacity = int(policy[len("ring:"):])
        except ValueError:
            raise ValueError(f"bad ring capacity in retention policy {policy!r}") from None
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        return RETENTION_RING, capacity
    raise ValueError(f"unknown trace retention policy {policy!r} "
                     "(expected 'full', 'off' or 'ring:N')")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes
    ----------
    time:
        Virtual time at which the event occurred.
    category:
        Machine-readable event kind, e.g. ``"msg_send"``, ``"crash"``,
        ``"db_commit"``, ``"client_deliver"``.
    process:
        Name of the process the event is attributed to ("" for global events).
    data:
        Free-form payload describing the event.
    """

    time: float
    category: str
    process: str
    data: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Shorthand for ``event.data.get(key, default)``."""
        return self.data.get(key, default)


Subscriber = Callable[[TraceEvent], None]


class TraceRecorder:
    """Event bus plus (retention-bounded) store of :class:`TraceEvent` objects."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 retention: str = RETENTION_FULL):
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._events: Union[list[TraceEvent], deque[TraceEvent]] = []
        self._subscribers: dict[str, list[Subscriber]] = {}
        # record() stamps a monotone virtual clock, so the store is normally
        # time-ordered; extend() may break that, which downgrades between()
        # from bisect to a linear scan.
        self._time_ordered = True
        self.enabled = True
        self._store = True
        self._retention = RETENTION_FULL
        self._capacity: Optional[int] = None
        if retention != RETENTION_FULL:
            self.set_retention(retention)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach (or re-attach) the virtual-clock accessor used for timestamps."""
        self._clock = clock

    # ------------------------------------------------------------- retention

    @property
    def retention(self) -> str:
        """The active retention policy (``full``, ``off`` or ``ring:N``)."""
        if self._retention == RETENTION_RING:
            return f"ring:{self._capacity}"
        return self._retention

    def set_retention(self, policy: str) -> None:
        """Switch retention policy; already-stored events are kept (a ring
        trims them to its capacity, ``off`` stops storing new ones)."""
        mode, capacity = parse_retention(policy)
        self._retention = mode
        self._capacity = capacity
        if mode == RETENTION_RING:
            self._events = deque(self._events, maxlen=capacity)
            self._store = True
        else:
            self._events = list(self._events)
            self._store = mode == RETENTION_FULL

    # ----------------------------------------------------------------- bus

    def subscribe(self, category: str, callback: Subscriber) -> Callable[[], None]:
        """Deliver every recorded event of ``category`` to ``callback``.

        Returns an unsubscribe function.  Subscribers see events regardless of
        the retention policy, in record order, synchronously.
        """
        self._subscribers.setdefault(category, []).append(callback)

        def unsubscribe() -> None:
            callbacks = self._subscribers.get(category)
            if callbacks and callback in callbacks:
                callbacks.remove(callback)
                if not callbacks:
                    del self._subscribers[category]

        return unsubscribe

    def subscribed_categories(self) -> set[str]:
        """Categories with at least one live subscriber."""
        return set(self._subscribers)

    def wants(self, category: str) -> bool:
        """Whether recording ``category`` has any effect (stored or consumed).

        Hot paths check this before building expensive event payloads.
        """
        return self.enabled and (self._store or category in self._subscribers)

    # --------------------------------------------------------------- record

    def record(self, category: str, process: str = "", **data: Any) -> Optional[TraceEvent]:
        """Record an event at the current virtual time and dispatch it.

        With retention ``off`` and no subscriber for ``category`` this is a
        near-no-op: no :class:`TraceEvent` is constructed.
        """
        if not self.enabled:
            return None
        subscribers = self._subscribers.get(category)
        if not self._store and subscribers is None:
            return None
        event = TraceEvent(time=self._clock(), category=category, process=process, data=data)
        if self._store:
            self._events.append(event)
        if subscribers is not None:
            for callback in subscribers:
                callback(event)
        return event

    # ---------------------------------------------------------------- query

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> Union[list[TraceEvent], deque[TraceEvent]]:
        """The stored events (do not mutate; a ring stores only a suffix)."""
        return self._events

    @staticmethod
    def _matches(event: TraceEvent, category: Optional[str], process: Optional[str],
                 data_filters: dict[str, Any]) -> bool:
        if category is not None and event.category != category:
            return False
        if process is not None and event.process != process:
            return False
        return not any(event.data.get(k) != v for k, v in data_filters.items())

    def select(self, category: Optional[str] = None, process: Optional[str] = None,
               **data_filters: Any) -> list[TraceEvent]:
        """Return stored events matching the given category/process/data filters."""
        return [e for e in self._events
                if self._matches(e, category, process, data_filters)]

    def count(self, category: Optional[str] = None, process: Optional[str] = None,
              **data_filters: Any) -> int:
        """Number of stored events matching the filters (no list materialised)."""
        return sum(1 for e in self._events
                   if self._matches(e, category, process, data_filters))

    def first(self, category: Optional[str] = None, process: Optional[str] = None,
              **data_filters: Any) -> Optional[TraceEvent]:
        """First matching stored event, or ``None`` (short-circuits)."""
        return next((e for e in self._events
                     if self._matches(e, category, process, data_filters)), None)

    def last(self, category: Optional[str] = None, process: Optional[str] = None,
             **data_filters: Any) -> Optional[TraceEvent]:
        """Last matching stored event, or ``None`` (scans backwards)."""
        return next((e for e in reversed(self._events)
                     if self._matches(e, category, process, data_filters)), None)

    def categories(self) -> set[str]:
        """The set of distinct categories stored so far."""
        return {e.category for e in self._events}

    def between(self, start: float, end: float) -> list[TraceEvent]:
        """Stored events with ``start <= time <= end``.

        The trace is recorded in non-decreasing time order, so the window is
        located with :func:`bisect` instead of a full scan (unless
        :meth:`extend` injected out-of-order events, which falls back to the
        scan).
        """
        if not self._time_ordered:
            return [e for e in self._events if start <= e.time <= end]
        events = self._events if isinstance(self._events, list) else list(self._events)
        lo = bisect_left(events, start, key=lambda e: e.time)
        hi = bisect_right(events, end, key=lambda e: e.time)
        return events[lo:hi]

    def summary(self) -> dict[str, int]:
        """Histogram of stored event counts per category."""
        hist: dict[str, int] = {}
        for event in self._events:
            hist[event.category] = hist.get(event.category, 0) + 1
        return hist

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Append pre-built events (used by tests and replay tooling).

        Extended events are stored (subject to retention) but not dispatched
        to subscribers: they describe the past, not something happening now.
        """
        for event in events:
            if self._events and event.time < self._events[-1].time:
                self._time_ordered = False
            self._events.append(event)

    def ingest(self, event: TraceEvent) -> None:
        """Store a pre-built event *and* dispatch it to subscribers.

        The merge point of a sharded run feeds shard-recorded events through
        here in global order: unlike :meth:`extend` they are happening "now"
        from the central recorder's point of view, so the metric streams and
        the spec monitor must see them.
        """
        if self._store:
            if self._events and event.time < self._events[-1].time:
                self._time_ordered = False
            self._events.append(event)
        subscribers = self._subscribers.get(event.category)
        if subscribers is not None:
            for callback in subscribers:
                callback(event)

    def clear(self) -> None:
        """Drop all stored events (subscriptions stay)."""
        self._events.clear()
        self._time_ordered = True
