"""Process and thread model.

A :class:`Process` models one node of the three-tier system (a client, an
application server or a database server).  Processes

* host any number of generator-coroutine *threads* (the paper's ``cobegin``
  branches, e.g. the application server's computation and cleaning threads),
* exchange messages through a transport installed by ``repro.net``,
* crash (losing all volatile state: mailbox, threads, local variables) and
  recover (restarting their entry point with ``recovery=True``), exactly as in
  the paper's crash/recovery model -- stable storage is modelled separately in
  ``repro.storage`` and survives crashes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.errors import ProcessNotRunning, ThreadError
from repro.sim.scheduler import ScheduledEvent, Simulator
from repro.sim.waits import TIMEOUT, Receive, SimFuture, Sleep, Wait, WaitFuture

ProtocolGenerator = Generator[Wait, Any, Any]


class Thread:
    """A single coroutine of protocol logic hosted on a process.

    The coroutine yields :class:`~repro.sim.waits.Wait` objects and is resumed
    with the wait's result (a message, :data:`TIMEOUT`, a future value, or
    ``None`` after a sleep).
    """

    def __init__(self, process: "Process", generator: ProtocolGenerator, name: str):
        self.id = process.sim.next_thread_id()
        self.process = process
        self.generator = generator
        self.name = name
        self.alive = True
        self.finished = False
        self._pending_timer: Optional[ScheduledEvent] = None
        self._pending_receive: Optional[Receive] = None
        self._pending_future: Optional[SimFuture] = None
        self._pending_future_callback: Optional[Callable[[Any], None]] = None
        self._wait_token = 0

    # ----------------------------------------------------------------- state

    @property
    def waiting_on_receive(self) -> Optional[Receive]:
        """The receive wait this thread is currently blocked on, if any."""
        return self._pending_receive

    def kill(self) -> None:
        """Terminate the thread, cancelling any pending timer or wait."""
        if not self.alive:
            return
        self.alive = False
        self._cancel_pending()
        self.generator.close()

    def _cancel_pending(self) -> None:
        self._wait_token += 1
        if self._pending_timer is not None:
            self._pending_timer.cancel()
            self._pending_timer = None
        self._pending_receive = None
        if self._pending_future is not None and self._pending_future_callback is not None:
            self._pending_future.discard_callback(self._pending_future_callback)
        self._pending_future = None
        self._pending_future_callback = None

    # ------------------------------------------------------------- stepping

    def start(self) -> None:
        """Begin executing the coroutine (runs until its first wait)."""
        self._advance(None)

    def resume(self, value: Any) -> None:
        """Resume the coroutine with ``value`` as the result of its last wait."""
        self._cancel_pending()
        self._advance(value)

    def _advance(self, value: Any) -> None:
        if not self.alive or self.finished:
            return
        try:
            wait = self.generator.send(value)
        except StopIteration:
            self.finished = True
            self.alive = False
            return
        except Exception as exc:  # surface protocol bugs loudly
            self.finished = True
            self.alive = False
            self.process.trace.record(
                "thread_error", self.process.name, thread=self.name, error=repr(exc)
            )
            raise ThreadError(f"thread {self.name!r} on {self.process.name!r} failed") from exc
        self._handle_wait(wait)

    def _handle_wait(self, wait: Wait) -> None:
        if isinstance(wait, Sleep):
            self._arm_timer(wait.delay, result=None)
        elif isinstance(wait, Receive):
            self._handle_receive(wait)
        elif isinstance(wait, WaitFuture):
            self._handle_future(wait)
        else:
            raise ThreadError(
                f"thread {self.name!r} yielded unsupported wait object {wait!r}"
            )

    def _arm_timer(self, delay: float, result: Any) -> None:
        token = self._wait_token

        def fire() -> None:
            if self.alive and token == self._wait_token:
                self.resume(result)

        self._pending_timer = self.process.sim.schedule(
            delay, fire, name=f"{self.process.name}/{self.name}:timer"
        )

    def _handle_receive(self, wait: Receive) -> None:
        message = self.process._take_from_mailbox(wait)
        if message is not None:
            # Resume via the scheduler to keep same-time ordering deterministic
            # and to avoid unbounded recursion through long message chains.
            token = self._wait_token

            def deliver() -> None:
                if self.alive and token == self._wait_token:
                    self.resume(message)

            self._pending_timer = self.process.sim.call_soon(
                deliver, name=f"{self.process.name}/{self.name}:mailbox"
            )
            return
        self._pending_receive = wait
        if wait.timeout is not None:
            self._arm_timer(wait.timeout, result=TIMEOUT)

    def _handle_future(self, wait: WaitFuture) -> None:
        token = self._wait_token

        def on_resolve(value: Any) -> None:
            if self.alive and token == self._wait_token:
                self.resume(value)

        if wait.future.resolved:
            self._pending_timer = self.process.sim.call_soon(
                lambda: on_resolve(wait.future.value),
                name=f"{self.process.name}/{self.name}:future",
            )
            return
        self._pending_future = wait.future
        self._pending_future_callback = on_resolve
        wait.future.on_resolve(on_resolve)
        if wait.timeout is not None:
            self._arm_timer(wait.timeout, result=TIMEOUT)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else ("finished" if self.finished else "dead")
        return f"<Thread {self.process.name}/{self.name} ({state})>"


class Process:
    """A simulated node that can crash and recover.

    Subclasses override :meth:`on_start` to spawn their protocol threads, and
    may override :meth:`on_crash` to drop additional volatile state.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.up = True
        self.crash_count = 0
        self._mailbox: deque[Any] = deque()
        self._threads: list[Thread] = []
        self._transport: Optional[Any] = None  # installed by repro.net.Network
        self._started = False

    # ------------------------------------------------------------ properties

    @property
    def trace(self):
        """The shared trace recorder."""
        return self.sim.trace

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    @property
    def threads(self) -> list[Thread]:
        """Threads spawned since the last crash (finished ones may have been
        pruned by the message-delivery fast path)."""
        return list(self._threads)

    @property
    def mailbox_size(self) -> int:
        """Number of buffered, not-yet-consumed messages."""
        return len(self._mailbox)

    def rng(self, stream: Optional[str] = None):
        """Deterministic random stream scoped to this process."""
        return self.sim.rng(stream if stream is not None else self.name)

    # --------------------------------------------------------------- startup

    def start(self) -> None:
        """Start the process for the first time (calls :meth:`on_start`)."""
        self._started = True
        self.on_start(recovery=False)

    def on_start(self, recovery: bool) -> None:
        """Spawn protocol threads.  Subclasses override."""

    def on_crash(self) -> None:
        """Hook for subclasses to drop extra volatile state on crash."""

    # ------------------------------------------------------------ coroutines

    def spawn(self, generator: ProtocolGenerator, name: str = "thread") -> Thread:
        """Spawn a coroutine thread on this process and start it immediately."""
        if not self.up:
            raise ProcessNotRunning(f"cannot spawn thread on crashed process {self.name!r}")
        thread = Thread(self, generator, name)
        self._threads.append(thread)
        thread.start()
        return thread

    # Wait-constructor helpers so protocol code reads naturally -------------

    def sleep(self, delay: float) -> Sleep:
        """``yield self.sleep(d)`` suspends the calling thread for ``d``."""
        return Sleep(delay)

    def receive(self, matcher: Optional[Callable[[Any], bool]] = None,
                timeout: Optional[float] = None) -> Receive:
        """``yield self.receive(...)`` waits for a matching message."""
        return Receive(matcher, timeout)

    def wait_for(self, future: SimFuture, timeout: Optional[float] = None) -> WaitFuture:
        """``yield self.wait_for(f)`` waits for ``f`` to resolve."""
        return WaitFuture(future, timeout)

    # ------------------------------------------------------------- messaging

    def attach_transport(self, transport: Any) -> None:
        """Install the network transport (called by ``repro.net.Network``)."""
        self._transport = transport

    def send(self, destination: str, message: Any) -> None:
        """Send ``message`` to the process named ``destination``.

        Sends from a crashed process are silently dropped, matching the model
        in which a down process performs no actions.
        """
        if not self.up:
            return
        if self._transport is None:
            raise ProcessNotRunning(f"process {self.name!r} has no transport attached")
        self._transport.send(self.name, destination, message)

    def multicast(self, destinations: Iterable[str], message: Any) -> None:
        """Send a copy of ``message`` to every process in ``destinations``.

        There is no atomicity guarantee (matching the paper's model); each copy
        is an independent message with its own identifier.
        """
        for destination in destinations:
            payload = message.copy() if hasattr(message, "copy") and callable(message.copy) else message
            self.send(destination, payload)

    def deliver(self, message: Any) -> None:
        """Deliver a message to this process (called by the network).

        Messages arriving at a crashed process are dropped; otherwise the
        message either resumes a thread blocked on a matching receive or is
        buffered in the mailbox.
        """
        if not self.up:
            return
        finished = 0
        for thread in self._threads:
            if not thread.alive:
                finished += 1
                continue
            wait = thread.waiting_on_receive
            if wait is not None and wait.matches(message):
                thread.resume(message)
                return
        # Long-lived processes spawn short-lived threads (one per request);
        # prune the dead ones now and then so delivery stays proportional to
        # the number of *live* threads, not to the run's total history.
        if finished > 32 and finished > len(self._threads) // 2:
            self._threads = [t for t in self._threads if t.alive or not t.finished]
        self._mailbox.append(message)

    def _take_from_mailbox(self, wait: Receive) -> Optional[Any]:
        """Remove and return the first buffered message matching ``wait``."""
        mailbox = self._mailbox
        if not mailbox:
            return None
        # Fast path: a receive usually consumes the oldest buffered message
        # (FIFO traffic), and popleft is O(1) where ``del deque[index]`` is
        # O(n) -- this is the hot path of high-rate runs.
        if wait.matches(mailbox[0]):
            return mailbox.popleft()
        for index in range(1, len(mailbox)):
            message = mailbox[index]
            if wait.matches(message):
                del mailbox[index]
                return message
        return None

    # ------------------------------------------------------- crash / recover

    def crash(self) -> None:
        """Crash the process: kill all threads and lose all volatile state."""
        if not self.up:
            return
        self.up = False
        self.crash_count += 1
        for thread in self._threads:
            thread.kill()
        self._threads.clear()
        self._mailbox.clear()
        self.on_crash()
        self.trace.record("crash", self.name)

    def recover(self) -> None:
        """Bring the process back up and restart its entry point."""
        if self.up:
            return
        self.up = True
        self.trace.record("recover", self.name)
        self.on_start(recovery=True)

    def crash_for(self, downtime: float) -> None:
        """Crash now and automatically recover after ``downtime`` virtual time."""
        self.crash()
        self.sim.schedule(downtime, self.recover, name=f"{self.name}:recover")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"<Process {self.name} ({state})>"
