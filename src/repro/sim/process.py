"""Process and thread model.

A :class:`Process` models one node of the three-tier system (a client, an
application server or a database server).  Processes

* host any number of generator-coroutine *threads* (the paper's ``cobegin``
  branches, e.g. the application server's computation and cleaning threads),
* exchange messages through a transport installed by ``repro.net``,
* crash (losing all volatile state: mailbox, threads, local variables) and
  recover (restarting their entry point with ``recovery=True``), exactly as in
  the paper's crash/recovery model -- stable storage is modelled separately in
  ``repro.storage`` and survives crashes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.runtime.base import Kernel
from repro.sim.errors import ProcessNotRunning, ThreadError
from repro.sim.waits import TIMEOUT, Receive, SimFuture, Sleep, Wait, WaitFuture

ProtocolGenerator = Generator[Wait, Any, Any]

_UNKEYED = object()
"""Mailbox correlation bucket for messages without a usable ``j`` payload."""


class Thread:
    """A single coroutine of protocol logic hosted on a process.

    The coroutine yields :class:`~repro.sim.waits.Wait` objects and is resumed
    with the wait's result (a message, :data:`TIMEOUT`, a future value, or
    ``None`` after a sleep).
    """

    __slots__ = ("id", "process", "generator", "name", "alive", "finished",
                 "_pending_timer", "_pending_receive", "_pending_future",
                 "_pending_future_callback", "_wait_token", "_armed_token",
                 "_armed_result", "_fire_cb", "_future_cb", "_timer_name",
                 "_mailbox_name", "_future_name")

    def __init__(self, process: "Process", generator: ProtocolGenerator, name: str):
        # Thread ids are scoped to the hosting process: waiter ordering only
        # ever compares threads of one process, and a process-local counter
        # keeps the ids independent of what other processes did first -- which
        # is what lets a sharded run (one kernel per shard) hand out exactly
        # the ids a serial run would.
        self.id = process._next_thread_id()
        self.process = process
        self.generator = generator
        self.name = name
        self.alive = True
        self.finished = False
        # A cancellable timer handle from the kernel (a ScheduledEvent under
        # the simulator, a WallEvent under the asyncio backend).
        self._pending_timer: Optional[Any] = None
        self._pending_receive: Optional[Receive] = None
        self._pending_future: Optional[SimFuture] = None
        self._pending_future_callback: Optional[Callable[[Any], None]] = None
        self._wait_token = 0
        # Timer/mailbox wake-ups reuse one prebound callback plus these two
        # slots instead of allocating a capturing closure per wait: a thread
        # has at most one armed wake-up at a time, and the token check makes
        # a stale callback (cancel raced the fire) a no-op.
        self._armed_token = -1
        self._armed_result: Any = None
        self._fire_cb = self._fire
        self._future_cb = self._on_future
        # Event names are only read by humans debugging a run; building them
        # per wait with f-strings was measurable on the hot path, so they are
        # rendered once per (process, thread-name) pair and shared by every
        # short-lived thread reusing the same name.  Per-request names
        # ("as-handle:c1:37") would grow the cache by one entry per
        # transaction for the rest of the run, so it is cleared when it
        # outgrows the stable name set.
        cache = process._thread_names
        names = cache.get(name)
        if names is None:
            base = f"{process.name}/{name}"
            names = (base + ":timer", base + ":mailbox", base + ":future")
            if len(cache) >= 64:
                cache.clear()
            cache[name] = names
        self._timer_name, self._mailbox_name, self._future_name = names

    # ----------------------------------------------------------------- state

    @property
    def waiting_on_receive(self) -> Optional[Receive]:
        """The receive wait this thread is currently blocked on, if any."""
        return self._pending_receive

    def kill(self) -> None:
        """Terminate the thread, cancelling any pending timer or wait."""
        if not self.alive:
            return
        self.alive = False
        self._cancel_pending()
        self.generator.close()

    def _cancel_pending(self) -> None:
        self._wait_token += 1
        self._armed_result = None
        if self._pending_timer is not None:
            self._pending_timer.cancel()
            self._pending_timer = None
        if self._pending_receive is not None:
            self.process._unregister_waiter(self, self._pending_receive)
            self._pending_receive = None
        if self._pending_future is not None and self._pending_future_callback is not None:
            self._pending_future.discard_callback(self._pending_future_callback)
        self._pending_future = None
        self._pending_future_callback = None

    # ------------------------------------------------------------- stepping

    def start(self) -> None:
        """Begin executing the coroutine (runs until its first wait)."""
        self._advance(None)

    def resume(self, value: Any) -> None:
        """Resume the coroutine with ``value`` as the result of its last wait."""
        self._cancel_pending()
        self._advance(value)

    def _advance(self, value: Any) -> None:
        if not self.alive or self.finished:
            return
        try:
            wait = self.generator.send(value)
        except StopIteration:
            self.finished = True
            self.alive = False
            self.process._note_thread_finished()
            return
        except Exception as exc:  # surface protocol bugs loudly
            self.finished = True
            self.alive = False
            self.process._note_thread_finished()
            self.process.trace.record(
                "thread_error", self.process.name, thread=self.name, error=repr(exc)
            )
            raise ThreadError(f"thread {self.name!r} on {self.process.name!r} failed") from exc
        self._handle_wait(wait)

    def _handle_wait(self, wait: Wait) -> None:
        # Exact-type dispatch: the three wait classes are final in practice,
        # and ``type is`` is measurably cheaper than an isinstance chain on
        # the per-event hot path.  Subclasses still land in the fallback.
        cls = wait.__class__
        if cls is Receive:
            self._handle_receive(wait)
        elif cls is Sleep:
            self._arm_timer(wait.delay, result=None)
        elif cls is WaitFuture:
            self._handle_future(wait)
        elif isinstance(wait, Sleep):
            self._arm_timer(wait.delay, result=None)
        elif isinstance(wait, Receive):
            self._handle_receive(wait)
        elif isinstance(wait, WaitFuture):
            self._handle_future(wait)
        else:
            raise ThreadError(
                f"thread {self.name!r} yielded unsupported wait object {wait!r}"
            )

    def _fire(self, _arg: Any = None) -> None:
        """Prebound timer/mailbox wake-up: resume with the armed result.

        Dropping the handle *first* is what lets the wake-up events come
        from the kernel's recycled pool (``schedule_call``): once an event
        has fired, no stale ``_pending_timer`` reference survives for
        ``_cancel_pending`` to cancel, so a cancel can never land on a
        recycled, live event.  The ``_arg`` parameter only absorbs the
        argument-carrying kernels pass; it is unused.
        """
        self._pending_timer = None
        if self.alive and self._armed_token == self._wait_token:
            self.resume(self._armed_result)

    def _on_future(self, value: Any) -> None:
        """Prebound future-resolution wake-up."""
        if self.alive and self._armed_token == self._wait_token:
            self.resume(value)

    def _arm_timer(self, delay: float, result: Any) -> None:
        self._armed_token = self._wait_token
        self._armed_result = result
        # Pooled event: safe because _fire clears _pending_timer before it
        # can ever be cancelled (see _fire), so the handle is never retained
        # past dispatch.
        self._pending_timer = self.process.sim.schedule_call(
            delay, self._fire_cb, None, name=self._timer_name
        )

    def _handle_receive(self, wait: Receive) -> None:
        message = self.process._take_from_mailbox(wait)
        if message is not None:
            # Resume via the scheduler to keep same-time ordering deterministic
            # and to avoid unbounded recursion through long message chains.
            self._armed_token = self._wait_token
            self._armed_result = message
            self._pending_timer = self.process.sim.call_soon_call(
                self._fire_cb, None, name=self._mailbox_name
            )
            return
        self._pending_receive = wait
        self.process._register_waiter(self, wait)
        if wait.timeout is not None:
            self._arm_timer(wait.timeout, result=TIMEOUT)

    def _handle_future(self, wait: WaitFuture) -> None:
        if wait.future.resolved:
            self._armed_token = self._wait_token
            self._armed_result = wait.future.value
            self._pending_timer = self.process.sim.call_soon_call(
                self._fire_cb, None, name=self._future_name
            )
            return
        self._armed_token = self._wait_token
        self._pending_future = wait.future
        self._pending_future_callback = self._future_cb
        wait.future.on_resolve(self._future_cb)
        if wait.timeout is not None:
            self._arm_timer(wait.timeout, result=TIMEOUT)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else ("finished" if self.finished else "dead")
        return f"<Thread {self.process.name}/{self.name} ({state})>"


class Process:
    """A simulated node that can crash and recover.

    Subclasses override :meth:`on_start` to spawn their protocol threads, and
    may override :meth:`on_crash` to drop additional volatile state.
    """

    def __init__(self, sim: Kernel, name: str):
        self.sim = sim
        self.name = name
        self.up = True
        self.crash_count = 0
        # The mailbox is bucketed by message type and then by the ``j``
        # correlation id: a receive whose matcher carries the hints (see
        # ``repro.net.message``) only scans the buckets it could match, so
        # messages nobody will ever consume (stale retransmitted votes and
        # acknowledgements of already-terminated transactions) stop taxing
        # every later receive.  Sequence numbers preserve the global arrival
        # order; buckets emptied by a take are deleted so wildcard scans stay
        # proportional to the *live* backlog.
        self._mailbox: dict[Any, dict[Any, deque[tuple[int, Any]]]] = {}
        self._mailbox_seq = 0
        self._mailbox_count = 0
        # Admission control: with a non-zero limit, a message that would grow
        # the buffered backlog past it is shed (with an ``overload`` trace
        # event) instead of buffered.  Shedding is safe under the paper's
        # fair-lossy channel model -- senders cannot distinguish a shed from a
        # network loss -- and keeps a saturated process's memory bounded.
        self.mailbox_limit = 0
        self.shed_messages = 0
        self.mailbox_peak = 0
        self._threads: list[Thread] = []
        # Threads blocked on a receive, indexed by what their matcher could
        # accept: by (message type, correlation id) when the matcher pins a
        # ``j`` value, by message type when it accepts any ``j``, and as
        # wildcards when it carries no hint.  Delivery consults only the
        # matching buckets instead of scanning every hosted thread.
        self._kv_waiters: dict[tuple, dict[int, Thread]] = {}
        self._typed_waiters: dict[str, dict[int, Thread]] = {}
        self._wildcard_waiters: dict[int, Thread] = {}
        self._thread_names: dict[str, tuple[str, str, str]] = {}
        self._finished_threads = 0
        self._thread_ids = 0
        self._transport: Optional[Any] = None  # installed by repro.net.Network
        self._started = False

    def _next_thread_id(self) -> int:
        self._thread_ids += 1
        return self._thread_ids

    # ------------------------------------------------------------ properties

    @property
    def trace(self):
        """The shared trace recorder."""
        return self.sim.trace

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    @property
    def threads(self) -> list[Thread]:
        """Threads spawned since the last crash (finished ones may have been
        pruned by the message-delivery fast path)."""
        return list(self._threads)

    @property
    def mailbox_size(self) -> int:
        """Number of buffered, not-yet-consumed messages."""
        return self._mailbox_count

    def rng(self, stream: Optional[str] = None):
        """Deterministic random stream scoped to this process."""
        return self.sim.rng(stream if stream is not None else self.name)

    # --------------------------------------------------------------- startup

    def start(self) -> None:
        """Start the process for the first time (calls :meth:`on_start`)."""
        self._started = True
        self.on_start(recovery=False)

    def on_start(self, recovery: bool) -> None:
        """Spawn protocol threads.  Subclasses override."""

    def on_crash(self) -> None:
        """Hook for subclasses to drop extra volatile state on crash."""

    # ------------------------------------------------------------ coroutines

    def spawn(self, generator: ProtocolGenerator, name: str = "thread") -> Thread:
        """Spawn a coroutine thread on this process and start it immediately."""
        if not self.up:
            raise ProcessNotRunning(f"cannot spawn thread on crashed process {self.name!r}")
        thread = Thread(self, generator, name)
        self._threads.append(thread)
        thread.start()
        return thread

    # Wait-constructor helpers so protocol code reads naturally -------------

    def sleep(self, delay: float) -> Sleep:
        """``yield self.sleep(d)`` suspends the calling thread for ``d``."""
        return Sleep(delay)

    def receive(self, matcher: Optional[Callable[[Any], bool]] = None,
                timeout: Optional[float] = None) -> Receive:
        """``yield self.receive(...)`` waits for a matching message."""
        return Receive(matcher, timeout)

    def wait_for(self, future: SimFuture, timeout: Optional[float] = None) -> WaitFuture:
        """``yield self.wait_for(f)`` waits for ``f`` to resolve."""
        return WaitFuture(future, timeout)

    # ------------------------------------------------------------- messaging

    def attach_transport(self, transport: Any) -> None:
        """Install the network transport (called by ``repro.net.Network``)."""
        self._transport = transport

    def send(self, destination: str, message: Any) -> None:
        """Send ``message`` to the process named ``destination``.

        Sends from a crashed process are silently dropped, matching the model
        in which a down process performs no actions.
        """
        if not self.up:
            return
        if self._transport is None:
            raise ProcessNotRunning(f"process {self.name!r} has no transport attached")
        self._transport.send(self.name, destination, message)

    def multicast(self, destinations: Iterable[str], message: Any) -> None:
        """Send a copy of ``message`` to every process in ``destinations``.

        There is no atomicity guarantee (matching the paper's model); each copy
        is an independent message with its own identifier.
        """
        copier = getattr(message, "copy", None)
        if copier is None or not callable(copier):
            for destination in destinations:
                self.send(destination, message)
            return
        send = self.send
        for destination in destinations:
            send(destination, copier())

    def _waiter_buckets(self, wait: Receive):
        """The index-bucket slots a blocked receive belongs to.

        Yields ``(bucket, None)`` for the long-lived type/wildcard buckets
        (message types form a small closed set, so those dicts live forever)
        and ``(self._kv_waiters, key)`` for correlation buckets -- those keys
        are transaction scoped, so the bucket itself is created at register
        time and pruned once it empties, instead of accumulating one dead
        dict per transaction for the rest of the run.
        """
        matcher = wait.matcher
        if matcher is None:
            yield self._wildcard_waiters, None
            return
        correlation = getattr(matcher, "msg_corr", None)
        types = getattr(matcher, "msg_types", None)
        if correlation is not None:
            # Types accepted by the matcher but absent from the correlation
            # hint (msg_types-only annotations) index as any-correlation.
            for msg_type in (types if types is not None else correlation):
                values = correlation.get(msg_type)
                if isinstance(values, frozenset):
                    for value in values:
                        yield self._kv_waiters, (msg_type, value)
                else:  # ANY_CORRELATION or no entry for this type
                    yield self._typed_waiters.setdefault(msg_type, {}), None
            return
        if types is None:
            yield self._wildcard_waiters, None
            return
        for msg_type in types:
            yield self._typed_waiters.setdefault(msg_type, {}), None

    def _register_waiter(self, thread: Thread, wait: Receive) -> None:
        """Index a thread that just blocked on a receive.

        The bucket list is resolved once per wait object and cached on it:
        matcher hints are immutable, and register/unregister always come in
        pairs, so computing the buckets twice was pure overhead.
        """
        buckets = wait._buckets
        if buckets is None:
            buckets = wait._buckets = list(self._waiter_buckets(wait))
        thread_id = thread.id
        for container, key in buckets:
            if key is not None:
                bucket = container.get(key)
                if bucket is None:
                    bucket = container[key] = {}
                bucket[thread_id] = thread
            else:
                container[thread_id] = thread

    def _unregister_waiter(self, thread: Thread, wait: Receive) -> None:
        """Drop a thread from the waiter index (wait satisfied or cancelled)."""
        buckets = wait._buckets
        if buckets is None:  # pragma: no cover - unregister without register
            buckets = wait._buckets = list(self._waiter_buckets(wait))
        thread_id = thread.id
        for container, key in buckets:
            if key is not None:
                bucket = container.get(key)
                if bucket is not None:
                    bucket.pop(thread_id, None)
                    if not bucket:
                        del container[key]
            else:
                container.pop(thread_id, None)

    def _note_thread_finished(self) -> None:
        """Called by a thread whose coroutine ran to completion."""
        self._finished_threads += 1

    def deliver(self, message: Any) -> None:
        """Deliver a message to this process (called by the network).

        Messages arriving at a crashed process are dropped; otherwise the
        message either resumes a thread blocked on a matching receive or is
        buffered in the mailbox.  Only waiters indexed under the message's
        type (plus wildcard waiters) are consulted; ties between threads are
        broken by spawn order, matching the historical full scan.
        """
        if not self.up:
            return
        msg_type = getattr(message, "msg_type", None)
        # Read the payload dict without touching ``Message.payload``: the
        # property would materialize a private copy of a COW-shared dict,
        # defeating the whole point of copy-on-write multicast.
        payload = getattr(message, "_payload", None)
        if payload is None:
            payload = getattr(message, "payload", None)
            if not isinstance(payload, dict):
                payload = None
        keyed = None
        if payload is not None and self._kv_waiters:
            try:
                keyed = self._kv_waiters.get((msg_type, payload.get("j")))
            except TypeError:  # unhashable correlation value
                keyed = None
        typed = self._typed_waiters.get(msg_type)
        wild = self._wildcard_waiters
        # Usually exactly one index bucket is populated, and it holds exactly
        # one waiter: iterate the dict view directly (no tuples built).
        # Merging and sorting a candidate list is only needed when several
        # buckets -- or several waiters in one bucket -- compete.  Thread ids
        # are unique per process, so tuple sort == sort by id.
        if keyed:
            if typed or wild:
                pairs = list(keyed.items())
                if typed:
                    pairs.extend(typed.items())
                if wild:
                    pairs.extend(wild.items())
                pairs.sort()
                candidates = [thread for _, thread in pairs]
            elif len(keyed) > 1:
                candidates = [thread for _, thread in sorted(keyed.items())]
            else:
                candidates = keyed.values()
        elif typed:
            if wild:
                pairs = list(typed.items())
                pairs.extend(wild.items())
                pairs.sort()
                candidates = [thread for _, thread in pairs]
            elif len(typed) > 1:
                candidates = [thread for _, thread in sorted(typed.items())]
            else:
                candidates = typed.values()
        elif wild:
            if len(wild) > 1:
                candidates = [thread for _, thread in sorted(wild.items())]
            else:
                candidates = wild.values()
        else:
            candidates = ()
        for thread in candidates:
            wait = thread._pending_receive
            if wait is not None and wait.matches(message):
                thread.resume(message)
                return
        # Long-lived processes spawn short-lived threads (one per request);
        # prune the dead ones now and then so the thread list stays
        # proportional to the number of *live* threads, not to the run's
        # total history.
        if self._finished_threads > 8 and \
                self._finished_threads > len(self._threads) // 2:
            self._threads = [t for t in self._threads if t.alive or not t.finished]
            self._finished_threads = 0
        limit = self.mailbox_limit
        if limit and self._mailbox_count >= limit:
            self.shed_messages += 1
            trace = self.sim.trace
            if trace.wants("overload"):
                trace.record("overload", self.name, msg_type=msg_type,
                             backlog=self._mailbox_count)
            return
        self._mailbox_seq += 1
        correlation = payload.get("j") if payload is not None else _UNKEYED
        by_corr = self._mailbox.setdefault(msg_type, {})
        try:
            bucket = by_corr.get(correlation)
        except TypeError:  # unhashable correlation value
            correlation = _UNKEYED
            bucket = by_corr.get(correlation)
        if bucket is None:
            bucket = by_corr[correlation] = deque()
        bucket.append((self._mailbox_seq, message))
        self._mailbox_count += 1
        if self._mailbox_count > self.mailbox_peak:
            self.mailbox_peak = self._mailbox_count

    def _mailbox_buckets(self, wait: Receive) -> list[tuple[dict, Any, deque]]:
        """The non-empty mailbox buckets ``wait`` could take a message from.

        Each entry is ``(parent_dict, correlation_key, bucket)`` so an
        emptied bucket can be deleted after a take.
        """
        matcher = wait.matcher
        candidates: list[tuple[dict, Any, deque]] = []

        def all_of(by_corr: dict) -> None:
            candidates.extend((by_corr, corr, bucket)
                              for corr, bucket in by_corr.items() if bucket)

        if matcher is None:
            for by_corr in self._mailbox.values():
                all_of(by_corr)
            return candidates
        correlation = getattr(matcher, "msg_corr", None)
        types = getattr(matcher, "msg_types", None)
        if correlation is not None:
            # Types accepted by the matcher but absent from the correlation
            # hint (msg_types-only annotations) scan as any-correlation.
            for msg_type in (types if types is not None else correlation):
                by_corr = self._mailbox.get(msg_type)
                if not by_corr:
                    continue
                values = correlation.get(msg_type)
                if isinstance(values, frozenset):
                    for value in values:
                        bucket = by_corr.get(value)
                        if bucket:
                            candidates.append((by_corr, value, bucket))
                else:  # ANY_CORRELATION or no entry for this type
                    all_of(by_corr)
            return candidates
        if types is None:
            for by_corr in self._mailbox.values():
                all_of(by_corr)
            return candidates
        for msg_type in types:
            by_corr = self._mailbox.get(msg_type)
            if by_corr:
                all_of(by_corr)
        return candidates

    def discard_buffered(self, correlation: Any) -> int:
        """Drop every buffered message whose ``j`` payload equals ``correlation``.

        Protocol code calls this when a transaction terminates: retransmitted
        replies (votes, acknowledgements, execute results) keyed by a result
        that is already terminated can never be consumed again, and dropping
        a buffered message is indistinguishable from network loss in the
        paper's fair-lossy channel model.  Keeps long runs' mailbox memory
        proportional to the in-flight work instead of the run's history.
        """
        dropped = 0
        for by_corr in self._mailbox.values():
            bucket = by_corr.pop(correlation, None)
            if bucket:
                dropped += len(bucket)
        self._mailbox_count -= dropped
        return dropped

    def _take_from_mailbox(self, wait: Receive) -> Optional[Any]:
        """Remove and return the first buffered message matching ``wait``.

        "First" means global arrival order (the sequence number), exactly as
        with the historical single-queue mailbox -- only the scan is now
        restricted to the buckets the matcher could accept.
        """
        if not self._mailbox_count:
            return None
        buckets = self._mailbox_buckets(wait)
        if not buckets:
            return None
        if len(buckets) == 1:
            by_corr, corr, bucket = buckets[0]
            # Fast path: a receive usually consumes the oldest buffered
            # message (FIFO traffic), and popleft is O(1) where
            # ``del deque[index]`` is O(n).
            if wait.matches(bucket[0][1]):
                message = bucket.popleft()[1]
            else:
                message = None
                for index in range(1, len(bucket)):
                    candidate = bucket[index][1]
                    if wait.matches(candidate):
                        del bucket[index]
                        message = candidate
                        break
                if message is None:
                    return None
            if not bucket:
                del by_corr[corr]
            self._mailbox_count -= 1
            return message
        # Several candidate buckets: pick the matching message with the
        # smallest sequence number.  Buckets are sequence-ascending, so each
        # scan stops at the first match or once past the best found so far.
        best: Optional[tuple[int, dict, Any, deque, int]] = None
        for by_corr, corr, bucket in buckets:
            for index, (seq, message) in enumerate(bucket):
                if best is not None and seq > best[0]:
                    break
                if wait.matches(message):
                    best = (seq, by_corr, corr, bucket, index)
                    break
        if best is None:
            return None
        _, by_corr, corr, bucket, index = best
        message = bucket[index][1]
        del bucket[index]
        if not bucket:
            del by_corr[corr]
        self._mailbox_count -= 1
        return message

    # ------------------------------------------------------- crash / recover

    def crash(self) -> None:
        """Crash the process: kill all threads and lose all volatile state."""
        if not self.up:
            return
        self.up = False
        self.crash_count += 1
        for thread in self._threads:
            thread.kill()
        self._threads.clear()
        self._kv_waiters.clear()
        self._typed_waiters.clear()
        self._wildcard_waiters.clear()
        self._finished_threads = 0
        self._mailbox.clear()
        self._mailbox_count = 0
        self.on_crash()
        self._notify_transport("on_process_crash")
        self.trace.record("crash", self.name)

    def recover(self) -> None:
        """Bring the process back up and restart its entry point."""
        if self.up:
            return
        self.up = True
        self._notify_transport("on_process_recover")
        self.trace.record("recover", self.name)
        self.on_start(recovery=True)

    def _notify_transport(self, hook: str) -> None:
        """Tell the transport about a crash/recovery, if it cares.

        A real transport (TCP) maps a crash to dropping the process's live
        connections; interposed channel layers without the hook are skipped.
        """
        callback = getattr(self._transport, hook, None)
        if callback is not None:
            callback(self.name)

    def crash_for(self, downtime: float) -> None:
        """Crash now and automatically recover after ``downtime`` virtual time."""
        self.crash()
        self.sim.schedule(downtime, self.recover, name=f"{self.name}:recover")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"<Process {self.name} ({state})>"
