"""Discrete-event simulator: virtual clock and a timer-wheel event queue.

The simulator is the root object of every run.  It owns:

* the virtual clock (``now``),
* a hierarchical timer wheel of scheduled callbacks (:mod:`repro.sim.wheel`),
* the trace recorder shared by all components,
* a deterministic random-number source partitioned into named streams.

Events scheduled at the same timestamp fire in FIFO order of scheduling,
which makes every run fully deterministic for a given seed and fault
schedule.  Dispatch is batched: the kernel drains one 256-tick wheel
window at a time into a sorted *ready run* and fires it in a tight loop --
the cross-event bookkeeping a heap pays per pop (sift, horizon compare,
clock store) is paid once per window and once per timestamp change
instead.  A callback that schedules more work inside the drained window
merges into the running batch at exactly the FIFO position a
``(time, seq)`` heap would have given it.

The previous binary-heap kernel is preserved verbatim in
:mod:`repro.sim.legacy`; ``tests/test_trace_equivalence.py`` holds the two
kernels to byte-identical traces per seed.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from operator import attrgetter
from typing import Callable, Optional

from repro.runtime.base import Kernel, stream_seed  # noqa: F401  (re-exported)
from repro.sim.errors import InvalidScheduling, SimulationLimitExceeded
from repro.sim.tracing import TraceRecorder
from repro.sim.wheel import DRAINED, L0_MASK, L0_SLOTS, TimerWheel

_TIME_KEY = attrgetter("time")

_NO_ARG = object()
"""Sentinel in :attr:`ScheduledEvent.arg` marking a plain zero-argument
callback.  Events carrying a real argument come from :meth:`Simulator.
schedule_call`, fire as ``callback(arg)``, and are recycled through the
kernel's free list after dispatch."""

_EVENT_POOL_MAX = 512
"""Free-list depth: enough to cover the in-flight message population of a
busy run without pinning an unbounded pile of dead handles."""

#: Ancestry levels kept in a shard-mode dispatch context.  Each event's
#: context is ``(schedule_time, parent_context, discriminator)`` where the
#: parent is the context of the dispatch that scheduled it, truncated to
#: ``CTX_DEPTH - 1`` levels at construction.  The cap bounds memory on
#: unbounded causal chains (heartbeats re-arming themselves forever) while
#: keeping enough ancestry to break same-instant cross-sender ties -- in
#: practice those resolve within two or three levels.
CTX_DEPTH = 8

#: ``msg_id = source_index * stride + per_source_counter`` -- the message
#: identity scheme of :class:`repro.net.network.Network` (which imports the
#: constant from here).  The context ordering below exploits the encoding:
#: two discriminators in the same stride band are counter values of one
#: sender, and per-sender counters grow chronologically through a serial
#: execution.
MSG_ID_STRIDE = 1_000_000_000


class Ctx(tuple):
    """A dispatch context ``(schedule_time, parent_ctx, discriminator)``.

    Orders by *serial insertion order*: the order the serial kernel's queue
    would hold two events scheduled at the same virtual time.

    * Different schedule times: chronological (insertion is chronological).
    * Same time, both discriminators from the *same sender* (one stride
      band): counter order.  Per-sender message counters grow monotonically
      through serial execution, so for two deliveries scheduled at one
      instant the smaller counter was scheduled first -- exact, with no
      recursion, even when the causal ancestries are disjoint.
    * Otherwise: the order of the scheduling dispatches, i.e. the parent
      contexts compared recursively; the discriminator breaks the final tie
      (two sends by one dispatch leave in program order, which for one
      sender is counter order again).

    Parent-before-discriminator is deliberately *skipped* in the same-sender
    case: plain lexicographic order would descend into the full ancestries
    first and could bottom out on a truncated or cross-sender level, getting
    the tie wrong even though the counters already carry the exact answer.
    """

    __slots__ = ()

    def __lt__(self, other) -> bool:
        if not other:           # () sorts below every live context
            return False
        st, sp, sd = self
        ot, op, od = other
        if st != ot:
            return st < ot
        if sd and od and sd // MSG_ID_STRIDE == od // MSG_ID_STRIDE:
            return sd < od
        if sp != op:
            if not sp or not op:
                return not sp   # truncated ancestry sorts first
            return Ctx.__lt__(sp, op)
        return sd < od

    def __gt__(self, other) -> bool:
        return self != other and not self.__lt__(other)

    def __le__(self, other) -> bool:
        return self == other or self.__lt__(other)

    def __ge__(self, other) -> bool:
        return not self.__lt__(other)


#: Context of events scheduled before any dispatch ran (the build phase).
GENESIS_CTX = Ctx((0.0, (), 0))


def truncate_ctx(ctx: tuple, depth: int = CTX_DEPTH - 1) -> tuple:
    """Copy ``ctx`` keeping at most ``depth`` ancestry levels.

    Truncation replaces the deepest parent with ``()``, which compares
    below every non-empty chain -- a deterministic (if arbitrary) rule
    that both sides of any comparison apply identically, because both
    truncate at the same construction depth.
    """
    if depth <= 0 or not ctx:
        return ()
    return Ctx((ctx[0], truncate_ctx(ctx[1], depth - 1), ctx[2]))


class ScheduledEvent:
    """Handle to a scheduled callback; supports cancellation.

    Instances are returned by :meth:`Simulator.schedule` and order by
    ``(time, seq)``, the stable priority that fixes FIFO-within-timestamp
    dispatch.  ``_slots``/``_pos`` record where the event currently lives (a
    wheel bucket, the far-future heap, or the ready run) so :meth:`cancel`
    can remove it in O(1).
    """

    __slots__ = ("time", "seq", "callback", "name", "cancelled", "arg",
                 "_sim", "_slots", "_pos", "ctx")

    def __init__(self, time: float, seq: int, callback: Callable[[], None], name: str):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False
        self.arg = _NO_ARG

    def cancel(self) -> bool:
        """Prevent the callback from firing.

        Returns ``True`` if the event was live and is now cancelled.
        Cancelling an event that already fired -- or cancelling twice -- is a
        documented no-op returning ``False``: the kernel clears ``callback``
        the moment an event is dispatched, so a stale handle (e.g. an ack
        racing the retransmit timer it is trying to stop) can always be
        cancelled safely without perturbing anything that already happened.
        """
        if self.callback is None:
            return False
        self.callback = None
        self.cancelled = True
        sim = self._sim
        sim._cancelled += 1
        slots = self._slots
        if slots.__class__ is list:
            # True removal from a wheel bucket: no tombstone survives.
            slots[self._pos] = None
            self._slots = DRAINED
        elif slots is None:
            sim._wheel.note_far_cancel()
        # else DRAINED: the dispatch loop skips the flagged event.
        return True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.cancelled:
            state = "cancelled"
        elif self.callback is None:
            state = "fired"
        else:
            state = "pending"
        return f"<ScheduledEvent {self.name!r} at {self.time:.3f} ({state})>"


class Simulator(Kernel):
    """Deterministic discrete-event simulator with virtual time.

    This is the ``sim`` implementation of the :class:`~repro.runtime.base.Kernel`
    seam; :class:`repro.runtime.loop.AsyncioKernel` is the wall-clock one.

    Parameters
    ----------
    seed:
        Seed for the deterministic random source.  Every component obtains its
        own :class:`random.Random` stream via :meth:`rng`, so adding a new
        component does not perturb the draws seen by existing ones.
    trace:
        Optional externally-created :class:`TraceRecorder`; a fresh one is
        created when omitted.
    """

    def __init__(self, seed: int = 0, trace: Optional[TraceRecorder] = None):
        self.now: float = 0.0
        self._init_kernel(seed, trace, lambda: self.now)
        self._wheel = TimerWheel()
        self._seq = 0
        self._events_processed = 0
        self._cancelled = 0
        # The ready run: the drained current window, sorted by (time, seq).
        # _ready_idx is the dispatch cursor (kept on the instance so a run
        # can stop mid-window -- predicate hit, horizon, exception -- and a
        # later call resumes exactly where it left off); _ready_tick (the
        # drained window's last tick) routes schedules landing inside the
        # window into the run instead of the wheel.
        self._ready: list[ScheduledEvent] = []
        self._ready_idx = 0
        self._ready_tick = -1
        # Free list of fired argument-carrying events (see schedule_call):
        # the per-message ScheduledEvent allocation of the network's
        # delivery path is recycled across fire cycles.
        self._event_pool: list[ScheduledEvent] = []
        # Shard mode (see repro.sim.parallel): off by default, one boolean
        # check on the schedule path is its only serial-run cost.
        self._shard_mode = False

    # ------------------------------------------------------------ scheduling

    def schedule(self, delay: float, callback: Callable[[], None], name: str = "event") -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Returns a :class:`ScheduledEvent` handle that can be cancelled.
        """
        if delay < 0:
            raise InvalidScheduling(f"negative delay {delay!r} for event {name!r}")
        time = self.now + delay
        event = ScheduledEvent(time, self._seq, callback, name)
        self._seq += 1
        event._sim = self
        if self._shard_mode:
            # Dispatch context: when this event was scheduled, by which
            # causal chain.  Same-instant cross-shard sends tie-break on it
            # (repro.sim.parallel).  Inheriting the scheduling dispatch's
            # context keeps symmetric timers armed by sibling deliveries of
            # one multicast (e.g. per-replica work-completion timers)
            # distinguishable when they fire at the same instant; the
            # network overwrites the discriminator with the message's own
            # id on delivery events.
            event.ctx = Ctx((self.now, self._dispatch_trunc, 0))
        wheel = self._wheel
        tick = int(time)
        # _ready_tick (last drained tick) is always wheel._base - 1, so one
        # offset classifies the event: negative = inside the drained window
        # (merge into the ready run), < L0_SLOTS = current window (inlined L0
        # fast path, the overwhelmingly common case: timers a few virtual ms
        # out), otherwise the slow insert.
        offset = tick - wheel._base
        if offset < L0_SLOTS:
            if offset >= 0:
                bucket = wheel._l0[tick & L0_MASK]
                event._slots = bucket
                event._pos = len(bucket)
                bucket.append(event)
                wheel._n0 += 1
            else:
                # A fresh event's seq exceeds everything already in the ready
                # run, so position is decided by ``time`` alone (a right-
                # bisect lands after equal times -- exactly FIFO) and it
                # usually belongs at the end (the call_soon pattern).  ``lo``
                # is pinned past the consumed prefix: a cancelled-and-skipped
                # entry may carry a *later* timestamp than a fresh insert,
                # and anything placed before the cursor would never fire.
                ready = self._ready
                event._slots = DRAINED
                idx = self._ready_idx
                if idx > 1024 and idx + idx >= len(ready):
                    # Drop the consumed prefix (amortised O(1): only when it
                    # is most of the list) so an unbounded same-window chain
                    # -- the call_soon pattern -- does not pin every fired
                    # event in memory until the window drains.
                    del ready[:idx]
                    self._ready_idx = 0
                if not ready or ready[-1].time <= time:
                    ready.append(event)
                else:
                    insort(ready, event, lo=self._ready_idx, key=_TIME_KEY)
        else:
            wheel.insert(event, tick)
        return event

    def schedule_call(self, delay: float, callback: Callable, arg,
                      name: str = "event") -> ScheduledEvent:
        """Schedule ``callback(arg)`` to run ``delay`` time units from now.

        The argument-carrying form of :meth:`schedule`, built for the
        network's delivery path: it kills the per-message ``partial``
        allocation, and the event object itself is drawn from (and, after
        firing, returned to) a free list.  Because fired events are
        recycled, the returned handle must not be *retained* -- cancelling
        it before it fires is fine, but a cancel after the fire could hit a
        recycled, live event instead of the documented no-op.  Callers that
        keep handles around (timers, retransmits) must use :meth:`schedule`.
        """
        if delay < 0:
            raise InvalidScheduling(f"negative delay {delay!r} for event {name!r}")
        time = self.now + delay
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = self._seq
            event.callback = callback
            event.name = name
        else:
            event = ScheduledEvent(time, self._seq, callback, name)
            event._sim = self
        event.arg = arg
        self._seq += 1
        if self._shard_mode:
            event.ctx = Ctx((self.now, self._dispatch_trunc, 0))
        # Identical placement logic to schedule() (kept inline: this is the
        # hottest allocation site in a traffic run and a shared helper call
        # would tax schedule() too).
        wheel = self._wheel
        tick = int(time)
        offset = tick - wheel._base
        if offset < L0_SLOTS:
            if offset >= 0:
                bucket = wheel._l0[tick & L0_MASK]
                event._slots = bucket
                event._pos = len(bucket)
                bucket.append(event)
                wheel._n0 += 1
            else:
                ready = self._ready
                event._slots = DRAINED
                idx = self._ready_idx
                if idx > 1024 and idx + idx >= len(ready):
                    del ready[:idx]
                    self._ready_idx = 0
                if not ready or ready[-1].time <= time:
                    ready.append(event)
                else:
                    insort(ready, event, lo=self._ready_idx, key=_TIME_KEY)
        else:
            wheel.insert(event, tick)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None], name: str = "event") -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``time`` (>= now)."""
        if time < self.now:
            raise InvalidScheduling(f"cannot schedule {name!r} in the past ({time} < {self.now})")
        return self.schedule(time - self.now, callback, name)

    def call_soon(self, callback: Callable[[], None], name: str = "soon") -> ScheduledEvent:
        """Schedule ``callback`` at the current timestamp (after pending same-time events).

        Same-timestamp chains (a callback re-arming itself with ``call_soon``)
        are the one shape where a one-element heap is near optimal, so this
        path is specialized: during dispatch ``now`` always lies inside the
        already-drained window (``now < wheel base``), so the event belongs
        in the ready run unconditionally and the generic tick classification
        in :meth:`schedule` -- delay validation, offset arithmetic, bucket
        routing -- can be skipped.  A fresh event's seq exceeds everything
        pending, so when the run's tail is at ``<= now`` (the common case:
        nothing later than the current timestamp has been drained) a plain
        append preserves (time, seq) order.
        """
        time = self.now
        # Outside a drained window (before the first run, or exactly at a
        # window edge) fall back to the generic path.
        if time >= self._ready_tick + 1:
            return self.schedule(0.0, callback, name)
        event = ScheduledEvent(time, self._seq, callback, name)
        self._seq += 1
        event._sim = self
        if self._shard_mode:
            event.ctx = Ctx((time, self._dispatch_trunc, 0))
        event._slots = DRAINED
        ready = self._ready
        idx = self._ready_idx
        if idx > 1024 and idx + idx >= len(ready):
            # Same compaction as schedule(): an unbounded same-window chain
            # must not pin every fired event in memory until the window drains.
            del ready[:idx]
            self._ready_idx = 0
        if not ready or ready[-1].time <= time:
            ready.append(event)
        else:
            insort(ready, event, lo=self._ready_idx, key=_TIME_KEY)
        return event

    def call_soon_call(self, callback: Callable, arg, name: str = "soon") -> ScheduledEvent:
        """Run ``callback(arg)`` at the current timestamp, pool-recycled.

        :meth:`call_soon` with the :meth:`schedule_call` event free list:
        the thread wake-up path (mailbox hits, resolved futures) burns one
        of these per delivery, and like delivery events their handles are
        dropped before dispatch completes, so cancel-after-fire never
        happens and the event can go straight back to the pool.
        """
        time = self.now
        if time >= self._ready_tick + 1:
            return self.schedule_call(0.0, callback, arg, name)
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = self._seq
            event.callback = callback
            event.name = name
        else:
            event = ScheduledEvent(time, self._seq, callback, name)
            event._sim = self
        event.arg = arg
        self._seq += 1
        if self._shard_mode:
            event.ctx = Ctx((time, self._dispatch_trunc, 0))
        event._slots = DRAINED
        ready = self._ready
        idx = self._ready_idx
        if idx > 1024 and idx + idx >= len(ready):
            del ready[:idx]
            self._ready_idx = 0
        if not ready or ready[-1].time <= time:
            ready.append(event)
        else:
            insort(ready, event, lo=self._ready_idx, key=_TIME_KEY)
        return event

    # --------------------------------------------------------------- running

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled, not-yet-fired events (O(1)).

        Derived from counters the hot paths maintain anyway: everything ever
        scheduled, minus fired, minus cancelled.
        """
        return self._seq - self._events_processed - self._cancelled

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    def step(self) -> bool:
        """Run the next scheduled event.  Returns ``False`` if the queue is empty."""
        while True:
            ready = self._ready
            idx = self._ready_idx
            if idx < len(ready):
                event = ready[idx]
                self._ready_idx = idx + 1
                callback = event.callback
                if callback is None:  # cancelled in place
                    continue
                self.now = event.time
                event.callback = None
                self._events_processed += 1
                arg = event.arg
                if arg is _NO_ARG:
                    callback()
                else:
                    event.arg = _NO_ARG
                    callback(arg)
                    pool = self._event_pool
                    if len(pool) < _EVENT_POOL_MAX:
                        pool.append(event)
                return True
            drained = self._wheel.drain_next()
            if drained is None:
                return False
            self._ready_tick, self._ready = drained
            self._ready_idx = 0

    def run(self, until: Optional[float] = None, max_events: int = 5_000_000) -> float:
        """Run events until the queue drains or virtual time reaches ``until``.

        Returns the virtual time at which the run stopped.  Raises
        :class:`SimulationLimitExceeded` if more than ``max_events`` callbacks
        fire, which almost always indicates a livelock in a protocol under test.
        """
        wheel = self._wheel
        processed = 0
        while True:
            # Batched dispatch: ready is sorted, so the horizon/clock work
            # only runs when the timestamp changes, and ready state is
            # re-read from the instance every iteration, which keeps
            # exceptions (and re-entrant runs) consistent.
            ready = self._ready
            idx = self._ready_idx
            if idx < len(ready):
                event = ready[idx]
                self._ready_idx = idx + 1
                callback = event.callback
                if callback is None:  # cancelled in place
                    continue
                time = event.time
                if time != self.now:  # sorted => strictly later: new timestamp
                    if until is not None and time > until:
                        self._ready_idx = idx  # leave unconsumed
                        if until > self.now:
                            self.now = until
                        return self.now
                    self.now = time
                event.callback = None
                self._events_processed += 1
                processed += 1
                if processed > max_events:
                    raise SimulationLimitExceeded(
                        f"simulation exceeded {max_events} events (possible livelock)"
                    )
                arg = event.arg
                if arg is _NO_ARG:
                    callback()
                    continue
                # Argument-carrying events (message deliveries) fire and go
                # straight back to the free list; their handles are never
                # retained past dispatch (see schedule_call).
                event.arg = _NO_ARG
                callback(arg)
                pool = self._event_pool
                if len(pool) < _EVENT_POOL_MAX:
                    pool.append(event)
                continue
            drained = wheel.drain_next()
            if drained is None:
                if until is not None and until > self.now:
                    self.now = until
                return self.now
            self._ready_tick, self._ready = drained
            self._ready_idx = 0

    def run_until(self, predicate: Callable[[], bool], *, until: Optional[float] = None,
                  max_events: int = 5_000_000) -> bool:
        """Run until ``predicate()`` becomes true.

        Returns ``True`` if the predicate was satisfied, ``False`` if the event
        queue drained or the time horizon was reached first.

        The predicate is re-evaluated after *every* dispatched event, never
        once per batch: callers interleave ``run_until`` with synchronous
        work (the closed-loop generator pattern), and overshooting the
        predicate within a same-timestamp batch would reorder their RNG
        draws relative to the heap kernel's one-event-at-a-time schedule.
        """
        if predicate():
            return True
        wheel = self._wheel
        processed = 0
        while True:
            ready = self._ready
            idx = self._ready_idx
            if idx < len(ready):
                event = ready[idx]
                self._ready_idx = idx + 1
                callback = event.callback
                if callback is None:  # cancelled in place
                    continue
                time = event.time
                if time != self.now:
                    if until is not None and time > until:
                        self._ready_idx = idx
                        if until > self.now:
                            self.now = until
                        return predicate()
                    self.now = time
                event.callback = None
                self._events_processed += 1
                processed += 1
                if processed > max_events:
                    raise SimulationLimitExceeded(
                        f"simulation exceeded {max_events} events (possible livelock)"
                    )
                arg = event.arg
                if arg is _NO_ARG:
                    callback()
                else:
                    event.arg = _NO_ARG
                    callback(arg)
                    pool = self._event_pool
                    if len(pool) < _EVENT_POOL_MAX:
                        pool.append(event)
                if predicate():
                    return True
                continue
            drained = wheel.drain_next()
            if drained is None:
                # Queue fully drained: the clock stays at the last event,
                # matching the heap kernel.
                return predicate()
            self._ready_tick, self._ready = drained
            self._ready_idx = 0

    # ---------------------------------------------------------- shard support
    #
    # Everything below exists for the conservative parallel kernel
    # (:mod:`repro.sim.parallel`), which runs one Simulator per shard in
    # lookahead-bounded windows and re-injects cross-shard messages at the
    # exact ``(time, seq)`` position the serial kernel would have given them.
    # None of it is touched by a serial run.

    def enable_shard_mode(self) -> None:
        """Turn on the bookkeeping windowed runs and injection need.

        Must be called before virtual time first advances: events scheduled
        earlier are treated as scheduled at time 0.0, which is only true
        while the clock still reads zero (the build phase).
        """
        if self.now != 0.0:
            raise InvalidScheduling("shard mode must be enabled before time advances")
        self._shard_mode = True
        # The seq-mark staircase: one seq snapshot per distinct
        # ``(time, ctx)`` key dispatched, taken *before* the first event of
        # that key fires.  The context is a bounded-depth causal chain
        # ``(schedule_time, parent_ctx, discriminator)``: when the event was
        # scheduled, the (truncated) context of the dispatch that scheduled
        # it, and -- for message deliveries -- the message's own id.  Within
        # one timestamp events dispatch in insertion order, insertion is
        # chronological, sibling deliveries of one multicast carry ascending
        # per-sender msg ids, and cross-sender ties recurse into the parent
        # chain -- so the keys form a (mostly) increasing staircase.  The
        # seq a cross-shard message (sent at ``s`` by a dispatch with
        # context ``c``) would have drawn locally is the snapshot of the
        # first mark with key > ``(s, c)``.  A dispatch whose key does not
        # exceed the last mark adds no mark -- lookups then fall back to the
        # coarser previous snapshot instead of corrupting the bisect order.
        self._marks: list[tuple[float, tuple]] = []
        self._mark_seqs: list[int] = []
        # Per-base counters for fractional injection seqs.
        self._inject_counts: dict[int, int] = {}
        # Context of the event currently dispatching, and its truncation --
        # computed once per dispatch and shared by the mark key, every child
        # event scheduled from the dispatch, and the shard network's
        # cross-shard tie-break chains.
        self._dispatch_ctx: tuple = GENESIS_CTX
        self._dispatch_trunc: tuple = truncate_ctx(GENESIS_CTX)

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if the queue is empty.

        Advances the ready cursor past cancelled entries and drains wheel
        windows as needed -- exactly the prefix of work :meth:`run` would do
        -- but dispatches nothing and leaves the clock untouched.
        """
        while True:
            ready = self._ready
            idx = self._ready_idx
            n = len(ready)
            while idx < n and ready[idx].callback is None:
                idx += 1
            self._ready_idx = idx
            if idx < n:
                return ready[idx].time
            drained = self._wheel.drain_next()
            if drained is None:
                return None
            self._ready_tick, self._ready = drained
            self._ready_idx = 0

    def run_window(self, stop: float, max_events: int = 5_000_000) -> None:
        """Run every event with ``time < stop`` (strictly), recording seq marks.

        The exclusive bound is what conservative lookahead needs: with
        window stop ``T + L`` a cross-shard message sent at ``T`` over a
        minimum-latency link arrives exactly *at* the stop, so the stop
        itself must stay unexecuted.  The clock is left at the last fired
        event (never advanced to ``stop``); a later window resumes from
        there.
        """
        wheel = self._wheel
        marks = self._marks
        mark_seqs = self._mark_seqs
        processed = 0
        while True:
            ready = self._ready
            idx = self._ready_idx
            if idx < len(ready):
                event = ready[idx]
                self._ready_idx = idx + 1
                callback = event.callback
                if callback is None:  # cancelled in place
                    continue
                time = event.time
                if time != self.now:
                    if time >= stop:
                        self._ready_idx = idx  # leave unconsumed
                        return
                    self.now = time
                event.callback = None
                self._events_processed += 1
                processed += 1
                if processed > max_events:
                    raise SimulationLimitExceeded(
                        f"simulation exceeded {max_events} events (possible livelock)"
                    )
                ctx = getattr(event, "ctx", GENESIS_CTX)
                # Mark keys truncate to the same depth as injection probes
                # (a delivery's parent chain is one level shallower than a
                # full dispatch context): shared ancestry must compare
                # *equal*, not diverge on the truncation frontier before
                # the first genuinely differing discriminator is reached.
                trunc = truncate_ctx(ctx)
                key = (time, trunc)
                if not marks or marks[-1] < key:
                    marks.append(key)
                    mark_seqs.append(self._seq)
                self._dispatch_ctx = ctx
                self._dispatch_trunc = trunc
                arg = event.arg
                if arg is _NO_ARG:
                    callback()
                else:
                    event.arg = _NO_ARG
                    callback(arg)
                    pool = self._event_pool
                    if len(pool) < _EVENT_POOL_MAX:
                        pool.append(event)
                continue
            drained = wheel.drain_next()
            if drained is None:
                return
            self._ready_tick, self._ready = drained
            self._ready_idx = 0

    def run_until_window(self, predicate: Callable[[], bool], stop: float,
                         max_events: int = 5_000_000) -> bool:
        """:meth:`run_window` that additionally stops once ``predicate()`` holds.

        Returns ``True`` if the predicate was satisfied (the shard stopped
        mid-window and must be caught up to ``stop`` before any injection
        with a send time beyond its clock), ``False`` if the window was
        completed or the queue drained first.  Like :meth:`run_until`, the
        predicate is re-evaluated after every dispatched event.
        """
        if predicate():
            return True
        wheel = self._wheel
        marks = self._marks
        mark_seqs = self._mark_seqs
        processed = 0
        while True:
            ready = self._ready
            idx = self._ready_idx
            if idx < len(ready):
                event = ready[idx]
                self._ready_idx = idx + 1
                callback = event.callback
                if callback is None:  # cancelled in place
                    continue
                time = event.time
                if time != self.now:
                    if time >= stop:
                        self._ready_idx = idx
                        return False
                    self.now = time
                event.callback = None
                self._events_processed += 1
                processed += 1
                if processed > max_events:
                    raise SimulationLimitExceeded(
                        f"simulation exceeded {max_events} events (possible livelock)"
                    )
                ctx = getattr(event, "ctx", GENESIS_CTX)
                # Mark keys truncate to the same depth as injection probes
                # (a delivery's parent chain is one level shallower than a
                # full dispatch context): shared ancestry must compare
                # *equal*, not diverge on the truncation frontier before
                # the first genuinely differing discriminator is reached.
                trunc = truncate_ctx(ctx)
                key = (time, trunc)
                if not marks or marks[-1] < key:
                    marks.append(key)
                    mark_seqs.append(self._seq)
                self._dispatch_ctx = ctx
                self._dispatch_trunc = trunc
                arg = event.arg
                if arg is _NO_ARG:
                    callback()
                else:
                    event.arg = _NO_ARG
                    callback(arg)
                    pool = self._event_pool
                    if len(pool) < _EVENT_POOL_MAX:
                        pool.append(event)
                if predicate():
                    return True
                continue
            drained = wheel.drain_next()
            if drained is None:
                return predicate()
            self._ready_tick, self._ready = drained
            self._ready_idx = 0

    def inject(self, time: float, chain: tuple, callback: Callable[[], None],
               name: str = "inject") -> ScheduledEvent:
        """Insert a cross-shard event at its exact serial queue position.

        ``chain`` is the delivery's dispatch context as the serial kernel
        would have built it: ``(send_time, parent_ctx, msg_id)``, where
        ``send_time`` is the virtual time the message was sent in its
        source shard -- the moment the serial kernel would have scheduled
        this delivery -- and ``parent_ctx`` is the (truncated) context of
        the dispatch that performed the send.  The event's seq is placed
        fractionally just below the local seq counter's value at that
        moment (recovered from the seq marks), so it dispatches after
        everything scheduled locally by dispatches at or before
        ``(send_time, parent_ctx)`` and before everything scheduled after.
        Repeated injections against the same base keep their injection
        order: the fractions 1/2, 2/3, 3/4 ... increase and stay below 1.

        Precondition (guaranteed by the round loop): this kernel has already
        executed every event with time < some bound > ``send_time``, so the
        marks covering ``send_time`` are final.
        """
        if time < self.now:
            raise InvalidScheduling(
                f"cannot inject {name!r} in the past ({time} < {self.now})")
        marks = self._marks
        i = bisect_right(marks, (chain[0], chain[1]))
        base = self._mark_seqs[i] if i < len(marks) else self._seq
        count = self._inject_counts.get(base, 0) + 1
        self._inject_counts[base] = count
        seq = base - 1 + count / (count + 1)
        event = ScheduledEvent(time, seq, callback, name)
        event._sim = self
        event.ctx = chain
        # The injected event consumes one seq like its serial counterpart
        # did; pending_events stays an exact count and later local seqs
        # shift uniformly, which no ordering depends on.
        self._seq += 1
        wheel = self._wheel
        tick = int(time)
        if tick - wheel._base < 0:
            # Inside the drained window: merge into the ready run by full
            # (time, seq) order -- the fractional seq lands the event among
            # equal-time entries exactly where the serial kernel had it.
            event._slots = DRAINED
            insort(self._ready, event, lo=self._ready_idx)
        else:
            wheel.insert(event, tick)
        return event

    def prune_marks(self, before: float) -> None:
        """Drop seq marks at ``time < before``; no future injection needs them.

        The round loop calls this with the globally committed (exclusive)
        bound: every cross-shard message sent strictly below it has already
        been injected, but a send at exactly the bound may still be pending
        (deferred after a predicate stop), so marks at the bound survive.
        """
        marks = self._marks
        i = bisect_left(marks, (before,))
        if i:
            del marks[:i]
            del self._mark_seqs[:i]
