"""Discrete-event simulator: virtual clock and event queue.

The simulator is the root object of every run.  It owns:

* the virtual clock (``now``),
* a priority queue of scheduled callbacks,
* the trace recorder shared by all components,
* a deterministic random-number source partitioned into named streams.

Events scheduled at the same timestamp fire in FIFO order of scheduling, which
makes every run fully deterministic for a given seed and fault schedule.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.runtime.base import Kernel, stream_seed  # noqa: F401  (re-exported)
from repro.sim.errors import InvalidScheduling, SimulationLimitExceeded
from repro.sim.tracing import TraceRecorder


class ScheduledEvent:
    """Handle to a scheduled callback; supports cancellation.

    Instances are returned by :meth:`Simulator.schedule` and compare by
    ``(time, sequence)`` so the event queue is a stable priority queue.
    """

    __slots__ = ("time", "seq", "callback", "name", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None], name: str):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent {self.name!r} at {self.time:.3f} ({state})>"


class Simulator(Kernel):
    """Deterministic discrete-event simulator with virtual time.

    This is the ``sim`` implementation of the :class:`~repro.runtime.base.Kernel`
    seam; :class:`repro.runtime.loop.AsyncioKernel` is the wall-clock one.

    Parameters
    ----------
    seed:
        Seed for the deterministic random source.  Every component obtains its
        own :class:`random.Random` stream via :meth:`rng`, so adding a new
        component does not perturb the draws seen by existing ones.
    trace:
        Optional externally-created :class:`TraceRecorder`; a fresh one is
        created when omitted.
    """

    def __init__(self, seed: int = 0, trace: Optional[TraceRecorder] = None):
        self.now: float = 0.0
        self._init_kernel(seed, trace, lambda: self.now)
        # The heap holds (time, seq, event) tuples so ordering uses C-level
        # tuple comparison instead of a Python __lt__ per sift step.
        self._queue: list[tuple[float, int, ScheduledEvent]] = []
        self._seq = 0
        self._events_processed = 0
        self._stopped = False

    # ------------------------------------------------------------ scheduling

    def schedule(self, delay: float, callback: Callable[[], None], name: str = "event") -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Returns a :class:`ScheduledEvent` handle that can be cancelled.
        """
        if delay < 0:
            raise InvalidScheduling(f"negative delay {delay!r} for event {name!r}")
        event = ScheduledEvent(self.now + delay, self._seq, callback, name)
        self._seq += 1
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return event

    def schedule_at(self, time: float, callback: Callable[[], None], name: str = "event") -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``time`` (>= now)."""
        if time < self.now:
            raise InvalidScheduling(f"cannot schedule {name!r} in the past ({time} < {self.now})")
        return self.schedule(time - self.now, callback, name)

    def call_soon(self, callback: Callable[[], None], name: str = "soon") -> ScheduledEvent:
        """Schedule ``callback`` at the current timestamp (after pending same-time events)."""
        return self.schedule(0.0, callback, name)

    # --------------------------------------------------------------- running

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for _, _, e in self._queue if not e.cancelled)

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    def step(self) -> bool:
        """Run the next scheduled event.  Returns ``False`` if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)[2]
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 5_000_000) -> float:
        """Run events until the queue drains or virtual time reaches ``until``.

        Returns the virtual time at which the run stopped.  Raises
        :class:`SimulationLimitExceeded` if more than ``max_events`` callbacks
        fire, which almost always indicates a livelock in a protocol under test.
        """
        processed = 0
        while self._queue:
            event = self._queue[0][2]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = event.time
            self._events_processed += 1
            processed += 1
            if processed > max_events:
                raise SimulationLimitExceeded(
                    f"simulation exceeded {max_events} events (possible livelock)"
                )
            event.callback()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_until(self, predicate: Callable[[], bool], *, until: Optional[float] = None,
                  max_events: int = 5_000_000) -> bool:
        """Run until ``predicate()`` becomes true.

        Returns ``True`` if the predicate was satisfied, ``False`` if the event
        queue drained or the time horizon was reached first.
        """
        processed = 0
        if predicate():
            return True
        while self._queue:
            event = self._queue[0][2]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                self.now = until
                return predicate()
            heapq.heappop(self._queue)
            self.now = event.time
            self._events_processed += 1
            processed += 1
            if processed > max_events:
                raise SimulationLimitExceeded(
                    f"simulation exceeded {max_events} events (possible livelock)"
                )
            event.callback()
            if predicate():
                return True
        return predicate()
