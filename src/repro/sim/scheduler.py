"""Discrete-event simulator: virtual clock and a timer-wheel event queue.

The simulator is the root object of every run.  It owns:

* the virtual clock (``now``),
* a hierarchical timer wheel of scheduled callbacks (:mod:`repro.sim.wheel`),
* the trace recorder shared by all components,
* a deterministic random-number source partitioned into named streams.

Events scheduled at the same timestamp fire in FIFO order of scheduling,
which makes every run fully deterministic for a given seed and fault
schedule.  Dispatch is batched: the kernel drains one 256-tick wheel
window at a time into a sorted *ready run* and fires it in a tight loop --
the cross-event bookkeeping a heap pays per pop (sift, horizon compare,
clock store) is paid once per window and once per timestamp change
instead.  A callback that schedules more work inside the drained window
merges into the running batch at exactly the FIFO position a
``(time, seq)`` heap would have given it.

The previous binary-heap kernel is preserved verbatim in
:mod:`repro.sim.legacy`; ``tests/test_trace_equivalence.py`` holds the two
kernels to byte-identical traces per seed.
"""

from __future__ import annotations

from bisect import insort
from operator import attrgetter
from typing import Callable, Optional

from repro.runtime.base import Kernel, stream_seed  # noqa: F401  (re-exported)
from repro.sim.errors import InvalidScheduling, SimulationLimitExceeded
from repro.sim.tracing import TraceRecorder
from repro.sim.wheel import DRAINED, L0_MASK, L0_SLOTS, TimerWheel

_TIME_KEY = attrgetter("time")


class ScheduledEvent:
    """Handle to a scheduled callback; supports cancellation.

    Instances are returned by :meth:`Simulator.schedule` and order by
    ``(time, seq)``, the stable priority that fixes FIFO-within-timestamp
    dispatch.  ``_slots``/``_pos`` record where the event currently lives (a
    wheel bucket, the far-future heap, or the ready run) so :meth:`cancel`
    can remove it in O(1).
    """

    __slots__ = ("time", "seq", "callback", "name", "cancelled",
                 "_sim", "_slots", "_pos")

    def __init__(self, time: float, seq: int, callback: Callable[[], None], name: str):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False

    def cancel(self) -> bool:
        """Prevent the callback from firing.

        Returns ``True`` if the event was live and is now cancelled.
        Cancelling an event that already fired -- or cancelling twice -- is a
        documented no-op returning ``False``: the kernel clears ``callback``
        the moment an event is dispatched, so a stale handle (e.g. an ack
        racing the retransmit timer it is trying to stop) can always be
        cancelled safely without perturbing anything that already happened.
        """
        if self.callback is None:
            return False
        self.callback = None
        self.cancelled = True
        sim = self._sim
        sim._cancelled += 1
        slots = self._slots
        if slots.__class__ is list:
            # True removal from a wheel bucket: no tombstone survives.
            slots[self._pos] = None
            self._slots = DRAINED
        elif slots is None:
            sim._wheel.note_far_cancel()
        # else DRAINED: the dispatch loop skips the flagged event.
        return True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.cancelled:
            state = "cancelled"
        elif self.callback is None:
            state = "fired"
        else:
            state = "pending"
        return f"<ScheduledEvent {self.name!r} at {self.time:.3f} ({state})>"


class Simulator(Kernel):
    """Deterministic discrete-event simulator with virtual time.

    This is the ``sim`` implementation of the :class:`~repro.runtime.base.Kernel`
    seam; :class:`repro.runtime.loop.AsyncioKernel` is the wall-clock one.

    Parameters
    ----------
    seed:
        Seed for the deterministic random source.  Every component obtains its
        own :class:`random.Random` stream via :meth:`rng`, so adding a new
        component does not perturb the draws seen by existing ones.
    trace:
        Optional externally-created :class:`TraceRecorder`; a fresh one is
        created when omitted.
    """

    def __init__(self, seed: int = 0, trace: Optional[TraceRecorder] = None):
        self.now: float = 0.0
        self._init_kernel(seed, trace, lambda: self.now)
        self._wheel = TimerWheel()
        self._seq = 0
        self._events_processed = 0
        self._cancelled = 0
        # The ready run: the drained current window, sorted by (time, seq).
        # _ready_idx is the dispatch cursor (kept on the instance so a run
        # can stop mid-window -- predicate hit, horizon, exception -- and a
        # later call resumes exactly where it left off); _ready_tick (the
        # drained window's last tick) routes schedules landing inside the
        # window into the run instead of the wheel.
        self._ready: list[ScheduledEvent] = []
        self._ready_idx = 0
        self._ready_tick = -1

    # ------------------------------------------------------------ scheduling

    def schedule(self, delay: float, callback: Callable[[], None], name: str = "event") -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Returns a :class:`ScheduledEvent` handle that can be cancelled.
        """
        if delay < 0:
            raise InvalidScheduling(f"negative delay {delay!r} for event {name!r}")
        time = self.now + delay
        event = ScheduledEvent(time, self._seq, callback, name)
        self._seq += 1
        event._sim = self
        wheel = self._wheel
        tick = int(time)
        # _ready_tick (last drained tick) is always wheel._base - 1, so one
        # offset classifies the event: negative = inside the drained window
        # (merge into the ready run), < L0_SLOTS = current window (inlined L0
        # fast path, the overwhelmingly common case: timers a few virtual ms
        # out), otherwise the slow insert.
        offset = tick - wheel._base
        if offset < L0_SLOTS:
            if offset >= 0:
                bucket = wheel._l0[tick & L0_MASK]
                event._slots = bucket
                event._pos = len(bucket)
                bucket.append(event)
                wheel._n0 += 1
            else:
                # A fresh event's seq exceeds everything already in the ready
                # run, so position is decided by ``time`` alone (a right-
                # bisect lands after equal times -- exactly FIFO) and it
                # usually belongs at the end (the call_soon pattern).  ``lo``
                # is pinned past the consumed prefix: a cancelled-and-skipped
                # entry may carry a *later* timestamp than a fresh insert,
                # and anything placed before the cursor would never fire.
                ready = self._ready
                event._slots = DRAINED
                idx = self._ready_idx
                if idx > 1024 and idx + idx >= len(ready):
                    # Drop the consumed prefix (amortised O(1): only when it
                    # is most of the list) so an unbounded same-window chain
                    # -- the call_soon pattern -- does not pin every fired
                    # event in memory until the window drains.
                    del ready[:idx]
                    self._ready_idx = 0
                if not ready or ready[-1].time <= time:
                    ready.append(event)
                else:
                    insort(ready, event, lo=self._ready_idx, key=_TIME_KEY)
        else:
            wheel.insert(event, tick)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None], name: str = "event") -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``time`` (>= now)."""
        if time < self.now:
            raise InvalidScheduling(f"cannot schedule {name!r} in the past ({time} < {self.now})")
        return self.schedule(time - self.now, callback, name)

    def call_soon(self, callback: Callable[[], None], name: str = "soon") -> ScheduledEvent:
        """Schedule ``callback`` at the current timestamp (after pending same-time events)."""
        return self.schedule(0.0, callback, name)

    # --------------------------------------------------------------- running

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled, not-yet-fired events (O(1)).

        Derived from counters the hot paths maintain anyway: everything ever
        scheduled, minus fired, minus cancelled.
        """
        return self._seq - self._events_processed - self._cancelled

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    def step(self) -> bool:
        """Run the next scheduled event.  Returns ``False`` if the queue is empty."""
        while True:
            ready = self._ready
            idx = self._ready_idx
            if idx < len(ready):
                event = ready[idx]
                self._ready_idx = idx + 1
                callback = event.callback
                if callback is None:  # cancelled in place
                    continue
                self.now = event.time
                event.callback = None
                self._events_processed += 1
                callback()
                return True
            drained = self._wheel.drain_next()
            if drained is None:
                return False
            self._ready_tick, self._ready = drained
            self._ready_idx = 0

    def run(self, until: Optional[float] = None, max_events: int = 5_000_000) -> float:
        """Run events until the queue drains or virtual time reaches ``until``.

        Returns the virtual time at which the run stopped.  Raises
        :class:`SimulationLimitExceeded` if more than ``max_events`` callbacks
        fire, which almost always indicates a livelock in a protocol under test.
        """
        wheel = self._wheel
        processed = 0
        while True:
            # Batched dispatch: ready is sorted, so the horizon/clock work
            # only runs when the timestamp changes, and ready state is
            # re-read from the instance every iteration, which keeps
            # exceptions (and re-entrant runs) consistent.
            ready = self._ready
            idx = self._ready_idx
            if idx < len(ready):
                event = ready[idx]
                self._ready_idx = idx + 1
                callback = event.callback
                if callback is None:  # cancelled in place
                    continue
                time = event.time
                if time != self.now:  # sorted => strictly later: new timestamp
                    if until is not None and time > until:
                        self._ready_idx = idx  # leave unconsumed
                        if until > self.now:
                            self.now = until
                        return self.now
                    self.now = time
                event.callback = None
                self._events_processed += 1
                processed += 1
                if processed > max_events:
                    raise SimulationLimitExceeded(
                        f"simulation exceeded {max_events} events (possible livelock)"
                    )
                callback()
                continue
            drained = wheel.drain_next()
            if drained is None:
                if until is not None and until > self.now:
                    self.now = until
                return self.now
            self._ready_tick, self._ready = drained
            self._ready_idx = 0

    def run_until(self, predicate: Callable[[], bool], *, until: Optional[float] = None,
                  max_events: int = 5_000_000) -> bool:
        """Run until ``predicate()`` becomes true.

        Returns ``True`` if the predicate was satisfied, ``False`` if the event
        queue drained or the time horizon was reached first.

        The predicate is re-evaluated after *every* dispatched event, never
        once per batch: callers interleave ``run_until`` with synchronous
        work (the closed-loop generator pattern), and overshooting the
        predicate within a same-timestamp batch would reorder their RNG
        draws relative to the heap kernel's one-event-at-a-time schedule.
        """
        if predicate():
            return True
        wheel = self._wheel
        processed = 0
        while True:
            ready = self._ready
            idx = self._ready_idx
            if idx < len(ready):
                event = ready[idx]
                self._ready_idx = idx + 1
                callback = event.callback
                if callback is None:  # cancelled in place
                    continue
                time = event.time
                if time != self.now:
                    if until is not None and time > until:
                        self._ready_idx = idx
                        if until > self.now:
                            self.now = until
                        return predicate()
                    self.now = time
                event.callback = None
                self._events_processed += 1
                processed += 1
                if processed > max_events:
                    raise SimulationLimitExceeded(
                        f"simulation exceeded {max_events} events (possible livelock)"
                    )
                callback()
                if predicate():
                    return True
                continue
            drained = wheel.drain_next()
            if drained is None:
                # Queue fully drained: the clock stays at the last event,
                # matching the heap kernel.
                return predicate()
            self._ready_tick, self._ready = drained
            self._ready_idx = 0
