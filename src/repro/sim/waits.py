"""Wait primitives yielded by protocol threads.

Protocol code in this repository is written as generator coroutines hosted on a
:class:`repro.sim.process.Process`.  A coroutine expresses blocking operations
by *yielding* one of the wait objects defined here:

* :class:`Sleep` -- resume after a virtual-time delay.
* :class:`Receive` -- resume when a matching message arrives (optionally with a
  timeout, in which case the coroutine receives the :data:`TIMEOUT` sentinel).
* :class:`WaitFuture` -- resume when a :class:`SimFuture` is resolved (again
  optionally bounded by a timeout).

These map directly onto the paper's pseudo-code: ``wait until (receive ...)``
becomes ``msg = yield self.receive(...)``, and the ``set-timeout-to`` /
``on-timeout`` construct becomes the ``timeout=`` argument.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class _TimeoutSentinel:
    """Singleton returned from a timed-out wait."""

    _instance: Optional["_TimeoutSentinel"] = None

    def __new__(cls) -> "_TimeoutSentinel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TIMEOUT"

    def __bool__(self) -> bool:
        return False


TIMEOUT = _TimeoutSentinel()
"""Sentinel value a coroutine receives when a timed wait expires."""


class Wait:
    """Base class for everything a protocol coroutine may yield."""

    __slots__ = ()


class Sleep(Wait):
    """Suspend the coroutine for ``delay`` units of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative sleep delay: {delay}")
        self.delay = delay

    def __repr__(self) -> str:
        return f"Sleep({self.delay})"


class Receive(Wait):
    """Wait for a message accepted by ``matcher`` (or any message when omitted).

    ``matcher`` receives the message object and returns a truthy value to
    accept it.  When ``timeout`` is given and expires first, the coroutine is
    resumed with :data:`TIMEOUT` instead of a message.
    """

    __slots__ = ("matcher", "timeout", "_buckets")

    def __init__(self, matcher: Optional[Callable[[Any], bool]] = None,
                 timeout: Optional[float] = None):
        if timeout is not None and timeout < 0:
            raise ValueError(f"negative receive timeout: {timeout}")
        self.matcher = matcher
        self.timeout = timeout
        # Waiter-index buckets this wait registers under, resolved once by
        # Process._register_waiter and reused on unregister (the matcher
        # hints are immutable, so the bucket set never changes).
        self._buckets: Optional[list] = None

    def matches(self, message: Any) -> bool:
        """Whether this wait accepts ``message``."""
        if self.matcher is None:
            return True
        return bool(self.matcher(message))

    def __repr__(self) -> str:
        return f"Receive(timeout={self.timeout})"


class SimFuture:
    """A one-shot, single-value future resolvable by any component.

    Used for in-process synchronisation: a coroutine yields
    ``WaitFuture(future)`` and another component (e.g. the consensus module
    learning a decision) calls :meth:`resolve`.
    """

    __slots__ = ("_resolved", "_value", "_callbacks")

    def __init__(self) -> None:
        self._resolved = False
        self._value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def resolved(self) -> bool:
        """Whether :meth:`resolve` has been called."""
        return self._resolved

    @property
    def value(self) -> Any:
        """The resolved value (``None`` until resolved)."""
        return self._value

    def resolve(self, value: Any) -> None:
        """Resolve the future; later calls are ignored (write-once)."""
        if self._resolved:
            return
        self._resolved = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def on_resolve(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` now if resolved, otherwise upon resolution."""
        if self._resolved:
            callback(self._value)
        else:
            self._callbacks.append(callback)

    def discard_callback(self, callback: Callable[[Any], None]) -> None:
        """Remove a previously registered callback if still pending."""
        if callback in self._callbacks:
            self._callbacks.remove(callback)


class WaitFuture(Wait):
    """Wait for a :class:`SimFuture` to resolve (optionally with a timeout)."""

    __slots__ = ("future", "timeout")

    def __init__(self, future: SimFuture, timeout: Optional[float] = None):
        if timeout is not None and timeout < 0:
            raise ValueError(f"negative future timeout: {timeout}")
        self.future = future
        self.timeout = timeout

    def __repr__(self) -> str:
        return f"WaitFuture(resolved={self.future.resolved}, timeout={self.timeout})"
